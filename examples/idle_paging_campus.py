#!/usr/bin/env python3
"""Idle-mode economy on a campus Cellular IP network.

Sixteen phones sit mostly idle in a gateway-rooted access tree.  With
paging support they send cheap paging-updates every 5 s; without it
they must refresh route caches every 0.5 s to stay reachable.  The
example measures the control-traffic saving and shows that an idle
phone still receives its first packet (found via the paging caches).

Run:  python examples/idle_paging_campus.py
"""

from repro.cellularip import CIPMobileHost
from repro.experiments import build_cip_world
from repro.net import Packet, ip
from repro.traffic import FlowSink

PHONES = 16
DURATION = 30.0


def run_campus(with_paging: bool):
    sim, domain, gw, leaves, internet, cn, _mn = build_cip_world()
    domain.route_update_time = 0.5
    domain.active_state_timeout = 1.0
    domain.paging_update_time = 5.0 if with_paging else 0.5

    phones = []
    for index in range(PHONES):
        phone = CIPMobileHost(
            sim, f"phone{index}", ip(f"10.200.1.{index + 1}"), domain
        )
        phone.attach_to(leaves[index % len(leaves)])
        phones.append(phone)
    sim.run(until=DURATION)
    control_rate = domain.total_control_packets() / DURATION

    # Ring the last idle phone.
    target = phones[-1]
    sink = FlowSink("ring")
    target.on_data.append(sink.bind(sim))
    internet.receive(
        Packet(
            src=cn.address, dst=target.address, size=300,
            created_at=sim.now, flow_id="ring", seq=0,
        )
    )
    sim.run(until=DURATION + 3.0)
    first_packet_delay = sink.delays[0] if sink.delays else float("nan")
    return control_rate, first_packet_delay


def main() -> None:
    paging_rate, paging_delay = run_campus(with_paging=True)
    forced_rate, forced_delay = run_campus(with_paging=False)

    print(f"{PHONES} idle phones, {DURATION:.0f} s observation\n")
    print(f"with paging   : {paging_rate:6.1f} control pkt-hops/s, "
          f"first packet in {paging_delay * 1e3:.1f} ms")
    print(f"without paging: {forced_rate:6.1f} control pkt-hops/s, "
          f"first packet in {forced_delay * 1e3:.1f} ms")
    print(f"\npaging cuts idle-mode signalling {forced_rate / paging_rate:.1f}x "
          f"while phones stay reachable.")


if __name__ == "__main__":
    main()
