#!/usr/bin/env python3
"""The speed factor: a vehicle and a pedestrian roam the same strip.

Demonstrates §3.2's three-factor handoff decision.  The controller
samples each mobile's mobility model, surveys cell signals, and applies
the tier-selection policy: the 25 m/s vehicle is parked on the macro
umbrella (few handoffs), while the 1.5 m/s pedestrian lives on the
high-bandwidth micro tier.

Run:  python examples/highway_vs_walk.py
"""

import numpy as np

from repro.mobility import Highway, RandomWaypoint
from repro.multitier.architecture import WORLD_BOUNDS, MultiTierWorld
from repro.radio.geometry import Point, Rectangle


def main() -> None:
    rng = np.random.default_rng(7)
    world = MultiTierWorld()
    sim = world.sim

    vehicle = world.add_mobile("vehicle")
    world.add_controller(
        vehicle,
        Highway(Point(-4000, 0), WORLD_BOUNDS, rng, speed=25.0, wrap=False),
    )

    pedestrian = world.add_mobile("pedestrian")
    world.add_controller(
        pedestrian,
        RandomWaypoint(
            Point(-2000, 0),
            Rectangle(-2500, -300, -1500, 300),
            rng,
            speed_range=(1.0, 2.0),
        ),
    )

    # Log serving cells over time.
    def reporter():
        while True:
            yield sim.timeout(30.0)
            for mobile in (vehicle, pedestrian):
                bs = mobile.serving_bs
                tier = mobile.serving_tier.label if bs else "-"
                print(
                    f"[t={sim.now:5.0f}s] {mobile.name:10s} on "
                    f"{bs.name if bs else 'nothing':6s} ({tier}) "
                    f"speed={mobile.speed:4.1f} m/s "
                    f"handoffs={mobile.handoffs_completed}"
                )

    sim.process(reporter())
    sim.run(until=240.0)

    print()
    for mobile in (vehicle, pedestrian):
        per_min = mobile.handoffs_completed / 4.0
        print(
            f"{mobile.name}: {mobile.handoffs_completed} handoffs in 4 min "
            f"({per_min:.2f}/min), finished on the "
            f"{mobile.serving_tier.label if mobile.serving_bs else '?'} tier"
        )


if __name__ == "__main__":
    main()
