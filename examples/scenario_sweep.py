#!/usr/bin/env python3
"""Tour of the scenario sweep engine: run, plot, register.

Runs a shipped sweep's smoke variant on two backends (proving the
byte-identity guarantee), renders its per-point CI table and figure,
then registers a custom sweep over a custom axis — the same steps any
new paper-style curve takes.

Run:  PYTHONPATH=src python examples/scenario_sweep.py
"""

import tempfile

from repro.experiments import ProcessPoolBackend, SerialBackend
from repro.experiments.figures import save_experiment_figure
from repro.scenarios import (
    ScenarioSweep,
    describe_sweep,
    format_sweep_result,
    get_sweep,
    register_sweep,
    sweep_scenario,
)


def main() -> None:
    # 1. A shipped sweep, serial vs pooled — identical output.
    name = "sparse-rural/population"
    serial = sweep_scenario(name, backend=SerialBackend(), smoke=True)
    pooled = sweep_scenario(name, backend=ProcessPoolBackend(2), smoke=True)
    assert serial.series == pooled.series, "backends must agree bit-for-bit"
    smoke = get_sweep(name).smoke()
    print(format_sweep_result(smoke, serial, seeds=smoke.point_seeds()))
    print("\n(serial == --jobs 2, verified)\n")

    # 2. The figure file: PNG with matplotlib, ASCII chart without.
    with tempfile.TemporaryDirectory() as directory:
        path = save_experiment_figure(serial, directory)
        print(f"figure rendered to {path.name}")
        if path.suffix == ".txt":
            print(path.read_text())

    # 3. A custom sweep: inter-domain handoff load vs commuter count.
    commuters = register_sweep(ScenarioSweep(
        name="commuter-corridor/population",
        scenario="commuter-corridor",
        field="population",
        values=(4, 8),
        seeds=(1,),
        metrics=("handoffs", "loss_rate", "elastic_goodput_bps"),
        description="inter-domain handoff pressure vs commuter count",
    ))
    print(describe_sweep(commuters))
    print()
    result = sweep_scenario(commuters, smoke=True)
    print(format_sweep_result(commuters.smoke(), result))


if __name__ == "__main__":
    main()
