#!/usr/bin/env python3
"""Tour of the scenario catalog: define, register, replicate.

Runs a shipped scenario on two backends (proving the byte-identity
guarantee), then registers a custom scenario and runs it — the same
three steps any new workload takes.

Run:  PYTHONPATH=src python examples/scenario_catalog.py
"""

from repro.experiments import ProcessPoolBackend, SerialBackend
from repro.scenarios import (
    ScenarioSpec,
    describe_scenario,
    format_scenario_result,
    get_scenario,
    register,
    replicate_scenario,
)


def main() -> None:
    # 1. A shipped scenario, serial vs pooled — identical output.
    spec = get_scenario("sparse-rural").smoke()
    seeds = [1, 2]
    serial = replicate_scenario(spec, seeds=seeds, backend=SerialBackend())
    pooled = replicate_scenario(spec, seeds=seeds, backend=ProcessPoolBackend(2))
    assert serial.samples == pooled.samples, "backends must agree bit-for-bit"
    print(format_scenario_result(spec, serial, seeds))
    print("\n(serial == --jobs 2, verified)\n")

    # 2. A custom scenario: a stadium crowd walking out of one cell.
    stadium = register(ScenarioSpec(
        name="stadium-exit",
        description="a crowd leaves the B micro cell at walking speed",
        population=12,
        duration=15.0,
        mobility_mix={"waypoint": 0.8, "stationary": 0.2},
        traffic_mix={"cbr-voice": 0.5, "poisson-data": 0.25, "idle": 0.25},
        roam=(-3100.0, -400.0, -2300.0, 400.0),  # around B
        seeds=(1, 2),
    ))
    print(describe_scenario(stadium))
    print()
    replication = replicate_scenario(stadium)
    print(format_scenario_result(stadium, replication, stadium.seeds))


if __name__ == "__main__":
    main()
