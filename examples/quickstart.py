#!/usr/bin/env python3
"""Quickstart: build the paper's Fig 4.1 world, stream video to a
mobile, watch it hand off between micro cells with zero loss.

Run:  python examples/quickstart.py
"""

from repro.multitier.architecture import MultiTierWorld
from repro.traffic import CBRSource, FlowSink


def main() -> None:
    # 1. Assemble the architecture: Internet core, home agent, MNLD,
    #    correspondent node, and the Fig 3.1 domain rooted at an RSMC.
    world = MultiTierWorld()
    sim = world.sim
    domain = world.domain1

    # 2. A mobile node attaches to micro cell B (new-call admission).
    mobile = world.add_mobile("alice")
    assert mobile.initial_attach(domain["B"])
    sim.run(until=1.0)
    print(f"alice attached to {mobile.serving_bs.name} "
          f"({mobile.serving_tier.label} tier), home address {mobile.home_address}")

    # 3. The correspondent streams 200 kbit/s CBR video to alice's home
    #    address; the first packets go via the home agent, later ones are
    #    route-optimized straight to the RSMC.
    sink = FlowSink()
    mobile.on_data.append(sink.bind(sim))
    source = CBRSource(
        sim,
        lambda p: world.cn.send_to_mobile(
            mobile.home_address, size=p.size,
            flow_id=p.flow_id, seq=p.seq, created_at=p.created_at,
        ),
        src=world.cn.address,
        dst=mobile.home_address,
        rate_bps=200e3,
        packet_size=500,
        duration=6.0,
    ).start()
    sink.flow_id = source.flow_id

    # 4. Mid-stream, alice walks from B's coverage into C's: a
    #    micro-to-micro intra-domain handoff (Fig 3.4 case c).
    def walk():
        yield sim.timeout(2.0)
        print(f"[t={sim.now:.2f}s] handing off B -> C ...")
        ok = yield from mobile.perform_handoff(domain["C"])
        print(f"[t={sim.now:.2f}s] handoff {'succeeded' if ok else 'failed'}")

    sim.process(walk())
    sim.run(until=10.0)

    # 5. Report QoS.
    print()
    print(f"packets sent       : {source.packets_sent}")
    print(f"packets received   : {sink.received}")
    print(f"loss rate          : {sink.loss_rate(source.packets_sent):.4f}")
    print(f"mean delay         : {sink.mean_delay() * 1e3:.2f} ms")
    print(f"jitter             : {sink.jitter() * 1e3:.3f} ms")
    print(f"longest interruption: {sink.max_gap() * 1e3:.1f} ms")
    print(f"RSMC buffered/flushed: {domain.rsmc.buffered_packets}"
          f"/{domain.rsmc.flushed_packets}")
    print(f"CN route-optimized after {world.cn.notifications_received} notify(s)")


if __name__ == "__main__":
    main()
