#!/usr/bin/env python3
"""Air-interface admission control and the explainable policy engine.

Three stops: (1) the same contended `campus-air` scenario run with the
default never-reject policy and with `admission_factor=0.25` — the
constrained run shows nonzero `policy.admission_reject` and
`policy.escalate_tier` counters, the paper's §3.2 "turn to ask" the
next tier behavior; (2) the decision trace behind those counters —
every tier decision and fallback with its machine-readable reasons;
(3) a `policy.speed_threshold` point from the shipped sweep axis, to
show policy knobs sweep like any spec field.

Run:  PYTHONPATH=src python examples/admission_control.py
"""

from repro.policy import PolicyConfig
from repro.scenarios import get_scenario, run_scenario_trace, sweep_scenario


def admission_comparison() -> None:
    """campus-air: default admission (never reject) vs factor 0.25."""
    base = get_scenario("campus-air")
    seed = base.seeds[0]
    constrained = base.replace(policy=PolicyConfig(admission_factor=0.25))

    default_metrics, _ = run_scenario_trace(base, seed)
    tight_metrics, trace = run_scenario_trace(constrained, seed)

    print(f"campus-air, seed {seed}: admission off vs factor 0.25")
    rows = [
        ("attached", "attached"),
        ("blocked_attaches", "blocked_attaches"),
        ("handoffs", "handoffs"),
        ("loss_rate", "loss_rate"),
    ]
    print(f"  {'metric':24s} {'admission off':>14s} {'factor 0.25':>14s}")
    for label, key in rows:
        print(
            f"  {label:24s} {default_metrics[key]:14.4g} "
            f"{tight_metrics[key]:14.4g}"
        )
    # policy.* keys exist only on the non-default-policy run: metric
    # gating keeps default-run tables byte-identical to the goldens.
    assert not any(k.startswith("policy.") for k in default_metrics)
    print("  policy.* (constrained run only):")
    for key in ("policy.decisions", "policy.admission_reject",
                "policy.escalate_tier", "policy.retry_same_tier"):
        print(f"  {key:24s} {'':>14s} {tight_metrics[key]:14g}")
    assert tight_metrics["policy.admission_reject"] > 0
    assert tight_metrics["policy.escalate_tier"] > 0
    return trace


def trace_tail(trace) -> None:
    """The narrative behind the counters: reasons on every record."""
    print()
    print(trace.render(title="decision trace (constrained run)", limit=6))
    assert all(record.reasons for record in trace.records)


def sweep_point_demo() -> None:
    """policy.speed_threshold sweeps like any other spec axis."""
    print()
    result = sweep_scenario("city-rush-hour/speed-threshold", smoke=True)
    print(
        f"sweep {result.experiment_id}: speed_threshold axis "
        f"{result.x_values} -> handoffs "
        f"{[round(r.metrics['handoffs'].mean, 2) for r in result.replications]}"
    )


def main() -> None:
    trace = admission_comparison()
    trace_tail(trace)
    sweep_point_demo()


if __name__ == "__main__":
    main()
