#!/usr/bin/env python3
"""Multimedia streaming shoot-out (the paper's Fig 4.1 scenario).

Streams the same CBR "video call" to a mobile performing six handoffs
under each of the four mobility schemes and prints the QoS comparison —
the reproduction of the paper's headline claims.

Run:  python examples/multimedia_streaming.py
"""

from repro.experiments import SCHEMES
from repro.metrics import format_table


def main() -> None:
    print("Streaming 200 kbit/s CBR to a mobile doing 6 handoffs (2 s apart)\n")
    rows = []
    for name, runner in SCHEMES.items():
        metrics = runner(seed=1, handoffs=6, handoff_interval=2.0, duration=16.0)
        rows.append(
            [
                name,
                f"{metrics['loss_rate']:.4f}",
                f"{metrics['mean_delay'] * 1e3:.1f}",
                f"{metrics['jitter'] * 1e3:.2f}",
                f"{metrics['max_gap'] * 1e3:.0f}",
                int(metrics["duplicates"]),
            ]
        )
    print(
        format_table(
            ["scheme", "loss", "delay_ms", "jitter_ms", "max_gap_ms", "dups"],
            rows,
            title="QoS during handoffs, per mobility scheme",
        )
    )
    print(
        "\nReading: Mobile IP drops packets during every re-registration and"
        "\npays the HA triangle in delay; Cellular IP hard handoff loses the"
        "\npackets in flight below the crossover; semisoft fixes loss with"
        "\nduplicate packets; the paper's RSMC buffers at the domain root --"
        "\nno loss, no duplicates, a small delay bump while the buffer flushes."
    )


if __name__ == "__main__":
    main()
