#!/usr/bin/env python3
"""Tour of the shared air-interface contention model.

Three stops: (1) raw `SharedChannel` arbitration — FIFO airtime with
the deterministic mobile-index tie-break; (2) a channel-enabled
catalog scenario (`campus-air`) reporting the contention metrics that
legacy runs never emit; (3) the legacy contract — the same spec with
channels disabled produces a world without a single shared channel.

Run:  PYTHONPATH=src python examples/air_interface.py
"""

from repro.net.link import Link
from repro.net.node import Node
from repro.net.packet import Packet
from repro.radio.channel import DOWNLINK, SharedChannel
from repro.scenarios import get_scenario, run_scenario_spec
from repro.scenarios.builder import build_scenario
from repro.sim.kernel import Simulator


def arbitration_demo() -> None:
    """Two same-instant packets: the smaller mobile index wins."""
    sim = Simulator()
    bs = Node(sim, "bs", "10.0.0.1")
    log = []

    class Mobile(Node):
        def deliver_local(self, packet, link):
            log.append((self.name, self.sim.now))

    channel = SharedChannel(sim, "air-demo", downlink_bps=8000.0, uplink_bps=4000.0)
    links = {}
    for key, (name, address) in enumerate(
        [("mn-a", "10.99.0.1"), ("mn-b", "10.99.0.2")]
    ):
        mobile = Mobile(sim, name, address)
        links[name] = Link(
            sim, bs, mobile,
            delay=0.0,
            shared_channel=channel,
            channel_direction=DOWNLINK,
            channel_key=key,
        )
    # Submitted in reverse key order at t=0; granted in key order.
    links["mn-b"].transmit(
        Packet(src="10.0.0.1", dst="10.99.0.2", size=500, protocol="data")
    )
    links["mn-a"].transmit(
        Packet(src="10.0.0.1", dst="10.99.0.1", size=500, protocol="data")
    )
    sim.run()
    print("arbitration order (500 B at 1000 B/s each):")
    for name, when in log:
        print(f"  {name} delivered at t={when:g}s")
    print(f"  downlink airtime used: {channel.stats.busy_seconds[DOWNLINK]:g}s")


def contended_scenario_demo() -> None:
    """campus-air (smoke): per-cell channels carry the campus load."""
    spec = get_scenario("campus-air").smoke()
    metrics = run_scenario_spec(spec, seed=1)
    print("\ncampus-air --smoke, seed 1 (contention metrics included):")
    for key in ("loss_rate", "mean_delay", "air_busiest_downlink", "air_detach_drops"):
        print(f"  {key:22s} {metrics[key]:g}")

    built = build_scenario(spec, seed=1)
    built.execute()
    print("  per-cell shared channels:")
    for bs in built.world.all_radio_stations():
        channel = bs.shared_channel
        print(
            f"    {bs.name:3s} {bs.tier.label:5s} "
            f"down={channel.rates['downlink']/1e3:g}k "
            f"granted={channel.stats.granted['downlink']}"
        )


def legacy_contract_demo() -> None:
    """Channels disabled (the default): no SharedChannel anywhere."""
    built = build_scenario(get_scenario("campus-dense").smoke(), seed=1)
    channels = [
        bs.shared_channel
        for bs in built.world.all_radio_stations()
        if bs.shared_channel is not None
    ]
    print(f"\nlegacy campus-dense --smoke: shared channels built = {len(channels)}")


def main() -> None:
    arbitration_demo()
    contended_scenario_demo()
    legacy_contract_demo()


if __name__ == "__main__":
    main()
