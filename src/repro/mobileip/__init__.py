"""Mobile IP substrate: home agents, foreign agents, mobile nodes and
the registration/tunnelling machinery (macro-tier mobility)."""

from repro.mobileip import messages
from repro.mobileip.foreign_agent import ForeignAgent, Visitor
from repro.mobileip.home_agent import Binding, HomeAgent
from repro.mobileip.mobile_node import MobileIPNode

__all__ = [
    "Binding",
    "ForeignAgent",
    "HomeAgent",
    "MobileIPNode",
    "Visitor",
    "messages",
]


def install_home_prefix_routes(network, home_agent) -> None:
    """Point every router's route for the HA's home prefix at the HA.

    Call after ``network.install_routes()``: static host routes cannot
    cover mobile home addresses, so the home prefix must be attracted
    to the home agent, which then tunnels per its binding cache.
    """
    import networkx as nx

    from repro.net.router import Router

    graph = network.graph()
    for node in network.nodes.values():
        if not isinstance(node, Router) or node is home_agent:
            continue
        try:
            path = nx.dijkstra_path(graph, node, home_agent, weight="weight")
        except nx.NetworkXNoPath:
            continue
        if len(path) >= 2:
            node.add_route(home_agent.home_prefix, path[1])
