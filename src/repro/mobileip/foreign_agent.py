"""The Mobile IP Foreign Agent.

A router on a visited link that advertises a care-of address, relays
registrations to home agents, de-tunnels packets arriving for its
visitors and delivers them over the local (wireless) hop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.mobileip import messages
from repro.net.addressing import IPAddress
from repro.net.link import connect
from repro.net.node import Node
from repro.net.packet import Packet, decapsulate
from repro.net.router import Router
from repro.radio.channel import airtime_key

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.link import Link
    from repro.radio.channel import SharedChannel
    from repro.sim.kernel import Simulator


@dataclass
class Visitor:
    """A mobile currently registered through this FA."""

    home_address: IPAddress
    node: Node
    registered_at: float


class ForeignAgent(Router):
    """Router + visitor list + tunnel exit point + advertisement source."""

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        address,
        advertisement_interval: float = 1.0,
        wireless_bandwidth: float = 11e6,
        wireless_delay: float = 0.002,
        shared_channel: Optional["SharedChannel"] = None,
    ) -> None:
        super().__init__(sim, name, address)
        self.advertisement_interval = advertisement_interval
        self.wireless_bandwidth = wireless_bandwidth
        self.wireless_delay = wireless_delay
        #: Shared air interface of this FA's cell; ``None`` = legacy
        #: mode (unconstrained per-mobile radio links).  When set, both
        #: downlink deliveries and the mobiles' uplink traffic
        #: (registration requests, elastic acks, data) contend on it —
        #: apples-to-apples with the Cellular IP and multi-tier stacks.
        self.shared_channel = shared_channel
        #: Mobiles radio-attached to this FA's link (pre-registration).
        self.attached: dict[IPAddress, Node] = {}
        #: Mobiles whose registration through this FA was accepted.
        self.visitors: dict[IPAddress, Visitor] = {}
        self._advertisement_sequence = 0
        self.relayed_requests = 0
        self.relayed_replies = 0
        self.delivered_to_visitors = 0
        self.dropped_unknown_visitor = 0
        self.on_protocol("ipip", self._handle_tunneled)
        self.on_protocol(messages.REGISTRATION_REQUEST, self._relay_request)
        self.on_protocol(messages.REGISTRATION_REPLY, self._relay_reply)
        self.on_protocol(messages.AGENT_SOLICITATION, self._handle_solicitation)
        self._advertiser = sim.process(self._advertise_loop(), name=f"{name}-adv")

    # ------------------------------------------------------------------
    # Radio attachment management (called by the mobility controller)
    # ------------------------------------------------------------------
    def attach_mobile(self, mobile: Node) -> None:
        """Wire the mobile to this FA's link and advertise immediately.

        With a shared channel configured the link pair is gated on it
        (downlink and uplink budgets both) and the mobile's airtime
        claim is attached here.
        """
        address = mobile.address
        if address in self.attached:
            return
        connect(
            self.sim,
            self,
            mobile,
            bandwidth=self.wireless_bandwidth,
            delay=self.wireless_delay,
            shared_channel=self.shared_channel,
            channel_key=airtime_key(mobile),
        )
        if self.shared_channel is not None:
            self.shared_channel.attach(airtime_key(mobile))
        self.attached[address] = mobile
        self._send_advertisement(mobile)

    def detach_mobile(self, mobile: Node) -> None:
        """Tear the radio link down (the mobile left coverage).

        Cancels any airtime the departed mobile still had queued on
        this cell's shared channel (air-interface losses); a no-op in
        legacy mode.
        """
        if self.shared_channel is not None and self.link_to(mobile) is not None:
            self.shared_channel.detach(airtime_key(mobile))
        self.attached.pop(mobile.address, None)
        self.visitors.pop(mobile.address, None)
        self.detach_link(mobile)
        mobile.detach_link(self)

    # ------------------------------------------------------------------
    # Agent advertisement
    # ------------------------------------------------------------------
    def _advertise_loop(self):
        while True:
            yield self.sim.timeout(self.advertisement_interval)
            for mobile in list(self.attached.values()):
                self._send_advertisement(mobile)

    def _send_advertisement(self, mobile: Node) -> None:
        self._advertisement_sequence += 1
        advertisement = messages.AgentAdvertisement(
            agent_address=self.address,
            care_of_address=self.address,
            sequence=self._advertisement_sequence,
            lifetime=self.advertisement_interval * 3,
            is_home_agent=False,
            is_foreign_agent=True,
        )
        self.send_via(
            mobile,
            Packet(
                src=self.address,
                dst=mobile.address,
                size=messages.ADVERTISEMENT_BYTES,
                protocol=messages.AGENT_ADVERTISEMENT,
                payload=advertisement,
                created_at=self.sim.now,
            ),
        )

    def _handle_solicitation(self, packet: Packet, link: Optional["Link"]) -> None:
        mobile = self.attached.get(packet.src)
        if mobile is not None:
            self._send_advertisement(mobile)

    # ------------------------------------------------------------------
    # Registration relay
    # ------------------------------------------------------------------
    def _relay_request(self, packet: Packet, link: Optional["Link"]) -> None:
        request = packet.payload
        if not isinstance(request, messages.RegistrationRequest):
            return
        if request.home_address not in self.attached:
            return  # not radio-attached here; ignore
        self.relayed_requests += 1
        relayed = Packet(
            src=self.address,
            dst=request.home_agent,
            size=messages.REGISTRATION_REQUEST_BYTES,
            protocol=messages.REGISTRATION_REQUEST,
            payload=request,
            created_at=packet.created_at,
        )
        self.originate(relayed)

    def _relay_reply(self, packet: Packet, link: Optional["Link"]) -> None:
        reply = packet.payload
        if not isinstance(reply, messages.RegistrationReply):
            return
        mobile = self.attached.get(reply.home_address)
        if mobile is None:
            return
        if reply.accepted:
            self.visitors[reply.home_address] = Visitor(
                home_address=reply.home_address,
                node=mobile,
                registered_at=self.sim.now,
            )
        self.relayed_replies += 1
        self.send_via(
            mobile,
            Packet(
                src=self.address,
                dst=mobile.address,
                size=messages.REGISTRATION_REPLY_BYTES,
                protocol=messages.REGISTRATION_REPLY,
                payload=reply,
                created_at=packet.created_at,
            ),
        )

    # ------------------------------------------------------------------
    # Tunnel exit
    # ------------------------------------------------------------------
    def _handle_tunneled(self, packet: Packet, link: Optional["Link"]) -> None:
        inner = decapsulate(packet)
        visitor = self.visitors.get(inner.dst)
        if visitor is None:
            self.dropped_unknown_visitor += 1
            return
        self.delivered_to_visitors += 1
        self.send_via(visitor.node, inner)

    def originate(self, packet: Packet) -> None:
        """Send a locally generated packet using the forwarding table."""
        next_hop = self.table.lookup(packet.dst)
        if next_hop is not None:
            self.send_via(next_hop, packet)
