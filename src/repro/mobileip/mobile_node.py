"""The Mobile IP mobile node: movement detection, registration state
machine with retransmission, and plain data endpoints."""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Callable, Optional

from repro.mobileip import messages
from repro.net.addressing import IPAddress
from repro.net.node import Node
from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.link import Link
    from repro.sim.kernel import Simulator


class MobileIPNode(Node):
    """A mobile host with a permanent home address.

    The node watches agent advertisements to detect movement; on
    discovering a new foreign agent it registers through it with its
    home agent, retransmitting with exponential backoff until a reply
    arrives.  Successful registrations renew before expiry.
    """

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        home_address,
        home_agent_address,
        registration_lifetime: float = 60.0,
        retransmit_initial: float = 1.0,
        retransmit_max: float = 8.0,
    ) -> None:
        super().__init__(sim, name, home_address)
        self.home_address = IPAddress(home_address)
        self.home_agent_address = IPAddress(home_agent_address)
        self.registration_lifetime = registration_lifetime
        self.retransmit_initial = retransmit_initial
        self.retransmit_max = retransmit_max

        self.current_agent: Optional[IPAddress] = None
        self.registered_agent: Optional[IPAddress] = None
        self.registered_at: Optional[float] = None
        self._identification = itertools.count(1)
        self._pending_identification: Optional[int] = None
        self._retransmit_process = None
        self.registration_latencies: list[float] = []
        self.registration_attempts = 0
        #: Hooks fired with (agent_address, latency) on registration.
        self.on_registered: list[Callable[[IPAddress, float], None]] = []

        self.on_protocol(messages.AGENT_ADVERTISEMENT, self._handle_advertisement)
        self.on_protocol(messages.REGISTRATION_REPLY, self._handle_reply)

    # ------------------------------------------------------------------
    @property
    def is_registered(self) -> bool:
        if self.registered_agent is None or self.registered_at is None:
            return False
        return self.sim.now <= self.registered_at + self.registration_lifetime

    def _agent_node(self) -> Optional[Node]:
        """The neighbor that is our current agent, if still linked."""
        for neighbor in self.links:
            if neighbor.owns(self.current_agent):
                return neighbor
        return None

    # ------------------------------------------------------------------
    # Movement detection & registration
    # ------------------------------------------------------------------
    def _handle_advertisement(self, packet: Packet, link: Optional["Link"]) -> None:
        advertisement = packet.payload
        if not isinstance(advertisement, messages.AgentAdvertisement):
            return
        agent = advertisement.agent_address
        if agent != self.current_agent:
            # New point of attachment detected: (re-)register.
            self.current_agent = agent
            self._start_registration()
        elif self.is_registered and self._near_expiry():
            self._start_registration()

    def _near_expiry(self) -> bool:
        remaining = (self.registered_at + self.registration_lifetime) - self.sim.now
        return remaining < self.registration_lifetime * 0.25

    def _start_registration(self) -> None:
        identification = next(self._identification)
        self._pending_identification = identification
        if self._retransmit_process is not None and self._retransmit_process.is_alive:
            self._retransmit_process.interrupt("superseded")
        self._retransmit_process = self.sim.process(
            self._register_with_retry(identification),
            name=f"{self.name}-reg-{identification}",
        )

    def _register_with_retry(self, identification: int):
        from repro.sim.errors import Interrupt

        backoff = self.retransmit_initial
        started = self.sim.now
        while self._pending_identification == identification:
            self._send_registration_request(identification, started)
            try:
                yield self.sim.timeout(backoff)
            except Interrupt:
                return
            backoff = min(backoff * 2.0, self.retransmit_max)

    def _send_registration_request(self, identification: int, started: float) -> None:
        agent_node = self._agent_node()
        if agent_node is None or self.current_agent is None:
            return
        self.registration_attempts += 1
        request = messages.RegistrationRequest(
            home_address=self.home_address,
            home_agent=self.home_agent_address,
            care_of_address=self.current_agent,
            lifetime=self.registration_lifetime,
            identification=identification,
        )
        self.send_via(
            agent_node,
            Packet(
                src=self.home_address,
                dst=self.current_agent,
                size=messages.REGISTRATION_REQUEST_BYTES,
                protocol=messages.REGISTRATION_REQUEST,
                payload=request,
                created_at=started,
            ),
        )

    def _handle_reply(self, packet: Packet, link: Optional["Link"]) -> None:
        reply = packet.payload
        if not isinstance(reply, messages.RegistrationReply):
            return
        if reply.identification != self._pending_identification:
            return  # stale reply
        self._pending_identification = None
        if self._retransmit_process is not None and self._retransmit_process.is_alive:
            self._retransmit_process.interrupt("answered")
        if reply.accepted:
            self.registered_agent = self.current_agent
            self.registered_at = self.sim.now
            latency = self.sim.now - packet.created_at
            self.registration_latencies.append(latency)
            for hook in self.on_registered:
                hook(self.registered_agent, latency)

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def originate(self, packet: Packet) -> bool:
        """Send a data packet via the current point of attachment."""
        agent_node = self._agent_node()
        if agent_node is None:
            # Fall back to any link (e.g. wired home link in tests).
            neighbors = self.neighbors()
            if not neighbors:
                return False
            agent_node = neighbors[0]
        return self.send_via(agent_node, packet)
