"""The Mobile IP Home Agent.

A router on the mobile node's home link that (a) tracks each mobile's
current care-of address in a *binding cache*, (b) attracts packets sent
to home addresses, and (c) tunnels them to the registered care-of
address (IP-in-IP).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.mobileip import messages
from repro.net.addressing import IPAddress, Prefix
from repro.net.packet import Packet, encapsulate
from repro.net.router import Router

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.link import Link
    from repro.sim.kernel import Simulator


@dataclass
class Binding:
    """One mobility binding: home address -> care-of address."""

    home_address: IPAddress
    care_of_address: IPAddress
    lifetime: float
    registered_at: float

    def expired(self, now: float) -> bool:
        return now > self.registered_at + self.lifetime


class HomeAgent(Router):
    """Router + binding cache + tunnel entry point."""

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        address,
        home_prefix,
        max_lifetime: float = 300.0,
    ) -> None:
        super().__init__(sim, name, address)
        self.home_prefix = (
            home_prefix if isinstance(home_prefix, Prefix) else Prefix(home_prefix)
        )
        self.max_lifetime = max_lifetime
        self.bindings: dict[IPAddress, Binding] = {}
        self._last_identification: dict[IPAddress, int] = {}
        self.registrations_accepted = 0
        self.registrations_denied = 0
        self.tunneled_count = 0
        self.dropped_no_binding = 0
        self.on_protocol(messages.REGISTRATION_REQUEST, self._handle_registration)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def _handle_registration(self, packet: Packet, link: Optional["Link"]) -> None:
        request = packet.payload
        if not isinstance(request, messages.RegistrationRequest):
            return
        code = self._validate(request)
        lifetime = min(request.lifetime, self.max_lifetime)
        previous = self.bindings.get(request.home_address)
        if code == messages.CODE_ACCEPTED:
            if request.lifetime == 0:
                # Deregistration (mobile returned home).
                self.bindings.pop(request.home_address, None)
            else:
                self.bindings[request.home_address] = Binding(
                    home_address=request.home_address,
                    care_of_address=request.care_of_address,
                    lifetime=lifetime,
                    registered_at=self.sim.now,
                )
            self._last_identification[request.home_address] = request.identification
            self.registrations_accepted += 1
            if (
                previous is not None
                and request.lifetime > 0
                and previous.care_of_address != request.care_of_address
            ):
                # The paper's inter-domain step (§3.2, Fig 3.3): "home
                # network will reply new location information to original
                # domain", so the old domain can forward held packets.
                self._notify_previous_domain(previous, request)
        else:
            self.registrations_denied += 1

        reply = messages.RegistrationReply(
            home_address=request.home_address,
            home_agent=self.address,
            code=code,
            lifetime=lifetime,
            identification=request.identification,
        )
        # The reply is sent to the relaying agent (packet source), which
        # is the FA for foreign registration or the MN itself at home.
        self.originate(
            Packet(
                src=self.address,
                dst=packet.src,
                size=messages.REGISTRATION_REPLY_BYTES,
                protocol=messages.REGISTRATION_REPLY,
                payload=reply,
                created_at=self.sim.now,
            )
        )

    def _notify_previous_domain(
        self, previous: Binding, request: messages.RegistrationRequest
    ) -> None:
        notification = messages.BindingNotification(
            home_address=request.home_address,
            forward_to=request.care_of_address,
            sequence=request.identification,
        )
        self.originate(
            Packet(
                src=self.address,
                dst=previous.care_of_address,
                size=messages.BINDING_NOTIFY_BYTES,
                protocol=messages.BINDING_NOTIFY,
                payload=notification,
                created_at=self.sim.now,
            )
        )

    def _validate(self, request: messages.RegistrationRequest) -> int:
        if request.home_agent != self.address:
            return messages.CODE_DENIED_UNKNOWN_HA
        if request.home_address not in self.home_prefix:
            return messages.CODE_DENIED_UNKNOWN_HA
        last = self._last_identification.get(request.home_address)
        if last is not None and request.identification <= last:
            return messages.CODE_DENIED_ID_MISMATCH
        return messages.CODE_ACCEPTED

    # ------------------------------------------------------------------
    # Data plane: intercept and tunnel
    # ------------------------------------------------------------------
    def forward(self, packet: Packet, link: Optional["Link"]) -> None:
        if packet.dst in self.home_prefix and packet.protocol != "ipip":
            binding = self.lookup_binding(packet.dst)
            if binding is not None:
                tunneled = encapsulate(packet, self.address, binding.care_of_address)
                self.tunneled_count += 1
                super().forward(tunneled, link)
                return
            # No binding: the mobile is (presumed) at home; fall through to
            # normal forwarding, which drops if it is not actually here.
            if self.table.lookup(packet.dst) is None:
                self.dropped_no_binding += 1
                return
        super().forward(packet, link)

    def lookup_binding(self, home_address) -> Optional[Binding]:
        binding = self.bindings.get(IPAddress(home_address))
        if binding is None:
            return None
        if binding.expired(self.sim.now):
            del self.bindings[binding.home_address]
            return None
        return binding

    def originate(self, packet: Packet) -> None:
        """Send a locally generated packet using the forwarding table."""
        next_hop = self.table.lookup(packet.dst)
        if next_hop is not None:
            self.send_via(next_hop, packet)
