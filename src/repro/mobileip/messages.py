"""Mobile IP control messages (RFC 2002/3344-style, simplified).

Each message is a payload carried in a :class:`repro.net.Packet` with
the matching ``protocol`` tag, so control traffic experiences real
queueing and propagation delay.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.addressing import IPAddress

#: Protocol tags used on the wire.
AGENT_ADVERTISEMENT = "mip-agent-adv"
AGENT_SOLICITATION = "mip-agent-sol"
REGISTRATION_REQUEST = "mip-reg-request"
REGISTRATION_REPLY = "mip-reg-reply"
BINDING_NOTIFY = "mip-binding-notify"

#: Wire sizes in bytes (IP+UDP+message, RFC-ish ballpark).
ADVERTISEMENT_BYTES = 48
SOLICITATION_BYTES = 36
REGISTRATION_REQUEST_BYTES = 52
REGISTRATION_REPLY_BYTES = 44
BINDING_NOTIFY_BYTES = 44

#: Registration reply codes (subset of RFC 3344 §3.8.2).
CODE_ACCEPTED = 0
CODE_DENIED_UNKNOWN_HA = 136
CODE_DENIED_ID_MISMATCH = 133
CODE_DENIED_LIFETIME = 69


@dataclass(frozen=True)
class AgentAdvertisement:
    """Broadcast by home/foreign agents so MNs can detect movement."""

    agent_address: IPAddress
    care_of_address: IPAddress
    sequence: int
    lifetime: float
    is_home_agent: bool
    is_foreign_agent: bool


@dataclass(frozen=True)
class AgentSolicitation:
    """Sent by an MN that wants an immediate advertisement."""

    mobile_address: IPAddress


@dataclass(frozen=True)
class RegistrationRequest:
    """MN -> (FA) -> HA: please bind my home address to this CoA."""

    home_address: IPAddress
    home_agent: IPAddress
    care_of_address: IPAddress
    lifetime: float
    identification: int


@dataclass(frozen=True)
class RegistrationReply:
    """HA -> (FA) -> MN: binding accepted or denied."""

    home_address: IPAddress
    home_agent: IPAddress
    code: int
    lifetime: float
    identification: int

    @property
    def accepted(self) -> bool:
        return self.code == CODE_ACCEPTED


@dataclass(frozen=True)
class BindingNotification:
    """Out-of-band binding hint (used by the paper's RSMC to tell the HA
    and CN where an MN now is, enabling route optimization)."""

    home_address: IPAddress
    forward_to: IPAddress
    sequence: int
