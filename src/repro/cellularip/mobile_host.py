"""The Cellular IP mobile host.

Implements the paper's §2.2.2 behaviours: route-update packets while
*active*, paging-update packets while *idle* (idle = no data for
``active_state_timeout``), and duplicate suppression for the semisoft
handoff's dual-path interval.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Optional

from repro.cellularip import messages
from repro.cellularip.base_station import CIPBaseStation
from repro.net.node import Node
from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.link import Link
    from repro.sim.kernel import Simulator


class CIPMobileHost(Node):
    """A mobile host inside a Cellular IP access network."""

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        address,
        domain,
        airtime_key: Optional[int] = None,
    ) -> None:
        super().__init__(sim, name, address)
        self.domain = domain
        #: Deterministic shared-channel arbitration key; ``None`` falls
        #: back to a name hash in :func:`repro.radio.channel.airtime_key`.
        self.airtime_key = airtime_key
        domain.register_mobile(address)
        self.serving_bs: Optional[CIPBaseStation] = None
        #: During semisoft handoff the host briefly hears two stations.
        self.secondary_bs: Optional[CIPBaseStation] = None
        self._last_uplink = -float("inf")
        self._last_activity = -float("inf")
        self._seen_keys: set[int] = set()
        self._seen_order: deque[int] = deque()
        self.duplicates_discarded = 0
        self.route_updates_sent = 0
        self.paging_updates_sent = 0
        self.handoffs_completed = 0
        self.data_received = 0
        #: Hooks fired with each received data packet.
        self.on_data: list[Callable[[Packet], None]] = []
        self._control_loop = sim.process(self._update_loop(), name=f"{name}-cip-loop")

    # ------------------------------------------------------------------
    @property
    def is_active(self) -> bool:
        """Active = sent or received data within active_state_timeout."""
        return (
            self.sim.now - self._last_activity <= self.domain.active_state_timeout
        )

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach_to(self, bs: CIPBaseStation) -> None:
        """Initial attachment: associate and announce our route."""
        bs.attach_mobile(self)
        self.serving_bs = bs
        self.send_route_update()

    def handoff_hard(self, new_bs: CIPBaseStation) -> None:
        """Cellular IP hard handoff: break-then-make.

        The radio retunes first; the route-update through the new base
        station races the packets still flowing down the old path —
        those are the handoff losses the paper's semisoft variant and
        RSMC buffering are designed to eliminate.
        """
        old = self.serving_bs
        if old is not None:
            old.detach_mobile(self)
        new_bs.attach_mobile(self)
        self.serving_bs = new_bs
        self.send_route_update()
        self.handoffs_completed += 1

    def handoff_semisoft(self, new_bs: CIPBaseStation):
        """Cellular IP semisoft handoff (generator: run as a process).

        The host first sends a *semisoft* route-update through the new
        base station while still listening to the old one; the crossover
        node then feeds both paths.  After ``semisoft_delay`` the radio
        switches and a regular route-update hardens the new path.
        """
        old = self.serving_bs
        new_bs.attach_mobile(self)
        self.secondary_bs = new_bs
        self._send_update(new_bs, semisoft=True)
        yield self.sim.timeout(self.domain.semisoft_delay)
        self.serving_bs = new_bs
        self.secondary_bs = None
        if old is not None:
            old.detach_mobile(self)
        self.send_route_update()
        self.handoffs_completed += 1

    # ------------------------------------------------------------------
    # Control packets
    # ------------------------------------------------------------------
    def send_route_update(self) -> None:
        if self.serving_bs is None:
            return
        self._send_update(self.serving_bs, semisoft=False)

    def _send_update(self, bs: CIPBaseStation, semisoft: bool) -> None:
        gateway = self.domain.gateway
        if gateway is None:
            raise RuntimeError("domain has no gateway")
        self.route_updates_sent += 1
        self._last_uplink = self.sim.now
        self.send_via(
            bs,
            Packet(
                src=self.address,
                dst=gateway.address,
                size=messages.ROUTE_UPDATE_BYTES,
                protocol=messages.ROUTE_UPDATE,
                payload=messages.RouteUpdate(self.address, semisoft=semisoft),
                created_at=self.sim.now,
            ),
        )

    def send_paging_update(self) -> None:
        if self.serving_bs is None or self.domain.gateway is None:
            return
        self.paging_updates_sent += 1
        self.send_via(
            self.serving_bs,
            Packet(
                src=self.address,
                dst=self.domain.gateway.address,
                size=messages.PAGING_UPDATE_BYTES,
                protocol=messages.PAGING_UPDATE,
                payload=messages.PagingUpdate(self.address),
                created_at=self.sim.now,
            ),
        )

    def _update_loop(self):
        """Periodic route/paging updates per the host's state.

        Ticks at route-update granularity so the idle->active transition
        is noticed promptly; paging updates keep their own (longer)
        cadence via a last-sent timestamp.
        """
        domain = self.domain
        last_paging = -float("inf")
        while True:
            yield self.sim.timeout(domain.route_update_time)
            if self.serving_bs is None:
                continue
            if self.is_active:
                # Data already refreshes caches; only fill silent gaps.
                # Strict > so data sent at this very tick suppresses the
                # redundant route-update.
                if self.sim.now - self._last_uplink > domain.route_update_time:
                    self.send_route_update()
            elif self.sim.now - last_paging >= domain.paging_update_time:
                self.send_paging_update()
                last_paging = self.sim.now

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def originate(self, packet: Packet) -> bool:
        """Send a data packet uplink via the serving base station."""
        if self.serving_bs is None:
            return False
        self._last_activity = self.sim.now
        self._last_uplink = self.sim.now
        return self.send_via(self.serving_bs, packet)

    def deliver_local(self, packet: Packet, link: Optional["Link"]) -> None:
        key = packet.duplicate_of or packet.uid
        if key in self._seen_keys:
            self.duplicates_discarded += 1
            return
        self._remember(key)
        if packet.protocol == "data":
            self._last_activity = self.sim.now
            self.data_received += 1
            for hook in self.on_data:
                hook(packet)
        super().deliver_local(packet, link)

    def _remember(self, key: int, window: int = 4096) -> None:
        self._seen_keys.add(key)
        self._seen_order.append(key)
        while len(self._seen_order) > window:
            self._seen_keys.discard(self._seen_order.popleft())
