"""Cellular IP control messages and protocol tags."""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.addressing import IPAddress

ROUTE_UPDATE = "cip-route-update"
PAGING_UPDATE = "cip-paging-update"

ROUTE_UPDATE_BYTES = 40
PAGING_UPDATE_BYTES = 40


@dataclass(frozen=True)
class RouteUpdate:
    """Uplink control packet refreshing per-hop routing-cache mappings.

    ``semisoft`` marks the advance update sent through the *new* base
    station before the radio actually switches (semisoft handoff): it
    adds a second mapping instead of replacing the existing one, so the
    crossover node temporarily feeds both paths.
    """

    mobile_address: IPAddress
    semisoft: bool = False


@dataclass(frozen=True)
class PagingUpdate:
    """Uplink control packet from an *idle* mobile refreshing the
    coarser paging caches."""

    mobile_address: IPAddress
