"""Soft-state route/paging caches (the heart of Cellular IP).

Each base station keeps per-mobile *downward* mappings: which child
(or radio interface) leads to the mobile.  Mappings are refreshed by
any uplink packet from the mobile and silently time out — there is no
explicit teardown signalling, which is exactly what makes Cellular IP
handoff cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.net.addressing import IPAddress

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node
    from repro.sim.kernel import Simulator


@dataclass
class CacheEntry:
    next_hop: "Node"
    expires: float
    semisoft: bool = False
    #: Monotonic freshness rank (same-instant refreshes stay ordered).
    freshness: int = 0


class RoutingCache:
    """Per-node soft-state mobile -> next-hop mappings.

    Entries are per-neighbor soft state, each with its own timer (real
    Cellular IP semantics): a refresh updates *its* entry and never
    deletes the others — they simply time out.  Lookup returns the most
    recently refreshed *regular* mapping; while any *semisoft* mapping
    is alive, it is returned as well, so the node feeds both paths for
    the dual-cast interval of a semisoft handoff.  A regular refresh on
    a semisoft entry hardens it (clears the flag).
    """

    def __init__(self, sim: "Simulator", timeout: float) -> None:
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self.sim = sim
        self.timeout = timeout
        self._entries: dict[IPAddress, list[CacheEntry]] = {}
        self.refreshes = 0
        self.expirations = 0
        self._freshness = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, mobile) -> bool:
        return bool(self.lookup(mobile))

    def refresh(self, mobile, next_hop: "Node", semisoft: bool = False) -> None:
        mobile = IPAddress(mobile)
        self.refreshes += 1
        self._freshness += 1
        expires = self.sim.now + self.timeout
        entries = self._entries.setdefault(mobile, [])
        for entry in entries:
            if entry.next_hop is next_hop:
                entry.expires = expires
                entry.freshness = self._freshness
                entry.semisoft = semisoft
                return
        entries.append(
            CacheEntry(
                next_hop, expires, semisoft=semisoft, freshness=self._freshness
            )
        )

    def lookup(self, mobile) -> list["Node"]:
        """Live next hops for ``mobile``: the freshest regular mapping,
        plus every live semisoft mapping (dual-cast during handoff).
        Expired entries are purged on access."""
        mobile = IPAddress(mobile)
        entries = self._entries.get(mobile)
        if not entries:
            return []
        now = self.sim.now
        live = [entry for entry in entries if entry.expires > now]
        expired = len(entries) - len(live)
        if expired:
            self.expirations += expired
        if live:
            self._entries[mobile] = live
        else:
            del self._entries[mobile]
            return []

        regular = [entry for entry in live if not entry.semisoft]
        semisoft = [entry for entry in live if entry.semisoft]
        hops: list["Node"] = []
        if regular:
            freshest = max(regular, key=lambda entry: entry.freshness)
            hops.append(freshest.next_hop)
        for entry in semisoft:
            if entry.next_hop not in hops:
                hops.append(entry.next_hop)
        return hops

    def remove(self, mobile) -> None:
        """Explicitly clear the mapping (paper's Delete Location Message)."""
        self._entries.pop(IPAddress(mobile), None)

    def purge_expired(self) -> int:
        """Drop all expired entries; returns how many were removed."""
        removed = 0
        now = self.sim.now
        for mobile in list(self._entries):
            entries = self._entries[mobile]
            live = [entry for entry in entries if entry.expires > now]
            removed += len(entries) - len(live)
            if live:
                self._entries[mobile] = live
            else:
                del self._entries[mobile]
        self.expirations += removed
        return removed

    def mobiles(self) -> list[IPAddress]:
        return list(self._entries)
