"""Cellular IP base stations, gateway and the access-network domain.

A Cellular IP access network is a tree of base stations rooted at a
gateway.  Uplink packets from mobiles refresh soft-state routing-cache
mappings hop-by-hop on their way to the gateway; downlink packets
follow those mappings in reverse.  There is no per-mobile signalling
to tear down or move routes — handoff is just a route-update through
the new base station plus cache timeout of the old path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.cellularip import messages
from repro.cellularip.routing_cache import RoutingCache
from repro.net.addressing import IPAddress, Prefix
from repro.net.link import connect
from repro.net.node import Node
from repro.net.packet import Packet
from repro.radio.channel import SharedChannel, airtime_key

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.link import Link
    from repro.sim.kernel import Simulator


class CIPDomain:
    """Configuration and registry for one Cellular IP access network."""

    def __init__(
        self,
        sim: "Simulator",
        route_timeout: float = 1.5,
        paging_timeout: float = 12.0,
        route_update_time: float = 0.5,
        paging_update_time: float = 5.0,
        active_state_timeout: float = 2.0,
        semisoft_delay: float = 0.1,
        wireless_bandwidth: float = 2e6,
        wireless_delay: float = 0.002,
        wired_bandwidth: float = 100e6,
        wired_delay: float = 0.002,
        broadcast_paging: bool = True,
        channel_bandwidth: Optional[float] = None,
    ) -> None:
        if channel_bandwidth is not None and channel_bandwidth <= 0:
            raise ValueError(
                f"channel_bandwidth must be positive, got {channel_bandwidth}"
            )
        self.sim = sim
        self.route_timeout = route_timeout
        self.paging_timeout = paging_timeout
        self.route_update_time = route_update_time
        self.paging_update_time = paging_update_time
        self.active_state_timeout = active_state_timeout
        self.semisoft_delay = semisoft_delay
        self.wireless_bandwidth = wireless_bandwidth
        self.wireless_delay = wireless_delay
        self.wired_bandwidth = wired_bandwidth
        self.wired_delay = wired_delay
        self.broadcast_paging = broadcast_paging
        #: Shared downlink air-interface budget per base station
        #: (bit/s; uplink budget is half).  ``None`` (default) keeps
        #: the legacy unconstrained per-mobile radio links.
        self.channel_bandwidth = channel_bandwidth

        self.gateway: Optional["CIPGateway"] = None
        self.base_stations: list["CIPBaseStation"] = []
        self.mobile_addresses: set[IPAddress] = set()

    def register_mobile(self, address) -> None:
        self.mobile_addresses.add(IPAddress(address))

    def is_mobile(self, address) -> bool:
        return IPAddress(address) in self.mobile_addresses

    def add_gateway(self, gateway: "CIPGateway") -> "CIPGateway":
        if self.gateway is not None:
            raise ValueError("domain already has a gateway")
        self.gateway = gateway
        if gateway not in self.base_stations:
            self.base_stations.append(gateway)
        return gateway

    def link(self, parent: "CIPBaseStation", child: "CIPBaseStation") -> None:
        """Wire ``child`` under ``parent`` in the access tree."""
        if child.parent is not None:
            raise ValueError(f"{child.name} already has a parent")
        connect(
            self.sim,
            parent,
            child,
            bandwidth=self.wired_bandwidth,
            delay=self.wired_delay,
        )
        child.parent = parent
        parent.children.append(child)
        if child not in self.base_stations:
            self.base_stations.append(child)

    def total_control_packets(self) -> int:
        return sum(bs.control_packets_seen for bs in self.base_stations)

    def total_downlink_drops(self) -> int:
        return sum(
            bs.dropped_no_route + bs.dropped_stale_route for bs in self.base_stations
        )


class CIPBaseStation(Node):
    """One node of the Cellular IP access tree."""

    def __init__(self, sim: "Simulator", name: str, address, domain: CIPDomain) -> None:
        super().__init__(sim, name, address)
        self.domain = domain
        self.parent: Optional["CIPBaseStation"] = None
        self.children: list["CIPBaseStation"] = []
        self.routing_cache = RoutingCache(sim, domain.route_timeout)
        self.paging_cache = RoutingCache(sim, domain.paging_timeout)
        #: Shared air interface of this station's cell; ``None`` =
        #: legacy mode (unconstrained per-mobile radio links).
        self.shared_channel: Optional[SharedChannel] = None
        if domain.channel_bandwidth is not None:
            self.shared_channel = SharedChannel(
                sim,
                f"air-{name}",
                domain.channel_bandwidth,
                domain.channel_bandwidth * 0.5,
            )
        #: Radio-attached mobiles: address -> node.
        self.attached: dict[IPAddress, Node] = {}
        self.control_packets_seen = 0
        self.dropped_no_route = 0
        self.dropped_stale_route = 0
        self.paging_broadcasts = 0
        self.delivered_to_mobiles = 0
        if self not in domain.base_stations:
            domain.base_stations.append(self)

    # ------------------------------------------------------------------
    # Radio side
    # ------------------------------------------------------------------
    def attach_mobile(self, mobile: Node) -> None:
        """Associate ``mobile`` on the radio side.

        With a shared channel configured the link pair is gated on it
        and the mobile's airtime claim is attached here — a semisoft
        handoff therefore briefly holds claims on both the old and the
        new base station, exactly like its dual radio paths.
        """
        address = mobile.address
        if address in self.attached:
            return
        connect(
            self.sim,
            self,
            mobile,
            bandwidth=self.domain.wireless_bandwidth,
            delay=self.domain.wireless_delay,
            shared_channel=self.shared_channel,
            channel_key=airtime_key(mobile),
        )
        if self.shared_channel is not None:
            self.shared_channel.attach(airtime_key(mobile))
        self.attached[address] = mobile

    def detach_mobile(self, mobile: Node) -> None:
        """Tear the radio association down, migrating the airtime claim.

        Cancels any airtime the departed mobile still had queued on
        this cell's shared channel (air-interface losses); a no-op in
        legacy mode.
        """
        if self.shared_channel is not None and self.link_to(mobile) is not None:
            self.shared_channel.detach(airtime_key(mobile))
        self.attached.pop(mobile.address, None)
        self.detach_link(mobile)
        mobile.detach_link(self)

    # ------------------------------------------------------------------
    # Packet handling
    # ------------------------------------------------------------------
    def receive(self, packet: Packet, link: Optional["Link"] = None) -> None:
        self.received_count += 1
        from_node = link.head if link is not None else None

        uplink_arrival = from_node is not self.parent and not self._from_internet(
            from_node
        )
        if uplink_arrival and self.domain.is_mobile(packet.src):
            self._refresh_caches(packet, from_node)

        if packet.protocol == messages.ROUTE_UPDATE:
            self.control_packets_seen += 1
            self._forward_up_or_consume(packet)
            return
        if packet.protocol == messages.PAGING_UPDATE:
            self.control_packets_seen += 1
            self._forward_up_or_consume(packet)
            return

        if self.domain.is_mobile(packet.dst):
            self.deliver_downlink(packet)
            return

        if self.owns(packet.dst):
            self.deliver_local(packet, link)
            return

        # Uplink data toward the Internet.
        self._forward_up_or_consume(packet)

    def _from_internet(self, from_node: Optional[Node]) -> bool:
        return False  # only the gateway has an Internet side

    def _refresh_caches(self, packet: Packet, from_node: Optional[Node]) -> None:
        if from_node is None:
            return
        source = packet.src
        if packet.protocol == messages.PAGING_UPDATE:
            self.paging_cache.refresh(source, from_node)
            return
        semisoft = False
        if packet.protocol == messages.ROUTE_UPDATE and isinstance(
            packet.payload, messages.RouteUpdate
        ):
            semisoft = packet.payload.semisoft
        self.routing_cache.refresh(source, from_node, semisoft=semisoft)
        self.paging_cache.refresh(source, from_node)

    def _forward_up_or_consume(self, packet: Packet) -> None:
        if self.parent is not None:
            self.send_via(self.parent, packet)
        # else: gateway override handles the Internet side; control
        # packets terminate here.

    # ------------------------------------------------------------------
    # Downlink
    # ------------------------------------------------------------------
    def deliver_downlink(self, packet: Packet) -> None:
        destination = packet.dst
        mobile = self.attached.get(destination)
        if mobile is not None:
            self.delivered_to_mobiles += 1
            self.send_via(mobile, packet)
            return

        hops = self.routing_cache.lookup(destination)
        if hops:
            self._fan_out(packet, hops)
            return

        hops = self.paging_cache.lookup(destination)
        if hops:
            self._fan_out(packet, hops)
            return

        if self.domain.broadcast_paging and self.children:
            # Paging fallback: flood to every downlink neighbor.
            self.paging_broadcasts += 1
            self._fan_out(packet, list(self.children))
            return

        self.dropped_no_route += 1

    def _fan_out(self, packet: Packet, hops: list[Node]) -> None:
        live = [hop for hop in hops if hop in self.links]
        if not live:
            # Cached mapping points at a departed mobile's dead radio link.
            self.dropped_stale_route += 1
            return
        self.send_via(live[0], packet)
        for extra in live[1:]:
            duplicate = packet.copy(duplicate_of=packet.duplicate_of or packet.uid)
            self.send_via(extra, duplicate)


class CIPGateway(CIPBaseStation):
    """The access-network root: bridges the tree to the wired Internet.

    The gateway owns the domain's care-of address when Cellular IP is
    combined with Mobile IP (the paper's architecture), and decides
    whether unroutable downlink packets are paged or dropped.
    """

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        address,
        domain: CIPDomain,
        mobile_prefix=None,
    ) -> None:
        super().__init__(sim, name, address, domain)
        domain.add_gateway(self)
        self.internet_neighbor: Optional[Node] = None
        self.mobile_prefix: Optional[Prefix] = (
            Prefix(mobile_prefix) if mobile_prefix is not None else None
        )
        self.uplink_data_packets = 0

    def connect_internet(
        self, router: Node, bandwidth: float = 100e6, delay: float = 0.005
    ) -> None:
        connect(self.sim, self, router, bandwidth=bandwidth, delay=delay)
        self.internet_neighbor = router

    def _from_internet(self, from_node: Optional[Node]) -> bool:
        return from_node is not None and from_node is self.internet_neighbor

    def _forward_up_or_consume(self, packet: Packet) -> None:
        if packet.protocol in (messages.ROUTE_UPDATE, messages.PAGING_UPDATE):
            return  # control packets terminate at the gateway
        if self.internet_neighbor is not None:
            self.uplink_data_packets += 1
            self.send_via(self.internet_neighbor, packet)
