"""Cellular IP substrate: gateway-rooted access trees with soft-state
routing caches, paging, and hard/semisoft handoff (micro-tier mobility)."""

from repro.cellularip import messages
from repro.cellularip.base_station import CIPBaseStation, CIPDomain, CIPGateway
from repro.cellularip.mobile_host import CIPMobileHost
from repro.cellularip.routing_cache import CacheEntry, RoutingCache

__all__ = [
    "CacheEntry",
    "CIPBaseStation",
    "CIPDomain",
    "CIPGateway",
    "CIPMobileHost",
    "RoutingCache",
    "messages",
]
