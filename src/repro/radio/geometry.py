"""Planar geometry helpers for cell layouts and movement."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator


@dataclass(frozen=True)
class Point:
    """A point in meters on the simulation plane."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` in meters."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def towards(self, other: "Point", step: float) -> "Point":
        """The point ``step`` meters from here in the direction of ``other``.

        Does not overshoot: if ``other`` is closer than ``step``, returns
        ``other``.
        """
        gap = self.distance_to(other)
        if gap <= step or gap == 0.0:
            return other
        fraction = step / gap
        return Point(
            self.x + (other.x - self.x) * fraction,
            self.y + (other.y - self.y) * fraction,
        )

    def offset(self, dx: float, dy: float) -> "Point":
        """The point translated by ``(dx, dy)`` meters."""
        return Point(self.x + dx, self.y + dy)

    def __iter__(self):
        yield self.x
        yield self.y


ORIGIN = Point(0.0, 0.0)


@dataclass(frozen=True)
class Rectangle:
    """An axis-aligned bounding box ``[x_min, x_max] x [y_min, y_max]``."""

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self) -> None:
        if self.x_max <= self.x_min or self.y_max <= self.y_min:
            raise ValueError("degenerate rectangle")

    @property
    def width(self) -> float:
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        return self.y_max - self.y_min

    @property
    def center(self) -> Point:
        return Point((self.x_min + self.x_max) / 2, (self.y_min + self.y_max) / 2)

    def contains(self, point: Point) -> bool:
        """True when ``point`` lies inside (or on the edge of) the box."""
        return (
            self.x_min <= point.x <= self.x_max
            and self.y_min <= point.y <= self.y_max
        )

    def clamp(self, point: Point) -> Point:
        """The nearest point inside the box (projection onto the edges)."""
        return Point(
            min(max(point.x, self.x_min), self.x_max),
            min(max(point.y, self.y_min), self.y_max),
        )

    def reflect(self, point: Point) -> tuple[Point, bool, bool]:
        """Mirror a point that stepped outside back inside.

        Returns the reflected point plus flags saying whether the x and/or
        y direction must be inverted (for billiard-style mobility models).
        """
        x, y = point.x, point.y
        flip_x = flip_y = False
        if x < self.x_min:
            x = 2 * self.x_min - x
            flip_x = True
        elif x > self.x_max:
            x = 2 * self.x_max - x
            flip_x = True
        if y < self.y_min:
            y = 2 * self.y_min - y
            flip_y = True
        elif y > self.y_max:
            y = 2 * self.y_max - y
            flip_y = True
        return self.clamp(Point(x, y)), flip_x, flip_y


def grid_positions(
    bounds: Rectangle, rows: int, columns: int
) -> Iterator[Point]:
    """Cell-center positions for a uniform rows x columns grid layout."""
    if rows < 1 or columns < 1:
        raise ValueError("rows and columns must be positive")
    cell_width = bounds.width / columns
    cell_height = bounds.height / rows
    for row in range(rows):
        for column in range(columns):
            yield Point(
                bounds.x_min + (column + 0.5) * cell_width,
                bounds.y_min + (row + 0.5) * cell_height,
            )


def hex_positions(center: Point, radius: float, rings: int) -> Iterator[Point]:
    """Hexagonal layout: a center cell surrounded by ``rings`` rings.

    ``radius`` is the center-to-center distance between adjacent cells.
    """
    yield center
    for ring in range(1, rings + 1):
        # Walk the six ring edges.
        angle_offsets = [math.pi / 3 * k for k in range(6)]
        corner = Point(
            center.x + radius * ring * math.cos(0),
            center.y + radius * ring * math.sin(0),
        )
        current = corner
        for k in range(6):
            direction = angle_offsets[k] + 2 * math.pi / 3
            for _ in range(ring):
                yield current
                current = Point(
                    current.x + radius * math.cos(direction),
                    current.y + radius * math.sin(direction),
                )


def centroid(points: Iterable[Point]) -> Point:
    """The arithmetic mean position of ``points`` (at least one)."""
    points = list(points)
    if not points:
        raise ValueError("centroid of no points")
    return Point(
        sum(p.x for p in points) / len(points),
        sum(p.y for p in points) / len(points),
    )
