"""Cells and tiers.

The paper's architecture (§2.1, §4) has a cellular hierarchy of
pico-, micro- and macro-cells (satellite is mentioned but out of scope
of its mobility management, which focuses on micro and macro).  Each
tier differs in coverage radius, offered per-user bandwidth and how
well it suits fast-moving users.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.radio.geometry import Point


class Tier(enum.IntEnum):
    """Cell tiers, ordered small to large coverage."""

    PICO = 0
    MICRO = 1
    MACRO = 2

    @property
    def label(self) -> str:
        return self.name.lower()


#: Default physical parameters per tier: coverage radius (m), per-user
#: downlink bandwidth (bit/s), transmit power (dBm EIRP), channel count,
#: and the cell's *aggregate* shared-air-interface budgets
#: (``channel_downlink`` / ``channel_uplink``, bit/s — what every user
#: of the cell contends on when a
#: :class:`~repro.radio.channel.SharedChannel` is enabled).
#: Values follow the usual 3G-era multi-tier literature the paper cites
#: (Ganz/Haas/Krishna '96; Iera et al. '99): pico = in-building,
#: micro = urban street, macro = suburban umbrella.  EIRP is set so the
#: link budget closes at the nominal cell edge under the default
#: log-distance model (exponent 3.5, -95 dBm usable floor): an MN at
#: the edge of the cell is audible, just barely.  The shared budgets
#: mirror the paper's Table 1 tier trade-off: the macro umbrella is
#: wide but slow (a 384 kbit/s cell, a handful of voice calls), the
#: micro street cell carries a shared 2 Mbit/s, and the narrow
#: in-building pico is fast (11 Mbit/s, WLAN-class).
TIER_DEFAULTS = {
    Tier.PICO: {
        "radius": 60.0, "bandwidth": 2e6, "tx_power_dbm": 20.0, "channels": 16,
        "channel_downlink": 11e6, "channel_uplink": 5.5e6,
    },
    Tier.MICRO: {
        "radius": 400.0, "bandwidth": 384e3, "tx_power_dbm": 36.0, "channels": 32,
        "channel_downlink": 2e6, "channel_uplink": 1e6,
    },
    Tier.MACRO: {
        "radius": 2500.0, "bandwidth": 144e3, "tx_power_dbm": 65.0, "channels": 64,
        "channel_downlink": 384e3, "channel_uplink": 192e3,
    },
}


@dataclass
class Cell:
    """One cell: a coverage disc served by a base station."""

    name: str
    center: Point
    tier: Tier
    radius: float = 0.0
    bandwidth: float = 0.0
    tx_power_dbm: float = 0.0
    channels: int = 0
    #: Aggregate shared air-interface budgets (bit/s); 0 picks the tier
    #: default.  Only consulted when contention is enabled (see
    #: :class:`repro.radio.channel.ChannelPlan`).
    channel_downlink: float = 0.0
    channel_uplink: float = 0.0

    def __post_init__(self) -> None:
        defaults = TIER_DEFAULTS[self.tier]
        if self.radius <= 0:
            self.radius = defaults["radius"]
        if self.bandwidth <= 0:
            self.bandwidth = defaults["bandwidth"]
        if self.tx_power_dbm == 0.0:
            self.tx_power_dbm = defaults["tx_power_dbm"]
        if self.channels <= 0:
            self.channels = defaults["channels"]
        if self.channel_downlink <= 0:
            self.channel_downlink = defaults["channel_downlink"]
        if self.channel_uplink <= 0:
            self.channel_uplink = defaults["channel_uplink"]

    def covers(self, point: Point) -> bool:
        """True when ``point`` lies inside this cell's coverage disc."""
        return self.center.distance_to(point) <= self.radius

    def distance_to(self, point: Point) -> float:
        """Distance from the cell center to ``point`` in meters."""
        return self.center.distance_to(point)

    def edge_proximity(self, point: Point) -> float:
        """0 at the center, 1 at the coverage edge, >1 outside."""
        return self.center.distance_to(point) / self.radius

    def __repr__(self) -> str:
        return f"<Cell {self.name} {self.tier.label} r={self.radius:g}m>"


def best_covering_cell(
    cells: list[Cell], point: Point, tier: Optional[Tier] = None
) -> Optional[Cell]:
    """The covering cell with the smallest edge proximity (strongest
    nominal signal), optionally restricted to one tier."""
    best: Optional[Cell] = None
    best_proximity = float("inf")
    for cell in cells:
        if tier is not None and cell.tier is not tier:
            continue
        if not cell.covers(point):
            continue
        proximity = cell.edge_proximity(point)
        if proximity < best_proximity:
            best = cell
            best_proximity = proximity
    return best
