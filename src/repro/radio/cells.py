"""Cells and tiers.

The paper's architecture (§2.1, §4) has a cellular hierarchy of
pico-, micro- and macro-cells (satellite is mentioned but out of scope
of its mobility management, which focuses on micro and macro).  Each
tier differs in coverage radius, offered per-user bandwidth and how
well it suits fast-moving users.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.radio.geometry import Point


class Tier(enum.IntEnum):
    """Cell tiers, ordered small to large coverage."""

    PICO = 0
    MICRO = 1
    MACRO = 2

    @property
    def label(self) -> str:
        return self.name.lower()


#: Default physical parameters per tier: coverage radius (m), per-user
#: downlink bandwidth (bit/s), transmit power (dBm EIRP), channel count.
#: Values follow the usual 3G-era multi-tier literature the paper cites
#: (Ganz/Haas/Krishna '96; Iera et al. '99): pico = in-building,
#: micro = urban street, macro = suburban umbrella.  EIRP is set so the
#: link budget closes at the nominal cell edge under the default
#: log-distance model (exponent 3.5, -95 dBm usable floor): an MN at
#: the edge of the cell is audible, just barely.
TIER_DEFAULTS = {
    Tier.PICO: {"radius": 60.0, "bandwidth": 2e6, "tx_power_dbm": 20.0, "channels": 16},
    Tier.MICRO: {"radius": 400.0, "bandwidth": 384e3, "tx_power_dbm": 36.0, "channels": 32},
    Tier.MACRO: {"radius": 2500.0, "bandwidth": 144e3, "tx_power_dbm": 65.0, "channels": 64},
}


@dataclass
class Cell:
    """One cell: a coverage disc served by a base station."""

    name: str
    center: Point
    tier: Tier
    radius: float = 0.0
    bandwidth: float = 0.0
    tx_power_dbm: float = 0.0
    channels: int = 0

    def __post_init__(self) -> None:
        defaults = TIER_DEFAULTS[self.tier]
        if self.radius <= 0:
            self.radius = defaults["radius"]
        if self.bandwidth <= 0:
            self.bandwidth = defaults["bandwidth"]
        if self.tx_power_dbm == 0.0:
            self.tx_power_dbm = defaults["tx_power_dbm"]
        if self.channels <= 0:
            self.channels = defaults["channels"]

    def covers(self, point: Point) -> bool:
        return self.center.distance_to(point) <= self.radius

    def distance_to(self, point: Point) -> float:
        return self.center.distance_to(point)

    def edge_proximity(self, point: Point) -> float:
        """0 at the center, 1 at the coverage edge, >1 outside."""
        return self.center.distance_to(point) / self.radius

    def __repr__(self) -> str:
        return f"<Cell {self.name} {self.tier.label} r={self.radius:g}m>"


def best_covering_cell(
    cells: list[Cell], point: Point, tier: Optional[Tier] = None
) -> Optional[Cell]:
    """The covering cell with the smallest edge proximity (strongest
    nominal signal), optionally restricted to one tier."""
    best: Optional[Cell] = None
    best_proximity = float("inf")
    for cell in cells:
        if tier is not None and cell.tier is not tier:
            continue
        if not cell.covers(point):
            continue
        proximity = cell.edge_proximity(point)
        if proximity < best_proximity:
            best = cell
            best_proximity = proximity
    return best
