"""Signal measurement and handoff triggering.

The classic mobile-controlled handoff trigger: hand off when a
candidate cell's signal exceeds the serving cell's by a hysteresis
margin (optionally sustained for a time-to-trigger), or when the
serving signal falls below a drop threshold.  This implements the
"power of signal from BS" factor of the paper's §3.2 decision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.radio.cells import Cell
from repro.radio.geometry import Point
from repro.radio.propagation import PropagationModel


@dataclass
class Measurement:
    """One signal-strength sample for a cell."""

    cell: Cell
    rss_dbm: float

    def __repr__(self) -> str:
        return f"<Measurement {self.cell.name} {self.rss_dbm:.1f}dBm>"


class SignalMeter:
    """Measures RSS from every cell at a position and ranks candidates."""

    def __init__(
        self,
        propagation: PropagationModel,
        cells: list[Cell],
        min_usable_dbm: float = -95.0,
    ) -> None:
        self.propagation = propagation
        self.cells = list(cells)
        self.min_usable_dbm = min_usable_dbm

    def measure(self, cell: Cell, position: Point) -> Measurement:
        """Received signal strength of ``cell`` at ``position`` (dBm)."""
        distance = max(cell.center.distance_to(position), 1.0)
        rss = self.propagation.received_power_dbm(cell.tx_power_dbm, distance)
        return Measurement(cell, rss)

    def survey(self, position: Point) -> list[Measurement]:
        """All cells audible above the usable floor, strongest first."""
        measurements = [self.measure(cell, position) for cell in self.cells]
        audible = [m for m in measurements if m.rss_dbm >= self.min_usable_dbm]
        audible.sort(key=lambda m: m.rss_dbm, reverse=True)
        return audible

    def strongest(self, position: Point) -> Optional[Measurement]:
        """The loudest usable measurement at ``position``, or ``None``."""
        survey = self.survey(position)
        return survey[0] if survey else None


@dataclass
class HandoffTrigger:
    """Decision emitted by the :class:`HandoffDetector`."""

    target: Cell
    reason: str
    serving_rss_dbm: float
    target_rss_dbm: float


class HandoffDetector:
    """Stateful hysteresis + time-to-trigger handoff detector.

    ``check`` is called on each measurement epoch with the MN's current
    position; it returns a :class:`HandoffTrigger` when a handoff is
    warranted, else None.
    """

    def __init__(
        self,
        meter: SignalMeter,
        hysteresis_db: float = 4.0,
        drop_threshold_dbm: float = -90.0,
        time_to_trigger: float = 0.0,
    ) -> None:
        if hysteresis_db < 0:
            raise ValueError("hysteresis must be non-negative")
        self.meter = meter
        self.hysteresis_db = hysteresis_db
        self.drop_threshold_dbm = drop_threshold_dbm
        self.time_to_trigger = time_to_trigger
        self._candidate: Optional[Cell] = None
        self._candidate_since: Optional[float] = None

    def reset(self) -> None:
        """Forget the hysteresis candidate (after a handoff executes)."""
        self._candidate = None
        self._candidate_since = None

    def check(
        self, serving: Optional[Cell], position: Point, now: float
    ) -> Optional[HandoffTrigger]:
        """Evaluate the survey at ``position``; a trigger or ``None``.

        Applies initial attachment, the emergency drop threshold, and
        hysteresis + time-to-trigger against the serving cell.
        """
        survey = self.meter.survey(position)
        if not survey:
            return None
        best = survey[0]

        if serving is None:
            # Initial attachment: take the strongest audible cell.
            return HandoffTrigger(best.cell, "initial", float("-inf"), best.rss_dbm)

        serving_rss = self.meter.measure(serving, position).rss_dbm

        # Emergency: serving signal lost; go to the best alternative now.
        if serving_rss < self.drop_threshold_dbm and best.cell is not serving:
            self.reset()
            return HandoffTrigger(best.cell, "signal-lost", serving_rss, best.rss_dbm)

        if best.cell is serving:
            self.reset()
            return None

        if best.rss_dbm < serving_rss + self.hysteresis_db:
            self.reset()
            return None

        # Candidate beats serving by the hysteresis margin.
        if self._candidate is not best.cell:
            self._candidate = best.cell
            self._candidate_since = now
        if now - self._candidate_since >= self.time_to_trigger:
            self.reset()
            return HandoffTrigger(
                best.cell, "hysteresis", serving_rss, best.rss_dbm
            )
        return None
