"""Radio propagation models.

Signal strength is one of the paper's three handoff decision factors
("the power of signal from BS", §3.2).  We provide the standard
log-distance path-loss model with optional log-normal shadowing, which
is what 2000s-era handoff studies used.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

#: Reference path loss at 1 m for ~2 GHz carriers (free space), in dB.
REFERENCE_LOSS_DB = 38.5
#: Thermal noise floor for a 5 MHz channel, in dBm.
NOISE_FLOOR_DBM = -107.0


def free_space_path_loss_db(distance: float, frequency_hz: float = 2.0e9) -> float:
    """Friis free-space path loss in dB (distance in meters)."""
    if distance <= 0:
        raise ValueError(f"distance must be positive, got {distance}")
    wavelength = 299_792_458.0 / frequency_hz
    return 20.0 * math.log10(4.0 * math.pi * distance / wavelength)


def log_distance_path_loss_db(
    distance: float,
    exponent: float = 3.5,
    reference_loss_db: float = REFERENCE_LOSS_DB,
    reference_distance: float = 1.0,
) -> float:
    """Log-distance path loss: ``PL(d) = PL(d0) + 10 n log10(d/d0)``."""
    if distance <= 0:
        raise ValueError(f"distance must be positive, got {distance}")
    distance = max(distance, reference_distance)
    return reference_loss_db + 10.0 * exponent * math.log10(
        distance / reference_distance
    )


class PropagationModel:
    """Computes received power for a transmitter/receiver pair.

    Parameters
    ----------
    exponent:
        Path-loss exponent (2 = free space, 3.5 = urban default).
    shadowing_sigma_db:
        Standard deviation of log-normal shadowing; 0 disables it.
    rng:
        Generator for shadowing draws (required if sigma > 0).
    """

    def __init__(
        self,
        exponent: float = 3.5,
        shadowing_sigma_db: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if exponent <= 0:
            raise ValueError(f"exponent must be positive, got {exponent}")
        if shadowing_sigma_db < 0:
            raise ValueError("shadowing sigma must be non-negative")
        if shadowing_sigma_db > 0 and rng is None:
            raise ValueError("shadowing requires an rng")
        self.exponent = exponent
        self.shadowing_sigma_db = shadowing_sigma_db
        self._rng = rng

    def received_power_dbm(self, tx_power_dbm: float, distance: float) -> float:
        """Received signal strength in dBm at ``distance`` meters."""
        loss = log_distance_path_loss_db(distance, exponent=self.exponent)
        if self.shadowing_sigma_db > 0:
            loss += float(self._rng.normal(0.0, self.shadowing_sigma_db))
        return tx_power_dbm - loss

    def snr_db(self, tx_power_dbm: float, distance: float) -> float:
        """Signal-to-noise ratio in dB against the thermal noise floor."""
        return self.received_power_dbm(tx_power_dbm, distance) - NOISE_FLOOR_DBM

    def range_for_threshold(
        self, tx_power_dbm: float, rx_threshold_dbm: float
    ) -> float:
        """Distance (m) at which mean received power hits the threshold."""
        budget = tx_power_dbm - rx_threshold_dbm - REFERENCE_LOSS_DB
        if budget <= 0:
            return 1.0
        return 10.0 ** (budget / (10.0 * self.exponent))
