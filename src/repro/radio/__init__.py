"""Radio substrate: geometry, cells and tiers, propagation, signal
measurement and handoff triggering."""

from repro.radio.cells import TIER_DEFAULTS, Cell, Tier, best_covering_cell
from repro.radio.geometry import (
    ORIGIN,
    Point,
    Rectangle,
    centroid,
    grid_positions,
    hex_positions,
)
from repro.radio.propagation import (
    NOISE_FLOOR_DBM,
    PropagationModel,
    free_space_path_loss_db,
    log_distance_path_loss_db,
)
from repro.radio.signal import HandoffDetector, HandoffTrigger, Measurement, SignalMeter

__all__ = [
    "Cell",
    "HandoffDetector",
    "HandoffTrigger",
    "Measurement",
    "NOISE_FLOOR_DBM",
    "ORIGIN",
    "Point",
    "PropagationModel",
    "Rectangle",
    "SignalMeter",
    "TIER_DEFAULTS",
    "Tier",
    "best_covering_cell",
    "centroid",
    "free_space_path_loss_db",
    "grid_positions",
    "hex_positions",
    "log_distance_path_loss_db",
]
