"""Radio substrate: geometry, cells and tiers, propagation, signal
measurement, handoff triggering and the shared air-interface
contention model (:mod:`repro.radio.channel`).

Determinism: everything here is either pure geometry/arithmetic or —
for the shared channel — driven by the simulator's deterministic event
queue with an explicit (time, mobile-key) arbitration order, so a given
world and seed produce identical radio behaviour in any process.
"""

from repro.radio.cells import TIER_DEFAULTS, Cell, Tier, best_covering_cell
from repro.radio.channel import (
    DIRECTIONS,
    DOWNLINK,
    UPLINK,
    ChannelPlan,
    ChannelStats,
    SharedChannel,
    airtime_key,
)
from repro.radio.geometry import (
    ORIGIN,
    Point,
    Rectangle,
    centroid,
    grid_positions,
    hex_positions,
)
from repro.radio.propagation import (
    NOISE_FLOOR_DBM,
    PropagationModel,
    free_space_path_loss_db,
    log_distance_path_loss_db,
)
from repro.radio.signal import HandoffDetector, HandoffTrigger, Measurement, SignalMeter

__all__ = [
    "Cell",
    "ChannelPlan",
    "ChannelStats",
    "DIRECTIONS",
    "DOWNLINK",
    "HandoffDetector",
    "HandoffTrigger",
    "Measurement",
    "NOISE_FLOOR_DBM",
    "ORIGIN",
    "Point",
    "PropagationModel",
    "Rectangle",
    "SharedChannel",
    "SignalMeter",
    "TIER_DEFAULTS",
    "Tier",
    "UPLINK",
    "airtime_key",
    "best_covering_cell",
    "centroid",
    "free_space_path_loss_db",
    "grid_positions",
    "hex_positions",
    "log_distance_path_loss_db",
]
