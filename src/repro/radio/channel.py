"""Shared air-interface contention: per-cell airtime arbitration.

The paper's core claim — pico-cell overlays absorb multimedia load that
macro cells cannot carry — is only testable when the air interface is a
*shared* resource.  This module provides :class:`SharedChannel`, a
per-cell airtime arbiter that every radio :class:`~repro.net.link.Link`
attached to one base station contends on, replacing the historic
unconstrained per-mobile radio links.

Semantics
---------
* One channel per cell, with **separate downlink and uplink budgets**
  in bits per second (the cell's aggregate over-the-air rate, not a
  per-user rate).
* Each budget is a single-server FIFO queue built on the sim kernel's
  resource primitives (:class:`~repro.sim.resources.Resource` with
  capacity 1): a packet's airtime is ``size * 8 / budget`` seconds and
  transmissions never overlap within one direction.
* Arbitration is FIFO by submission time with **deterministic
  tie-breaking keyed by the mobile index** (``airtime_key``): packets
  submitted at the same simulation instant (before that instant's
  zero-delay arbitration event fires) are granted airtime in ascending
  key order, then submission order.
* A mobile holds an *airtime claim* (:meth:`SharedChannel.attach`) on
  its serving cell's channel; handoff migrates the claim — the new base
  station attaches it at radio-link creation (make-before-break and
  semisoft handoffs briefly hold claims on both cells) and the old one
  detaches it, cancelling any airtime the departed mobile still had
  queued there (those packets are air-interface losses, counted in
  ``Link.stats.dropped_error`` and :attr:`ChannelStats.dropped_on_detach`).
* **Admission control** (off by default): a channel built with an
  ``admission_factor`` tracks each claim's declared bandwidth demand
  and :meth:`SharedChannel.admit` rejects a newcomer whose demand
  would push the cell's committed load past
  ``admission_factor * downlink budget`` — the §3.2 "resources of BS"
  factor, surfaced by the base station as a handoff rejection that
  makes the mobile "turn to ask" the next tier.
* **Weighted airtime shares** (off by default): a channel built with
  ``weighted=True`` replaces FIFO with start-time fair queueing —
  each transmission is stamped with a virtual finish tag grown at
  ``size * 8 / weight`` (weight = the mobile's claimed demand, floored
  at :data:`MIN_AIRTIME_WEIGHT`), and the arbiter grants the smallest
  tag first, so heavy claimants get proportionally more airtime
  without starving light ones.

Legacy mode: a link built with ``shared_channel=None`` (the default
everywhere) keeps the historic per-link transmitter, byte-identical to
pre-channel behaviour — the paper-replication experiments run in this
mode.

Determinism: the arbiter is driven entirely by the simulator's event
queue and the deterministic (time, key, submission) ordering; given the
same world and seed it grants identical airtime schedules in any
process, on any execution backend.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.radio.cells import Cell, Tier
from repro.sim.resources import Request, Resource

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.link import Link
    from repro.net.packet import Packet
    from repro.sim.kernel import Simulator

#: Transmission directions, as stored on ``Link.channel_direction``.
#: Plain strings so the net layer never has to import the radio layer.
DOWNLINK = "downlink"
UPLINK = "uplink"
DIRECTIONS = (DOWNLINK, UPLINK)

#: Floor (bit/s) for a mobile's weighted-airtime weight, so claims of
#: zero declared demand (signalling-only mobiles) still make progress
#: under weighted fair queueing instead of growing unbounded tags.
MIN_AIRTIME_WEIGHT = 8e3


def airtime_key(node) -> int:
    """The deterministic tie-breaking key for ``node``'s transmissions.

    Mobiles built by the scenario builder carry their population index
    as ``node.airtime_key``; hand-built worlds fall back to a CRC-32 of
    the node name (stable across processes, unlike ``hash()``).
    """
    key = getattr(node, "airtime_key", None)
    if key is not None:
        return int(key)
    return zlib.crc32(node.name.encode("utf-8"))


class _AirtimeRequest(Request):
    """One queued transmission: a claim on a channel direction's server.

    FIFO channels sort by ``(submission time, mobile key)`` — FIFO
    across time, mobile-index tie-break within one simulation instant
    (the resource's own counter breaks any remaining tie in submission
    order).  Weighted channels stamp a virtual finish ``tag`` (start-
    time fair queueing) that sorts ahead of submission time, so the
    smallest tag is granted first.
    """

    __slots__ = ("key", "link", "packet", "tag")

    def __init__(
        self,
        resource: "Resource",
        key: int,
        link: "Link",
        packet: "Packet",
        tag: Optional[float] = None,
    ):
        # All sort fields must exist before Request.__init__, whose
        # final step enqueues this request via _key().
        self.key = key
        self.link = link
        self.packet = packet
        self.tag = tag
        super().__init__(resource)

    def _key(self) -> tuple:
        if self.tag is None:
            return (self.time, self.key)
        return (self.tag, self.time, self.key)


class _AirtimeServer(Resource):
    """A capacity-1 server whose grants are deferred to end-of-instant.

    A plain :class:`~repro.sim.resources.Resource` grants a slot
    synchronously — inside ``request()`` when idle, and inside
    ``release()`` when a serialization finishes — which would serve
    same-instant submissions in *call* order.  Deferring every grant
    behind a zero-delay arbitration event lets all requests submitted
    at the same simulation time (before that event fires) reach the
    queue first, so the (time, mobile-key) order applies both when the
    channel is idle and when it frees up mid-instant.  Timing is
    unchanged: the grant still happens at the same timestamp.
    """

    def __init__(self, sim: "Simulator") -> None:
        super().__init__(sim, capacity=1)
        self._arbitration_pending = False

    def _do_request(self, request: Request) -> None:
        from heapq import heappush

        heappush(self._queue, (request._key(), next(self._tiebreak), request))
        self._schedule_arbitration()

    def release(self, request: Request) -> None:
        """Return the slot (or cancel a waiting request), deferring the
        follow-on grant to the end of the current instant."""
        if request in self.users:
            self.users.remove(request)
            self._schedule_arbitration()
            return
        request.resource = None  # type: ignore[assignment]

    def _schedule_arbitration(self) -> None:
        if not self._arbitration_pending:
            self._arbitration_pending = True
            self.sim.call_later(0.0, self._arbitrate)

    def _arbitrate(self) -> None:
        self._arbitration_pending = False
        self._grant_next()


class ChannelStats:
    """Per-channel airtime counters, split by direction."""

    __slots__ = ("submitted", "granted", "dropped_on_detach", "busy_seconds")

    def __init__(self) -> None:
        #: direction -> packets handed to the arbiter.
        self.submitted = {DOWNLINK: 0, UPLINK: 0}
        #: direction -> packets granted airtime.
        self.granted = {DOWNLINK: 0, UPLINK: 0}
        #: direction -> queued packets cancelled by a claim detach.
        self.dropped_on_detach = {DOWNLINK: 0, UPLINK: 0}
        #: direction -> total airtime seconds granted so far.
        self.busy_seconds = {DOWNLINK: 0.0, UPLINK: 0.0}


class SharedChannel:
    """The shared air interface of one cell.

    Parameters
    ----------
    sim:
        The owning simulator (channels are per-world, like links).
    name:
        Diagnostic name, conventionally ``air-<cell name>``.
    downlink_bps / uplink_bps:
        Aggregate over-the-air budgets in bits per second.  Every radio
        link attached to the cell's base station serializes through
        these two single-server FIFO queues instead of its private
        ``bandwidth``.
    admission_factor:
        ``None`` (default) admits everyone — the historical
        never-reject behavior.  A positive number enables admission
        control: :meth:`admit` rejects a newcomer whose declared
        demand would push the sum of claimed demands past
        ``admission_factor * downlink_bps``.
    weighted:
        ``False`` (default) arbitrates FIFO.  ``True`` enables
        weighted airtime shares (start-time fair queueing) with each
        mobile weighted by its claimed demand.
    """

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        downlink_bps: float,
        uplink_bps: float,
        admission_factor: Optional[float] = None,
        weighted: bool = False,
    ) -> None:
        if downlink_bps <= 0 or uplink_bps <= 0:
            raise ValueError(
                f"channel budgets must be positive, got "
                f"downlink={downlink_bps}, uplink={uplink_bps}"
            )
        if admission_factor is not None and admission_factor <= 0:
            raise ValueError(
                f"admission_factor must be positive, got {admission_factor}"
            )
        self.sim = sim
        self.name = name
        self.rates = {DOWNLINK: float(downlink_bps), UPLINK: float(uplink_bps)}
        self.admission_factor = (
            float(admission_factor) if admission_factor is not None else None
        )
        self.weighted = bool(weighted)
        self._servers = {
            DOWNLINK: _AirtimeServer(sim),
            UPLINK: _AirtimeServer(sim),
        }
        #: Requests submitted but not yet granted, per direction.
        self._waiting: dict[str, list[_AirtimeRequest]] = {
            DOWNLINK: [],
            UPLINK: [],
        }
        #: Mobile keys currently holding an airtime claim here.
        self.attached: set[int] = set()
        #: key -> declared bandwidth demand (bit/s) of each claim; the
        #: admission bookkeeping and the weighted-share weights.
        self.claims: dict[int, float] = {}
        self.total_attaches = 0
        #: Newcomers turned away by :meth:`admit` over the whole run.
        self.admission_rejects = 0
        # Start-time fair queueing state (weighted mode only):
        # per-direction virtual time and each key's last finish tag.
        self._vtime = {DOWNLINK: 0.0, UPLINK: 0.0}
        self._last_finish: dict[str, dict[int, float]] = {
            DOWNLINK: {},
            UPLINK: {},
        }
        #: Analytic background claims (bit/s) from the hybrid fluid
        #: layer (:mod:`repro.fluid`), per direction.  Zero by default
        #: — the legacy-identical state.
        self.background = {DOWNLINK: 0.0, UPLINK: 0.0}
        #: Residual budgets the discrete foreground serializes against
        #: (``rate - background``); kept in lockstep by
        #: :meth:`set_background` so :meth:`airtime` stays one lookup.
        self._effective = dict(self.rates)
        self.stats = ChannelStats()

    def __repr__(self) -> str:
        return (
            f"<SharedChannel {self.name} "
            f"down={self.rates[DOWNLINK]/1e6:g}Mbps "
            f"up={self.rates[UPLINK]/1e6:g}Mbps "
            f"attached={len(self.attached)}>"
        )

    # ------------------------------------------------------------------
    # Airtime claims (the per-mobile attachment, migrated on handoff)
    # ------------------------------------------------------------------
    def attach(self, key: int, demand: float = 0.0) -> None:
        """Register mobile ``key``'s airtime claim on this channel.

        Called by the base station when it creates the radio link pair;
        during make-before-break / semisoft handoff a mobile briefly
        holds claims on both the old and the new cell.  ``demand`` is
        the claim's declared bandwidth demand (bit/s) — the admission
        bookkeeping and, in weighted mode, the mobile's airtime weight.
        Idempotent (a re-attach keeps the existing claim).
        """
        if key not in self.attached:
            self.attached.add(key)
            self.claims[key] = float(demand)
            self.total_attaches += 1

    def admit(self, key: int, demand: float) -> bool:
        """Would this channel accept a claim of ``demand`` bit/s?

        Pure capacity check — no state changes besides counting the
        rejection.  Always ``True`` with admission control off
        (``admission_factor=None``).  Otherwise ``key`` is admitted
        only while the other claims' committed demand plus its own
        stays within ``admission_factor * downlink budget`` (the §3.2
        "resources of BS" factor).  The asker's own claim is excluded
        from the committed sum because a handing-off mobile attaches a
        signalling claim here *before* asking — the check evaluates
        the cell as if that claim were replaced by ``demand``.
        """
        if self.admission_factor is None:
            return True
        committed = sum(d for k, d in self.claims.items() if k != key)
        # The fluid layer's background claim counts as committed load:
        # a cell carrying 100k analytic mobiles has that much less
        # headroom for discrete newcomers.  Zero in non-hybrid runs.
        committed += self.background[DOWNLINK]
        if committed + float(demand) <= self.admission_factor * self.rates[DOWNLINK]:
            return True
        self.admission_rejects += 1
        return False

    def detach(self, key: int) -> None:
        """Drop mobile ``key``'s claim and cancel its queued airtime.

        The old base station calls this when the radio link is torn
        down after handoff: any transmission of the departed mobile
        still *waiting* for airtime is cancelled (an air-interface
        loss), while a transmission already being serialized completes
        — exactly like a packet in flight on a legacy link.  Idempotent.
        """
        self.attached.discard(key)
        self.claims.pop(key, None)
        for direction in DIRECTIONS:
            self._last_finish[direction].pop(key, None)
        for direction in DIRECTIONS:
            keep: list[_AirtimeRequest] = []
            for request in self._waiting[direction]:
                if request.key == key and not request.triggered:
                    self._servers[direction].release(request)  # cancel queued
                    request.link.channel_drop(request.packet)
                    self.stats.dropped_on_detach[direction] += 1
                else:
                    keep.append(request)
            self._waiting[direction] = keep

    # ------------------------------------------------------------------
    # Transmission (called by Link.transmit for channel-gated links)
    # ------------------------------------------------------------------
    def set_background(
        self, direction: str, bps: float, max_fraction: float = 0.95
    ) -> float:
        """Set the analytic background claim for ``direction``.

        The hybrid fluid layer calls this each refresh: ``bps`` of the
        direction's budget is considered spoken for by untracked
        background mobiles, so discrete transmissions serialize at the
        *residual* rate and admission control counts the claim as
        committed demand.  The claim is clamped to ``max_fraction`` of
        the budget (the foreground must keep some airtime) and the
        applied value is returned.  ``set_background(d, 0.0)`` restores
        the legacy budget exactly.
        """
        if direction not in self.rates:
            raise ValueError(f"unknown direction {direction!r}")
        rate = self.rates[direction]
        applied = min(max(0.0, float(bps)), max_fraction * rate)
        self.background[direction] = applied
        self._effective[direction] = rate - applied
        return applied

    def airtime(self, direction: str, packet: "Packet") -> float:
        """Seconds of airtime ``packet`` occupies in ``direction``.

        Hybrid runs serialize against the residual budget
        (``rate - background``); with no background claim this is the
        full budget, bit-identical to the pre-fluid formula.
        """
        return packet.size * 8.0 / self._effective[direction]

    def submit(self, link: "Link", packet: "Packet") -> None:
        """Queue ``packet`` from ``link`` for airtime.

        The link has already accepted the packet (queue-limit and
        up/down checks are the link's); the channel grants airtime FIFO
        with the (time, key) tie-break — or smallest virtual finish tag
        first in weighted mode — and calls back into the link to
        schedule propagation once serialization finishes.
        """
        direction = link.channel_direction
        self.stats.submitted[direction] += 1
        tag = None
        if self.weighted:
            # Start-time fair queueing: the tag advances from the later
            # of the direction's virtual time and this mobile's last
            # finish tag, at a rate inverse to the mobile's weight.
            key = link.channel_key
            weight = max(self.claims.get(key, 0.0), MIN_AIRTIME_WEIGHT)
            start = max(
                self._vtime[direction],
                self._last_finish[direction].get(key, 0.0),
            )
            tag = start + packet.size * 8.0 / weight
            self._last_finish[direction][key] = tag
        request = _AirtimeRequest(
            self._servers[direction], link.channel_key, link, packet, tag
        )
        self._waiting[direction].append(request)
        request.callbacks.append(self._granted)

    def _granted(self, event: "_AirtimeRequest") -> None:
        """Start serializing: hold the server for the packet's airtime."""
        request = event
        direction = request.link.channel_direction
        self._waiting[direction].remove(request)
        if request.tag is not None and request.tag > self._vtime[direction]:
            self._vtime[direction] = request.tag
        seconds = self.airtime(direction, request.packet)
        self.stats.granted[direction] += 1
        self.stats.busy_seconds[direction] += seconds
        self.sim.call_later(seconds, self._finish, request)

    def _finish(self, request: "_AirtimeRequest") -> None:
        """Serialization done: free the server, start propagation."""
        direction = request.link.channel_direction
        self._servers[direction].release(request)
        request.link.channel_serialized(request.packet)

    # ------------------------------------------------------------------
    @property
    def queued(self) -> dict[str, int]:
        """Transmissions currently waiting for airtime, per direction."""
        return {
            direction: sum(
                1 for request in self._waiting[direction] if not request.triggered
            )
            for direction in DIRECTIONS
        }


@dataclass(frozen=True)
class ChannelPlan:
    """Per-tier air-interface budgets: the knob scenarios sweep.

    ``None`` for a tier means "use the cell's own (tier-default)
    budgets" from :data:`repro.radio.cells.TIER_DEFAULTS`; a number
    overrides the *downlink* budget for every cell of that tier, with
    the uplink budget derived as ``downlink * uplink_fraction``.
    ``admission_factor`` and ``weighted`` are handed to every channel
    the plan builds (see :class:`SharedChannel`); their defaults keep
    the historical admit-everyone FIFO behavior.

    A plan only exists when contention is enabled at all —
    ``MultiTierWorld(channel_plan=None)`` (the default) builds legacy
    unconstrained radio links.  Deterministic: pure data.
    """

    macro_bandwidth: Optional[float] = None
    micro_bandwidth: Optional[float] = None
    pico_bandwidth: Optional[float] = None
    uplink_fraction: float = 0.5
    admission_factor: Optional[float] = None
    weighted: bool = False

    def __post_init__(self) -> None:
        for label in ("macro_bandwidth", "micro_bandwidth", "pico_bandwidth"):
            value = getattr(self, label)
            if value is not None and value <= 0:
                raise ValueError(f"{label} must be positive, got {value}")
        if not 0.0 < self.uplink_fraction <= 1.0:
            raise ValueError(
                f"uplink_fraction must be in (0, 1], got {self.uplink_fraction}"
            )
        if self.admission_factor is not None and self.admission_factor <= 0:
            raise ValueError(
                f"admission_factor must be positive, got {self.admission_factor}"
            )

    def budgets(self, cell: Cell) -> tuple[float, float]:
        """The ``(downlink, uplink)`` bits/s budgets for ``cell``."""
        override = {
            Tier.MACRO: self.macro_bandwidth,
            Tier.MICRO: self.micro_bandwidth,
            Tier.PICO: self.pico_bandwidth,
        }[cell.tier]
        if override is not None:
            return float(override), float(override) * self.uplink_fraction
        return cell.channel_downlink, cell.channel_uplink

    def channel_for(self, sim: "Simulator", cell: Cell) -> SharedChannel:
        """Build ``cell``'s :class:`SharedChannel` under this plan."""
        downlink, uplink = self.budgets(cell)
        return SharedChannel(
            sim,
            f"air-{cell.name}",
            downlink,
            uplink,
            admission_factor=self.admission_factor,
            weighted=self.weighted,
        )


__all__ = [
    "DIRECTIONS",
    "DOWNLINK",
    "MIN_AIRTIME_WEIGHT",
    "UPLINK",
    "ChannelPlan",
    "ChannelStats",
    "SharedChannel",
    "airtime_key",
]
