"""Turning one replicated build into one shard: neuter and proxy.

Every shard of a sharded run builds the **full** world for its
``(spec, seed)`` — same seeded streams, same geometry, same
link-registry order — and then specializes it with the two operations
here:

* :func:`neuter_foreign_parts` swaps the root process generators of
  every part the shard does *not* own for immediate no-ops, before
  virtual time starts.  The replica keeps the complete topology (so
  link ids and routing tables line up) but only the owned region ever
  acts; un-owned machinery stays quiescent and consumes nothing but
  its single start event.
* :func:`install_boundary_exports` hooks every cut link whose head the
  shard owns: an accepted transmission is announced to the tail-owning
  shard at *send* time with its computed arrival time, making the link
  delay the channel's conservative lookahead.  Sender-side stats keep
  accruing locally (delivery accounting is per head-owner, and the
  harvest merge sums the per-shard hop maps).

:func:`inject_arrival` is the receiving half: the tail-owning shard
replays ``tail.receive`` at exactly the announced arrival time via the
kernel's fast callback path.

Determinism: all three operations are pure functions of the replicated
build and the :class:`~repro.shard.plan.ShardPlan`, applied in fixed
registry/part order, so every shard derives the identical specialized
world from the identical replica.
"""

from __future__ import annotations

from typing import Callable

from repro.net.link import link_registry


def _noop() -> object:
    """Generator that terminates immediately (the neutered body)."""
    return
    yield  # pragma: no cover - generator protocol only


def neuter_foreign_parts(built, owned) -> int:
    """Silence every root process of the parts not in ``owned``.

    Swaps each foreign process's generator for an immediate no-op
    *before* its ``Initialize`` event fires, so the process terminates
    at its start event without touching the world.  Must run after the
    build and before the first ``sim.run``.  Returns the number of
    processes neutered.  Deterministic: fixed part and build order.
    """
    neutered = 0
    for part in built.SHARD_PARTS:
        if part in owned:
            continue
        for process in built.shard_processes(part):
            process._generator = _noop()
            neutered += 1
    return neutered


def install_boundary_exports(built, plan, group: int, announce: Callable) -> int:
    """Hook every owned-head cut link to announce sends to its tail owner.

    ``announce(dst_group, link_id, packet, t_arrival)`` is called at
    transmit time for each accepted packet on a boundary link whose
    head part belongs to ``group``; the driver forwards it over the
    transport.  Refuses (with :class:`RuntimeError`) links that violate
    the cut rules — the planner never produces such cuts, so hitting
    the guard means plan and world disagree.  Returns the number of
    links hooked.  Deterministic: plan order.
    """
    registry = link_registry(built.sim)
    hooked = 0
    for boundary in plan.boundaries:
        if boundary.src_group != group:
            continue
        link = registry.links[boundary.link_id]
        if link.delay <= 0.0 or link.loss_rate > 0.0 or (
            link.shared_channel is not None
        ):
            raise RuntimeError(
                f"boundary link {link.name!r} violates the cut rules; "
                "the shard plan is inconsistent with the built world"
            )
        link._export = _make_export(
            announce, boundary.dst_group, boundary.link_id
        )
        hooked += 1
    return hooked


def _make_export(announce: Callable, dst_group: int, link_id: int):
    """Bind one boundary link's announce callback (late-binding safe)."""

    def export(packet, t_arrival: float) -> None:
        announce(dst_group, link_id, packet, t_arrival)

    return export


def inject_arrival(built, link_id: int, packet, t_arrival: float) -> None:
    """Replay a cross-shard packet arrival in the tail-owning replica.

    Schedules ``tail.receive(packet, link)`` at ``t_arrival`` on the
    replica's own copy of the boundary link (found by registry index —
    identical across replicated builds).  The replica's link stats are
    left untouched: delivery accounting lives with the head owner and
    the harvest merge would otherwise double count.  Raises on a
    causality violation (arrival in the local past), which a correct
    conservative sync can never produce.  Deterministic given the
    driver's sorted injection order.
    """
    sim = built.sim
    if t_arrival < sim.now:
        raise RuntimeError(
            f"causality violation: arrival at t={t_arrival} injected at "
            f"t={sim.now} (conservative lookahead bug)"
        )
    link = link_registry(sim).links[link_id]
    sim.call_later(t_arrival - sim.now, link.tail.receive, packet, link)


__all__ = [
    "inject_arrival",
    "install_boundary_exports",
    "neuter_foreign_parts",
]
