"""Cutting one built world into conservatively-synchronized shards.

A :class:`ShardPlan` partitions a stack's :data:`SHARD_PARTS` (the
coarse regions every ``Built*Scenario`` declares — radio access, the
correspondent, the home side, the wired core) into at most ``shards``
*groups*, then finds every registered link whose head and tail fall in
different groups.  Those **boundary links** are the only coupling
between groups, and each one's propagation delay is the conservative
lookahead of its direction: a packet sent at ``t`` cannot arrive
before ``t + delay``, so the receiving shard may safely simulate up to
the sender's promised bound (see :mod:`repro.shard.driver`).

Cut rules (violations merge the two groups instead of cutting):

* never cut a link with zero propagation delay — lookahead would be 0
  and the null-message protocol could not ratchet past a time tie;
* never cut a lossy link — the in-flight loss draw is sender-side
  state the receiving shard cannot replay;
* never cut a shared-channel (radio) link — airtime arbitration is a
  cross-link coupling that packets do not carry.

The radio part is always planned as its own group first: every stack's
mobility controllers hold direct references to stations across all
domains, so the radio access network is indivisible; the parallelism
comes from peeling the wired core/correspondent/home machinery off it.

Determinism: groups are assigned by fixed part order and boundary
links are discovered in link-registry order (identical across the
replicated builds of one ``(spec, seed)``), so every shard of a run —
and every re-run — computes the byte-identical plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.link import link_registry

#: Part name every stack reserves for the indivisible radio access side.
RADIO_PART = "radio"


@dataclass(frozen=True)
class BoundaryLink:
    """One cut link: packets crossing it travel between shards.

    ``link_id`` is the link's index in the per-simulator
    :class:`~repro.net.link.LinkRegistry` — the replicated build gives
    every shard the identical registry order, so the index alone names
    the link across processes.  ``delay`` (the propagation delay) is
    this direction's contribution to the channel lookahead.
    """

    link_id: int
    src_group: int
    dst_group: int
    delay: float


@dataclass
class ShardPlan:
    """The deterministic decomposition of one built world.

    ``groups`` maps group index to the tuple of part names it owns;
    ``boundaries`` lists every cut link; ``channels`` maps each
    directed ``(src_group, dst_group)`` pair that shares at least one
    cut link to its conservative lookahead (the minimum cut-link delay
    in that direction).  Built by :func:`make_shard_plan`;
    deterministic by construction.
    """

    groups: tuple[tuple[str, ...], ...]
    boundaries: list[BoundaryLink] = field(default_factory=list)
    channels: dict[tuple[int, int], float] = field(default_factory=dict)

    @property
    def n_groups(self) -> int:
        """Number of shard groups (1 means the plan degenerated to serial)."""
        return len(self.groups)

    def group_of(self, part: str) -> int:
        """The group index owning ``part`` (KeyError for unknown parts)."""
        for index, parts in enumerate(self.groups):
            if part in parts:
                return index
        raise KeyError(f"part {part!r} is not in any group")

    def inbound(self, group: int) -> dict[int, float]:
        """Map of source group -> lookahead for channels into ``group``."""
        return {
            src: lookahead
            for (src, dst), lookahead in self.channels.items()
            if dst == group
        }

    def outbound(self, group: int) -> dict[int, float]:
        """Map of destination group -> lookahead for channels out of ``group``."""
        return {
            dst: lookahead
            for (src, dst), lookahead in self.channels.items()
            if src == group
        }


def _assign_groups(parts: tuple[str, ...], shards: int) -> list[tuple[str, ...]]:
    """Deterministically coalesce ``parts`` into at most ``shards`` groups.

    The radio part (if present) is peeled into its own group first; the
    remaining parts are dealt round-robin, in declaration order, over
    the remaining group slots.  Pure function of its arguments.
    """
    count = max(1, min(int(shards), len(parts)))
    if count == 1:
        return [tuple(parts)]
    groups: list[list[str]] = [[] for _ in range(count)]
    rest = [part for part in parts if part != RADIO_PART]
    offset = 0
    if RADIO_PART in parts:
        groups[0].append(RADIO_PART)
        offset = 1
    slots = count - offset if count > offset else 1
    for index, part in enumerate(rest):
        groups[offset + (index % slots) if count > offset else 0].append(part)
    return [tuple(group) for group in groups if group]


def _cuttable(link) -> bool:
    """True when ``link`` satisfies every boundary cut rule."""
    return (
        link.delay > 0.0
        and link.loss_rate == 0.0
        and link.shared_channel is None
    )


def make_shard_plan(built, shards: int) -> ShardPlan:
    """Plan the decomposition of ``built`` into at most ``shards`` groups.

    ``built`` is any ``Built*Scenario`` exposing the shard contract
    (``SHARD_PARTS`` and ``shard_part``).  Groups joined by an
    uncuttable link (zero delay, lossy, or shared-channel) are merged
    until every remaining boundary satisfies the cut rules — in the
    worst case the plan degenerates to one group and the caller runs
    serially.  Deterministic: fixed part order, registry-order link
    scan, stable merges.
    """
    parts = tuple(built.SHARD_PARTS)
    grouping = _assign_groups(parts, shards)
    links = list(link_registry(built.sim).links)

    while True:
        part_group = {
            part: index
            for index, group in enumerate(grouping)
            for part in group
        }
        merge: tuple[int, int] | None = None
        for link in links:
            src = part_group[built.shard_part(link.head.name)]
            dst = part_group[built.shard_part(link.tail.name)]
            if src != dst and not _cuttable(link):
                merge = (min(src, dst), max(src, dst))
                break
        if merge is None:
            break
        keep, absorb = merge
        merged = list(grouping)
        merged[keep] = tuple(merged[keep]) + tuple(merged[absorb])
        del merged[absorb]
        grouping = merged

    plan = ShardPlan(groups=tuple(tuple(group) for group in grouping))
    part_group = {
        part: index for index, group in enumerate(plan.groups) for part in group
    }
    for link_id, link in enumerate(links):
        src = part_group[built.shard_part(link.head.name)]
        dst = part_group[built.shard_part(link.tail.name)]
        if src == dst:
            continue
        plan.boundaries.append(
            BoundaryLink(
                link_id=link_id, src_group=src, dst_group=dst, delay=link.delay
            )
        )
        channel = (src, dst)
        known = plan.channels.get(channel)
        if known is None or link.delay < known:
            plan.channels[channel] = link.delay
    return plan


__all__ = ["RADIO_PART", "BoundaryLink", "ShardPlan", "make_shard_plan"]
