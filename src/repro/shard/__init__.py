"""Conservative spatial domain decomposition across processes.

``repro.shard`` splits one simulation into shards cut at wired
backhaul links, runs each shard's event loop in its own forked
process, and synchronizes them with null messages whose lookahead is
the cut link's propagation delay (Chandy–Misra–Bryant).  The headline
contract is determinism, not just speed: for every registered stack,
``shards=N`` produces the byte-identical metric dict to the serial
run — see ``docs/SHARDING.md`` for the cut rules, the lookahead
derivation, and when to prefer ``--shards`` over ``--jobs`` or the
fluid hybrid.

Modules: :mod:`~repro.shard.plan` (where to cut),
:mod:`~repro.shard.boundary` (neutering replicas and proxying cut
links), :mod:`~repro.shard.transport` (pipes over fork, queues for
tests), :mod:`~repro.shard.driver` (the conservative loop), and
:mod:`~repro.shard.runner` (the public entry point).
"""

from repro.shard.boundary import (
    inject_arrival,
    install_boundary_exports,
    neuter_foreign_parts,
)
from repro.shard.driver import ShardDriver
from repro.shard.plan import BoundaryLink, ShardPlan, make_shard_plan
from repro.shard.runner import merge_harvests, run_scenario_spec_sharded
from repro.shard.transport import (
    Endpoint,
    LocalTransport,
    PeerAborted,
    PipeTransport,
)

__all__ = [
    "BoundaryLink",
    "Endpoint",
    "LocalTransport",
    "PeerAborted",
    "PipeTransport",
    "ShardDriver",
    "ShardPlan",
    "inject_arrival",
    "install_boundary_exports",
    "make_shard_plan",
    "merge_harvests",
    "neuter_foreign_parts",
    "run_scenario_spec_sharded",
]
