"""Entry point for sharded runs: fork, sync, merge, same bytes.

:func:`run_scenario_spec_sharded` is the sharded counterpart of
:func:`repro.scenarios.builder.run_scenario_spec`.  It plans the
decomposition on a throwaway replica, forks one worker per shard
group (each rebuilding the identical world from ``(spec, seed)`` and
driving it with :class:`~repro.shard.driver.ShardDriver`), merges the
per-shard harvests (sections are disjoint by part; per-link hop maps
are summed), and feeds the merged harvest to the stack's own
harvest-metric formulas.

Degenerate cases take the exact legacy code path so they stay
byte-identical by construction: ``shards <= 1``, a plan that
collapsed to one group, and fork-less platforms (which warn once on
stderr, like ``--jobs``, and run serially).

Determinism contract: for any registered stack and any shard count,
``run_scenario_spec_sharded(spec, seed, n)`` returns the
byte-identical metric dict to ``run_scenario_spec(spec, seed)`` —
enforced per stack by the tier-1 property suite and the CI parity
gate.
"""

from __future__ import annotations

import multiprocessing
import sys
from typing import Optional

from repro.scenarios.builder import build_scenario, run_scenario_spec
from repro.shard.driver import ShardDriver
from repro.shard.plan import make_shard_plan
from repro.shard.transport import PipeTransport
from repro.stacks.registry import get_stack

_warned_degrade = False


def _warn_serial_degrade(shards: int) -> None:
    """Tell the user once per process that --shards is not honoured."""
    global _warned_degrade
    if _warned_degrade:
        return
    _warned_degrade = True
    print(
        f"repro: warning: --shards {shards} requested but this platform "
        "lacks the 'fork' start method; running the simulation serially "
        "(results are identical, just slower)",
        file=sys.stderr,
    )


def merge_harvests(harvests: list) -> tuple[dict, int]:
    """Union per-shard harvests into one; returns ``(merged, events)``.

    Part-gated sections are disjoint across shards and merge by union;
    the per-protocol ``hops`` maps (which every replica accrues for
    the links it drives) merge by summation; the drivers' ``_events``
    counters are stripped and summed into the second return value.
    Deterministic: harvests arrive in group order and section keys
    never collide.
    """
    merged: dict = {"hops": {}}
    events = 0
    hop_totals = merged["hops"]
    for harvest in harvests:
        for protocol, hops in harvest["hops"].items():
            hop_totals[protocol] = hop_totals.get(protocol, 0) + hops
        events += int(harvest.get("_events", 0))
        for key, value in harvest.items():
            if key in ("hops", "_events"):
                continue
            merged[key] = value
    return merged, events


def run_scenario_spec_sharded(
    spec,
    seed: int,
    shards: int,
    transport=None,
    stats: Optional[dict] = None,
) -> dict[str, float]:
    """Run one ``(spec, seed)`` split across ``shards`` processes.

    Returns the metric dict, byte-identical to the serial
    :func:`~repro.scenarios.builder.run_scenario_spec`.  ``transport``
    overrides the cross-shard transport (tests pass a
    :class:`~repro.shard.transport.LocalTransport` to exercise the
    protocol without fork); ``stats``, when given, is populated with
    ``{"groups": n, "events": total_kernel_events}`` for benchmarks.
    Deterministic for any shard count.
    """
    shards = int(shards)
    if shards < 1:
        raise ValueError(f"shards must be at least 1, got {shards}")

    def _serial() -> dict[str, float]:
        if stats is None:
            return run_scenario_spec(spec, seed)
        built = build_scenario(spec, seed)
        metrics = built.execute()
        stats["groups"] = 1
        stats["events"] = built.sim.events_processed
        return metrics

    if shards == 1:
        return _serial()

    probe = build_scenario(spec, seed)
    if not hasattr(probe, "SHARD_PARTS"):
        raise TypeError(
            f"stack {spec.stack!r} does not expose the shard contract "
            "(SHARD_PARTS/shard_part/harvest)"
        )
    plan = make_shard_plan(probe, shards)
    del probe
    if plan.n_groups <= 1:
        return _serial()

    if transport is None:
        if "fork" not in multiprocessing.get_all_start_methods():
            _warn_serial_degrade(shards)
            return _serial()
        transport = PipeTransport()

    def _shard_body(endpoint, group: int) -> dict:
        built = build_scenario(spec, seed)
        return ShardDriver(built, plan, group, endpoint).execute()

    harvests = transport.run(plan.n_groups, _shard_body)
    merged, events = merge_harvests(harvests)
    if stats is not None:
        stats["groups"] = plan.n_groups
        stats["events"] = events
    return get_stack(spec.stack).harvest_metrics(spec, merged)


__all__ = ["merge_harvests", "run_scenario_spec_sharded"]
