"""The per-shard conservative event loop (null-message sync).

Each shard advances its replica with the classic
Chandy–Misra–Bryant conservative discipline, specialised to this
code base's fixed two-phase measurement protocol:

* **Channels and bounds.**  For every inbound channel the shard keeps
  the latest *bound* its peer promised: "I will send no packet that
  arrives before this time."  Bounds start at 0.0.  The shard's
  *horizon* is the minimum inbound bound; it may freely simulate
  strictly below it.
* **Lock-step rounds.**  Per round the shard (1) advances to just
  below its horizon (``math.nextafter(horizon, -inf)`` — ``run`` is
  inclusive), during which boundary transmits are announced to their
  tail owners at send time; (2) sends one null message per outbound
  channel promising ``min(peek, horizon, phase_end) + lookahead`` —
  ``peek`` covers its own pending events, ``horizon`` covers sends
  triggered by packets it has not yet received, ``phase_end`` covers
  the flows the barrier will start, and the lookahead is the minimum
  cut-link delay of the channel; (3) blocks until one null arrived on
  every inbound channel, buffering packet announcements.  Because
  every channel is FIFO, all packets a peer sent before its null are
  in hand when the null arrives; they are injected in deterministic
  ``(arrival, link, sequence)`` order.  Bounds ratchet by at least
  the lookahead per round, so the protocol is deadlock-free for the
  positive delays the planner guarantees.
* **Phase barriers.**  When the horizon clears the phase end the
  shard runs inclusively to it, sends a final null promising
  ``phase_end + lookahead`` (sound: post-barrier flows start at the
  barrier and still pay the link delay) plus a ``phase`` marker, then
  drains every inbound channel up to its marker — the cross-shard
  equivalent of everyone reaching ``sim.run(until=T)``.  Flows are
  then started by their owning part, split exactly along the
  monolithic start order.
* **Migrations.**  :meth:`ShardDriver.send_migration` ships opaque
  mobile state between shards under the same lookahead contract: the
  effective time must be at least ``now + lookahead``, and delivery
  order is deterministic alongside packet injections.

Determinism: the loop consumes messages per channel (never by global
arrival order), injects in sorted order, and mirrors the monolithic
warmup/traffic/drain structure exactly, which is what makes a sharded
run byte-identical to the serial one.
"""

from __future__ import annotations

import math
from itertools import count
from typing import Callable

from repro.shard.boundary import (
    inject_arrival,
    install_boundary_exports,
    neuter_foreign_parts,
)
from repro.shard.transport import Endpoint, PeerAborted


class ShardDriver:
    """Drives one shard group's replica through a full measurement run.

    Construct with the shard's replicated build, the run's
    :class:`~repro.shard.plan.ShardPlan`, this shard's group index and
    its transport :class:`~repro.shard.transport.Endpoint`; then call
    :meth:`execute` once.  Deterministic: see the module docstring.
    """

    def __init__(self, built, plan, group: int, endpoint: Endpoint) -> None:
        self.built = built
        self.plan = plan
        self.group = int(group)
        self.endpoint = endpoint
        self.sim = built.sim
        self.owned = frozenset(plan.groups[self.group])
        #: src group -> conservative lookahead of that inbound channel.
        self.inbound = plan.inbound(self.group)
        #: dst group -> conservative lookahead of that outbound channel.
        self.outbound = plan.outbound(self.group)
        #: src group -> latest promised bound (starts at virtual 0).
        self.bounds = {src: 0.0 for src in self.inbound}
        self._phase_done: set[int] = set()
        self._pending: list[tuple] = []
        self._send_seq = count()
        self._migration_handlers: dict[str, Callable] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def execute(self) -> dict:
        """Run warmup -> flow starts -> traffic+drain; return the harvest.

        Mirrors :func:`repro.stacks.base.run_measurement_phases` with a
        conservative phase barrier in place of each plain ``run`` call,
        and the flow-start loop split by owning part.  Returns the
        shard's picklable harvest with its kernel event count attached
        under ``"_events"``.
        """
        built = self.built
        spec = built.spec
        neuter_foreign_parts(built, self.owned)
        install_boundary_exports(built, self.plan, self.group, self._announce)
        self._advance_phase(spec.warmup)
        self._start_owned_flows()
        self._advance_phase(spec.warmup + spec.duration + spec.drain)
        harvest = built.harvest(self.owned)
        harvest["_events"] = self.sim.events_processed
        return harvest

    def on_migrate(self, key: str, handler: Callable) -> None:
        """Register ``handler(state)`` for migrations addressed to ``key``.

        The handler runs at the migration's effective virtual time in
        this shard's replica, ordered deterministically alongside
        packet injections.
        """
        self._migration_handlers[key] = handler

    def send_migration(
        self, dst_group: int, key: str, state: object, t_effective: float
    ) -> None:
        """Ship opaque mobile state to ``dst_group``, effective later.

        ``t_effective`` must respect the channel lookahead
        (``>= now + lookahead``) so the receiving shard can never have
        simulated past it; violating that raises :class:`ValueError`
        instead of silently corrupting causality.  ``state`` must be
        picklable for the pipe transport.
        """
        lookahead = self.outbound[dst_group]
        if t_effective < self.sim.now + lookahead:
            raise ValueError(
                f"migration effective at t={t_effective} violates the "
                f"channel lookahead (now={self.sim.now}, "
                f"lookahead={lookahead})"
            )
        self.endpoint.send(
            dst_group,
            ("migrate", t_effective, key, next(self._send_seq), state),
        )

    # ------------------------------------------------------------------
    # Sender side
    # ------------------------------------------------------------------
    def _announce(self, dst_group, link_id, packet, t_arrival) -> None:
        """Forward one boundary transmit to the tail-owning shard."""
        self.endpoint.send(
            dst_group,
            ("pkt", link_id, next(self._send_seq), t_arrival, packet),
        )

    # ------------------------------------------------------------------
    # The conservative loop
    # ------------------------------------------------------------------
    def _advance_phase(self, phase_end: float) -> None:
        """Advance the replica to ``phase_end`` (inclusive), conservatively.

        Lock-step rounds below the horizon, then the phase-barrier
        exit: inclusive run, final null + ``phase`` marker per
        outbound channel, and a drain of every inbound channel up to
        its marker so all shards leave the phase together.
        """
        sim = self.sim
        while self.bounds:
            horizon = min(self.bounds.values())
            if horizon > phase_end:
                break
            target = math.nextafter(horizon, -math.inf)
            if target > sim.now:
                sim.run(until=target)
            promise = min(sim.peek(), horizon, phase_end)
            for dst in sorted(self.outbound):
                self.endpoint.send(
                    dst, ("null", promise + self.outbound[dst])
                )
            self._receive_round()
        sim.run(until=phase_end)
        for dst in sorted(self.outbound):
            self.endpoint.send(dst, ("null", phase_end + self.outbound[dst]))
            self.endpoint.send(dst, ("phase",))
        self._drain_phase_markers()
        self._phase_done.clear()

    def _receive_round(self) -> None:
        """Block until one null (or marker) arrived per open channel."""
        waiting = set(self.bounds) - self._phase_done
        while waiting:
            src, message = self.endpoint.recv()
            if self._consume(src, message):
                waiting.discard(src)
        self._inject_pending()

    def _drain_phase_markers(self) -> None:
        """Consume inbound channels up to their phase markers (barrier)."""
        while len(self._phase_done) < len(self.bounds):
            src, message = self.endpoint.recv()
            self._consume(src, message)
        self._inject_pending()

    def _consume(self, src: int, message: tuple) -> bool:
        """Apply one transport message; True when it closes a round slot."""
        kind = message[0]
        if kind == "pkt":
            _kind, link_id, seq, t_arrival, packet = message
            self._pending.append((t_arrival, 0, link_id, src, seq, packet))
            return False
        if kind == "migrate":
            _kind, t_effective, key, seq, state = message
            self._pending.append((t_effective, 1, key, src, seq, state))
            return False
        if kind == "null":
            bound = message[1]
            if bound > self.bounds[src]:
                self.bounds[src] = bound
            return True
        if kind == "phase":
            if src in self._phase_done:
                raise RuntimeError(
                    f"shard {src} delivered two phase markers in one "
                    "phase; the barrier protocol is out of step"
                )
            self._phase_done.add(src)
            return True
        if kind == "abort":
            raise PeerAborted(f"shard {src} aborted mid-protocol")
        raise RuntimeError(f"unexpected shard message kind {kind!r}")

    def _inject_pending(self) -> None:
        """Schedule buffered cross-shard deliveries in deterministic order.

        Sorted by ``(time, kind, link-or-key, source, sequence)`` so
        the injection order — and therefore the kernel's tie-break
        order for simultaneous arrivals — is a pure function of the
        messages, independent of transport interleaving.
        """
        if not self._pending:
            return
        self._pending.sort(key=lambda entry: entry[:5])
        sim = self.sim
        for t_arrival, rank, key, _src, _seq, payload in self._pending:
            if rank == 0:
                inject_arrival(self.built, key, payload, t_arrival)
            else:
                handler = self._migration_handlers[key]
                if t_arrival < sim.now:
                    raise RuntimeError(
                        f"migration {key!r} effective at t={t_arrival} "
                        f"arrived at t={sim.now} (lookahead bug)"
                    )
                sim.call_later(t_arrival - sim.now, handler, payload)
        self._pending.clear()

    # ------------------------------------------------------------------
    # Phase barrier helpers
    # ------------------------------------------------------------------
    def _start_owned_flows(self) -> None:
        """Start this shard's half of every planned flow, in plan order.

        A group owning both the sender ("cn") and receiver ("radio")
        parts uses the exact monolithic ``FlowPlan.start`` path; split
        groups run the sender creation and the receiver hook
        separately, composing to the same per-plan order.
        """
        built = self.built
        duration = built.spec.duration
        if "cn" in self.owned and "radio" in self.owned:
            for plan in built.flow_plans:
                built.sources.append(plan.start(duration))
                built.sinks.append(plan.sink)
            return
        if "cn" in self.owned:
            for plan in built.flow_plans:
                built.sources.append(plan.start_sender(duration))
        if "radio" in self.owned:
            for plan in built.flow_plans:
                plan.attach_receiver()
                built.sinks.append(plan.sink)


__all__ = ["ShardDriver"]
