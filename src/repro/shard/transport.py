"""Cross-shard message transport: pipes over fork, queues for tests.

A sharded run needs N isolated simulators that exchange small ordered
messages (packet announcements, null-message bounds, migrations, and
final harvests).  Two transports implement the same contract:

* :class:`PipeTransport` — fork one child process per shard group,
  each connected to the parent by a duplex pipe.  The parent is a pure
  relay star: it forwards ``("msg", dst, payload)`` envelopes between
  children (tagging each with its source group), collects harvests,
  and fails fast on the first child error, re-raising the original
  exception with the worker traceback attached as its ``__cause__``
  (the same :class:`~repro.experiments.exec.RemoteTraceback` idiom as
  the process-pool backend).  Children inherit the built world and the
  shard body by fork, so nothing but plain message tuples is pickled.
* :class:`LocalTransport` — run every shard body on a thread in this
  process with plain queues.  Slower (the GIL serializes the shards)
  but fork-free, which makes it the deterministic reference transport
  for unit tests and fork-less platforms.

Ordering contract (what the conservative driver relies on): messages
between one ordered pair of groups are delivered first-in-first-out.
Pipes are FIFO and the parent forwards each child's stream in read
order; the local transport appends to a FIFO queue per receiver.

Determinism: transports never reorder a channel and never drop a
message; shard-count determinism is the driver's job (it consumes
messages by channel, not by global arrival order).
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import queue as queue_module
import sys
import threading
import traceback
from typing import Callable, Optional

from repro.experiments.exec import RemoteTraceback

#: A shard body: ``body(endpoint, group_index) -> picklable harvest``.
ShardBody = Callable[["Endpoint", int], object]


class PeerAborted(RuntimeError):
    """Raised inside a shard whose peer died mid-protocol.

    The :class:`LocalTransport` broadcasts an ``("abort",)`` message on
    a shard error so the surviving shards unblock instead of waiting
    forever for null messages that will never come; the driver raises
    this exception when it consumes one.  The transport then re-raises
    the *root* error, never the cascade.
    """


class Endpoint:
    """One shard's handle on the transport (send/recv message tuples).

    The driver sends ``endpoint.send(dst_group, payload)`` and blocks
    on ``endpoint.recv() -> (src_group, payload)``; payloads are plain
    tuples.  Deterministic per-channel FIFO delivery is guaranteed by
    every transport implementation.
    """

    def send(self, dst: int, payload: tuple) -> None:
        """Queue ``payload`` for delivery to shard group ``dst``."""
        raise NotImplementedError

    def recv(self) -> tuple[int, tuple]:
        """Block until the next ``(src_group, payload)`` message arrives."""
        raise NotImplementedError


class _PipeEndpoint(Endpoint):
    """Child-process endpoint: one duplex pipe to the relay parent."""

    def __init__(self, conn, group: int) -> None:
        self.conn = conn
        self.group = group

    def send(self, dst: int, payload: tuple) -> None:
        """Envelope ``payload`` for the parent to relay to ``dst``."""
        self.conn.send(("msg", dst, payload))

    def recv(self) -> tuple[int, tuple]:
        """Read the next relayed ``(src_group, payload)`` off the pipe."""
        kind, src, payload = self.conn.recv()
        if kind != "msg":  # pragma: no cover - protocol guard
            raise RuntimeError(f"unexpected relay message kind {kind!r}")
        return src, payload


def _pipe_child(conn, body: ShardBody, group: int) -> None:
    """Run one shard body in a forked child and report its outcome."""
    try:
        harvest = body(_PipeEndpoint(conn, group), group)
    except Exception as exc:
        try:
            import pickle

            pickle.loads(pickle.dumps(exc))
            wire_exc: Optional[Exception] = exc
        except Exception:
            wire_exc = None  # parent falls back to the traceback text
        conn.send(("error", wire_exc, traceback.format_exc()))
        return
    finally:
        sys.stdout.flush()
        sys.stderr.flush()
    conn.send(("harvest", harvest))


class PipeTransport:
    """Fork-per-shard transport with the parent as a relay star.

    The parent never simulates: it forwards envelopes between child
    pipes (one writer thread per child so a slow reader can never
    stall the relay loop), gathers one harvest per child, and
    fail-fasts on the first child error.  Requires the ``fork`` start
    method (callers degrade to serial execution elsewhere when it is
    missing).  Deterministic: per-channel FIFO relay, harvests
    returned in group order.
    """

    def run(self, n_groups: int, body: ShardBody) -> list:
        """Fork ``n_groups`` children running ``body``; return harvests.

        Returns the per-group harvest list in group-index order.  On a
        child failure every other child is terminated and the original
        exception is re-raised with the worker traceback as its cause.
        """
        context = multiprocessing.get_context("fork")
        parent_conns = []
        workers = []
        for group in range(n_groups):
            parent_conn, child_conn = context.Pipe(duplex=True)
            worker = context.Process(
                target=_pipe_child,
                args=(child_conn, body, group),
                daemon=True,
            )
            parent_conns.append(parent_conn)
            workers.append(worker)
        for worker in workers:
            worker.start()

        # One outbound queue + writer thread per child: the relay loop
        # below never blocks on a full pipe, so a child busy simulating
        # cannot deadlock its peers through the parent.
        out_queues: list[queue_module.Queue] = [
            queue_module.Queue() for _ in range(n_groups)
        ]

        def _writer(conn, out_queue) -> None:
            while True:
                item = out_queue.get()
                if item is None:
                    return
                try:
                    conn.send(item)
                except (BrokenPipeError, OSError):
                    return  # child died; the relay loop reports it

        writers = [
            threading.Thread(
                target=_writer, args=(conn, q), daemon=True
            )
            for conn, q in zip(parent_conns, out_queues)
        ]
        for writer in writers:
            writer.start()

        harvests: list = [None] * n_groups
        done = [False] * n_groups
        failure: Optional[tuple[Optional[Exception], str]] = None
        by_conn = {id(conn): group for group, conn in enumerate(parent_conns)}
        try:
            while not all(done) and failure is None:
                live = [
                    conn
                    for group, conn in enumerate(parent_conns)
                    if not done[group]
                ]
                ready = multiprocessing.connection.wait(live, timeout=1.0)
                if not ready:
                    if any(
                        not done[g] and not workers[g].is_alive()
                        for g in range(n_groups)
                    ):
                        raise RuntimeError(
                            "a shard process exited without reporting a "
                            "harvest or an error"
                        )
                    continue
                for conn in ready:
                    src = by_conn[id(conn)]
                    try:
                        message = conn.recv()
                    except EOFError:
                        if not done[src]:
                            raise RuntimeError(
                                f"shard {src} closed its pipe without "
                                "reporting a harvest or an error"
                            ) from None
                        continue
                    kind = message[0]
                    if kind == "msg":
                        _kind, dst, payload = message
                        out_queues[dst].put(("msg", src, payload))
                    elif kind == "harvest":
                        harvests[src] = message[1]
                        done[src] = True
                    elif kind == "error":
                        failure = (message[1], message[2])
                        break
                    else:  # pragma: no cover - protocol guard
                        raise RuntimeError(
                            f"unexpected shard message kind {kind!r}"
                        )
        finally:
            if failure is not None:
                for worker in workers:
                    worker.terminate()
            for out_queue in out_queues:
                out_queue.put(None)
            for worker in workers:
                worker.join(timeout=5.0)
                if worker.is_alive():  # pragma: no cover - defensive
                    worker.terminate()

        if failure is not None:
            exc, formatted = failure
            if exc is not None:
                raise exc from RemoteTraceback(formatted)
            raise RuntimeError(
                f"a shard failed with an unpicklable exception:\n{formatted}"
            )
        return harvests


class _LocalEndpoint(Endpoint):
    """In-process endpoint: direct queue delivery between shard threads."""

    def __init__(self, inboxes: list, group: int) -> None:
        self.inboxes = inboxes
        self.group = group

    def send(self, dst: int, payload: tuple) -> None:
        """Append ``(self.group, payload)`` to the destination's inbox."""
        self.inboxes[dst].put((self.group, payload))

    def recv(self) -> tuple[int, tuple]:
        """Block on this shard's own inbox for the next message."""
        return self.inboxes[self.group].get()


class LocalTransport:
    """Thread-per-shard transport for tests and fork-less platforms.

    Every shard body runs on a thread of this process with an
    unbounded FIFO inbox, so message volume can never deadlock and no
    pickling happens at all.  The GIL serializes actual execution —
    this transport demonstrates correctness (byte-identity), not
    speed.  Deterministic: per-channel FIFO by queue order.
    """

    def run(self, n_groups: int, body: ShardBody) -> list:
        """Run ``n_groups`` shard bodies on threads; return their harvests.

        Harvests are returned in group order.  The first shard error
        (by group index) is re-raised in the caller with the shard
        traceback attached as its ``__cause__``.
        """
        inboxes = [queue_module.Queue() for _ in range(n_groups)]
        harvests: list = [None] * n_groups
        errors: list = [None] * n_groups

        def _shard(group: int) -> None:
            try:
                harvests[group] = body(_LocalEndpoint(inboxes, group), group)
            except Exception as exc:
                errors[group] = (exc, traceback.format_exc())
                for dst, inbox in enumerate(inboxes):
                    if dst != group:
                        inbox.put((group, ("abort",)))

        threads = [
            threading.Thread(target=_shard, args=(group,), daemon=True)
            for group in range(n_groups)
        ]
        for thread in threads:
            thread.start()
        deadline_join = 300.0  # generous: a wedged sync means a bug
        for thread in threads:
            thread.join(timeout=deadline_join)
            if thread.is_alive():
                raise RuntimeError(
                    "shard thread did not finish; the conservative sync "
                    "protocol is wedged (likely a lookahead bug)"
                )
        root = None
        for error in errors:
            if error is None:
                continue
            if root is None:
                root = error
            if not isinstance(error[0], PeerAborted):
                root = error
                break
        if root is not None:
            exc, formatted = root
            raise exc from RemoteTraceback(formatted)
        return harvests


__all__ = [
    "Endpoint",
    "LocalTransport",
    "PeerAborted",
    "PipeTransport",
    "ShardBody",
]
