"""The flat Cellular IP baseline stack adapter.

One gateway-rooted access tree covers the whole multi-tier geometry
(macro, micro and pico sites from
:func:`~repro.stacks.flat.flat_cell_layout`), managed by soft-state
routing caches: uplink packets refresh per-hop mappings, downlink
packets follow them, and handoff is a route-update through the new
base station (semisoft by default — the stronger CIP variant, with the
dual-path interval and duplicate suppression the repo's CIP substrate
already models).  There is no tier policy and no route optimization:
this is the micro-mobility baseline the paper's architecture is
compared against.

Shared-channel mode: when the spec enables contention, every base
station gets a per-tier :class:`~repro.radio.channel.SharedChannel`
(same :class:`~repro.radio.channel.ChannelPlan` budgets as the
multi-tier stack), and the semisoft dual-path interval briefly holds
airtime claims on both cells — apples-to-apples with the other stacks'
air interface.

Determinism: the same population plan and stream names as every stack
(:mod:`repro.stacks.population`); controllers decide from seeded
models and pure signal surveys.  One ``(spec, seed)`` pair returns
byte-identical metrics on any execution backend.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.cellularip import CIPBaseStation, CIPDomain, CIPGateway, CIPMobileHost
from repro.fluid.driver import FluidDriver
from repro.net.addressing import AddressAllocator
from repro.net.packet import Packet
from repro.net.topology import Network
from repro.radio.cells import Cell
from repro.radio.channel import ChannelPlan
from repro.sim.kernel import Simulator
from repro.sim.rng import RandomStreams
from repro.stacks.base import (
    StackAdapter,
    air_metrics,
    flow_metrics_from_states,
    run_measurement_phases,
    sink_state,
)
from repro.stacks.flat import FlatMobilityController, flat_cell_layout
from repro.stacks.population import (
    ElasticAckDispatcher,
    FlowPlan,
    assignments,
    make_mobility,
    plan_flow,
    roam_rectangle,
    start_positions,
)
from repro.stacks.registry import register_stack
from repro.traffic import FlowSink, TrafficSource

if TYPE_CHECKING:  # pragma: no cover - annotations only (import cycle)
    from repro.scenarios.spec import ScenarioSpec

#: Prefix the Cellular IP mobiles' addresses are drawn from; the
#: Internet routes it wholesale to the gateway.
MOBILE_PREFIX = "10.200.0.0/16"

#: ``ScenarioSpec.domain_overrides`` keys that translate directly onto
#: :class:`~repro.cellularip.base_station.CIPDomain` parameters (the
#: shared wired/wireless link knobs); others are multi-tier-specific
#: and ignored here.
_CIP_DOMAIN_PARAMS = set(
    inspect.signature(CIPDomain.__init__).parameters
) - {"self", "sim", "channel_bandwidth"}


class _CIPController(FlatMobilityController):
    """Strongest-signal controller executing Cellular IP handoffs."""

    def __init__(self, sim, model, host, stations_by_cell, semisoft, **kwargs):
        self.host = host
        self.stations_by_cell = stations_by_cell
        self.semisoft = semisoft
        super().__init__(sim, model, **kwargs)

    def _attach(self, cell: Cell):
        """Initial attachment: associate and announce the route."""
        self.host.attach_to(self.stations_by_cell[cell.name])
        return
        yield  # pragma: no cover - generator protocol

    def _handoff(self, old: Cell, new: Cell):
        """Execute a CIP handoff (semisoft blocks for the dual-path
        interval; hard is instantaneous break-then-make)."""
        station = self.stations_by_cell[new.name]
        if self.semisoft:
            yield from self.host.handoff_semisoft(station)
        else:
            self.host.handoff_hard(station)


@dataclass
class BuiltCIPScenario:
    """A fully assembled Cellular IP world plus its planned traffic."""

    spec: ScenarioSpec
    seed: int
    sim: Simulator
    network: Network
    domain: CIPDomain
    hosts: list[CIPMobileHost]
    controllers: list[_CIPController]
    flow_plans: list[FlowPlan]
    channel_plan: Optional[ChannelPlan]
    fluid_driver: Optional[FluidDriver] = None
    sources: list[TrafficSource] = field(default_factory=list)
    sinks: list[FlowSink] = field(default_factory=list)

    def execute(self) -> dict[str, float]:
        """Run warmup → traffic window → drain; return the metric dict."""
        return run_measurement_phases(
            self.sim,
            self.spec,
            self.flow_plans,
            self.sources,
            self.sinks,
            self._collect_metrics,
        )

    # ------------------------------------------------------------------
    # Shard decomposition contract (see repro.shard)
    # ------------------------------------------------------------------
    #: Spatial parts of a built CIP world: the access tree (gateway +
    #: stations + hosts), the correspondent, and the internet router.
    SHARD_PARTS = ("radio", "cn", "core")

    def shard_part(self, node_name: str) -> str:
        """The shard part a node belongs to, by node name.

        ``cn`` and ``internet`` split off the wired side; the gateway,
        every base station and every mobile host form the radio part
        (the controllers hold direct station references).
        Deterministic: pure name lookup.
        """
        if node_name == "cn":
            return "cn"
        if node_name == "internet":
            return "core"
        return "radio"

    def shard_processes(self, part: str) -> list:
        """Root simulation processes owned by ``part`` (for neutering).

        Only the radio part owns root activity: the per-mobile
        controllers and the optional fluid driver.  Deterministic:
        fixed build-order lists.
        """
        if part != "radio":
            return []
        processes = [host._control_loop for host in self.hosts]
        processes.extend(controller.process for controller in self.controllers)
        if self.fluid_driver is not None:
            processes.append(self.fluid_driver.process)
        return processes

    def harvest(self, parts) -> dict:
        """Picklable metric state for the owned ``parts`` of this world.

        Merged across shards (``hops`` summed) and fed to
        :func:`cip_metrics_from_harvest`; the monolithic path harvests
        all parts and feeds the same function.  Deterministic: pure
        counter readout in build order.
        """
        h: dict = {"hops": self.network.protocol_hop_totals()}
        if "cn" in parts:
            h["packets_sent"] = [s.packets_sent for s in self.sources]
        if "radio" in parts:
            h["sinks"] = [sink_state(plan.sink) for plan in self.flow_plans]
            h["kinds"] = [plan.kind for plan in self.flow_plans]
            h["hosts"] = [
                {
                    "handoffs": host.handoffs_completed,
                    "attached": host.serving_bs is not None,
                    "route_updates": host.route_updates_sent,
                    "paging_updates": host.paging_updates_sent,
                    "duplicates": host.duplicates_discarded,
                }
                for host in self.hosts
            ]
            h["latencies"] = [
                latency
                for controller in self.controllers
                for latency in controller.handoff_latencies
            ]
            h["domain"] = {
                "control_packets": self.domain.total_control_packets(),
                "downlink_drops": self.domain.total_downlink_drops(),
                "paging_broadcasts": sum(
                    bs.paging_broadcasts for bs in self.domain.base_stations
                ),
            }
            if self.channel_plan is not None:
                h["air"] = air_metrics(
                    [bs.shared_channel for bs in self.domain.base_stations],
                    self.spec.warmup + self.spec.duration + self.spec.drain,
                )
            if self.fluid_driver is not None:
                h["fluid"] = self.fluid_driver.metrics()
        return h

    def _collect_metrics(self) -> dict[str, float]:
        return cip_metrics_from_harvest(
            self.spec, self.harvest(self.SHARD_PARTS)
        )


def cip_metrics_from_harvest(spec: "ScenarioSpec", h: dict) -> dict[str, float]:
    """The Cellular IP metric dict from (merged) harvest state.

    The historical collection formulas over harvested counters; both
    the monolithic execute path and the sharded merge route through
    here, so shard count cannot change a formula.  Deterministic: pure
    arithmetic, plain never-NaN floats.
    """
    metrics = flow_metrics_from_states(
        spec, h["packets_sent"], h["sinks"], h["kinds"]
    )
    latencies = h["latencies"]
    metrics.update({
        "handoffs": float(sum(host["handoffs"] for host in h["hosts"])),
        "handoff_latency": (
            (sum(latencies) / len(latencies)) if latencies else 0.0
        ),
        "attached": float(
            sum(1 for host in h["hosts"] if host["attached"])
        ),
        "hop_total": float(sum(h["hops"].values())),
        # Namespaced Cellular IP extras (metric contract: base.py).
        "cip.route_updates": float(
            sum(host["route_updates"] for host in h["hosts"])
        ),
        "cip.paging_updates": float(
            sum(host["paging_updates"] for host in h["hosts"])
        ),
        "cip.duplicates": float(
            sum(host["duplicates"] for host in h["hosts"])
        ),
        "cip.control_packets": float(h["domain"]["control_packets"]),
        "cip.downlink_drops": float(h["domain"]["downlink_drops"]),
        "cip.paging_broadcasts": float(h["domain"]["paging_broadcasts"]),
    })
    if "air" in h:
        metrics.update(h["air"])
    if "fluid" in h:
        metrics.update(h["fluid"])
    return metrics


def build_cip_scenario(
    spec: ScenarioSpec, seed: int, semisoft: bool = True
) -> BuiltCIPScenario:
    """Assemble the flat Cellular IP world for one ``(spec, seed)``.

    The access tree mirrors the multi-tier wired hierarchy — gateway
    over macro-site relays over micro leaves over picos — with
    ``spec.domain_overrides`` link knobs applied where CIP has the same
    parameter.  Population, trajectories and traffic come from the
    shared plan, so the run is directly comparable to the other stacks
    at the same seed.  Deterministic: seeded streams only.
    """
    streams = RandomStreams(int(seed))
    sim = Simulator()
    roam = roam_rectangle(spec)
    mobility_assignment, traffic_assignment, hotspot_indices = assignments(
        spec, streams
    )
    starts = start_positions(spec, streams, roam)

    overrides = {
        key: value
        for key, value in spec.domain_overrides.items()
        if key in _CIP_DOMAIN_PARAMS
    }
    domain = CIPDomain(sim, **overrides)
    network = Network(sim, prefix="10.0.0.0/8")
    gateway = CIPGateway(
        sim, "gw", network.allocator.allocate(), domain,
        mobile_prefix=MOBILE_PREFIX,
    )
    network.add(gateway)

    channel_plan = (
        ChannelPlan(
            macro_bandwidth=spec.macro_channel_bandwidth,
            pico_bandwidth=spec.pico_channel_bandwidth,
        )
        if spec.channels_enabled()
        else None
    )
    layout = flat_cell_layout(
        spec, starts, mobility_assignment, traffic_assignment
    )
    stations: dict[str, CIPBaseStation] = {}
    stations_by_cell: dict[str, CIPBaseStation] = {}
    cells: list[Cell] = []
    for site in layout:
        station = CIPBaseStation(
            sim, site.name, network.allocator.allocate(), domain
        )
        network.add(station)
        parent = stations[site.parent] if site.parent else gateway
        domain.link(parent, station)
        cell = site.cell()
        if channel_plan is not None:
            station.shared_channel = channel_plan.channel_for(sim, cell)
        stations[site.name] = station
        stations_by_cell[cell.name] = station
        cells.append(cell)

    internet = network.router("internet")
    cn = network.host("cn")
    network.connect(cn, internet, delay=0.005)
    gateway.connect_internet(internet, delay=0.005)
    internet.add_route(MOBILE_PREFIX, gateway)
    internet.add_host_route(cn.address, cn)

    ack_dispatcher = ElasticAckDispatcher()
    cn.on_protocol("ack", ack_dispatcher)

    def downlink(packet: Packet) -> bool:
        return cn.send_via(internet, packet)

    mobile_allocator = AddressAllocator(MOBILE_PREFIX)
    hosts: list[CIPMobileHost] = []
    controllers: list[_CIPController] = []
    flow_plans: list[FlowPlan] = []
    for index in range(spec.population):
        kind = traffic_assignment[index]
        host = CIPMobileHost(
            sim,
            f"mn{index}",
            mobile_allocator.allocate(),
            domain,
            airtime_key=index,
        )
        model = make_mobility(
            mobility_assignment[index], index, streams, roam, starts[index]
        )
        controllers.append(_CIPController(
            sim,
            model,
            host,
            stations_by_cell,
            semisoft,
            cells=cells,
            sample_period=spec.sample_period,
        ))
        hosts.append(host)
        plan = plan_flow(
            sim,
            kind,
            f"{spec.name}.mn{index}",
            streams,
            ack_dispatcher,
            downlink,
            host.on_data,
            host.originate,
            cn.address,
            host.address,
        )
        if plan is not None:
            flow_plans.append(plan)
    # Flash-crowd hotspots: extra simultaneous correspondent flows.
    for index in hotspot_indices:
        for flow in range(spec.hotspot_flows):
            flow_plans.append(plan_flow(
                sim,
                "poisson-data",
                f"{spec.name}.mn{index}.hot{flow}",
                streams,
                ack_dispatcher,
                downlink,
                hosts[index].on_data,
                hosts[index].originate,
                cn.address,
                hosts[index].address,
            ))

    # Hybrid background: analytic claims on every contended flat cell.
    # CIP stations don't carry their cell, so the pairs are zipped here.
    fluid_driver = None
    if spec.fluid is not None and spec.fluid.enabled:
        fluid_driver = FluidDriver(
            sim,
            spec.fluid,
            [
                (cell, stations_by_cell[cell.name].shared_channel)
                for cell in cells
                if stations_by_cell[cell.name].shared_channel is not None
            ],
            roam,
        )

    return BuiltCIPScenario(
        spec=spec,
        seed=int(seed),
        sim=sim,
        network=network,
        domain=domain,
        hosts=hosts,
        controllers=controllers,
        flow_plans=flow_plans,
        channel_plan=channel_plan,
        fluid_driver=fluid_driver,
    )


class CellularIPStack(StackAdapter):
    """Flat Cellular IP over the multi-tier geometry (semisoft handoff).

    Soft-state routing caches, paging for idle hosts, and the semisoft
    dual-path handoff — the micro-mobility baseline.  Extras are
    namespaced ``cip.*``.
    """

    name = "cellularip"
    description = (
        "flat Cellular IP baseline: soft-state routing caches, "
        "semisoft handoff, no tier policy"
    )
    metric_namespace = "cip"

    def build(self, spec: ScenarioSpec, seed: int) -> BuiltCIPScenario:
        """Assemble the flat CIP world (see :func:`build_cip_scenario`)."""
        return build_cip_scenario(spec, seed)

    def harvest_metrics(
        self, spec: ScenarioSpec, harvest: dict
    ) -> dict[str, float]:
        """Metric dict from a merged shard harvest (shared formulas)."""
        return cip_metrics_from_harvest(spec, harvest)

    def exercised(self, spec: ScenarioSpec) -> list[str]:
        """Adapter features ``spec`` exercises under flat Cellular IP."""
        features = super().exercised(spec)
        features.append("soft-state route/paging caches + semisoft handoff")
        if spec.domains == 2:
            features.append("single flat tree spans both domains' sites")
        if spec.pico_cells > 0:
            features.append(f"pico sites in the access tree ({spec.pico_cells})")
        mapped = sorted(set(spec.domain_overrides) & _CIP_DOMAIN_PARAMS)
        if mapped:
            features.append("domain overrides mapped: " + ", ".join(mapped))
        return features


class CellularIPHardStack(CellularIPStack):
    """Flat Cellular IP with hard (break-then-make) handoff.

    The weaker CIP variant: the route update follows an instantaneous
    radio switch, with no dual-path interval and no duplicate
    suppression — downlink packets in flight on the stale branch are
    lost.  Same world, geometry and metric namespace as the semisoft
    adapter, so ``--stack all`` comparisons isolate the handoff
    mechanism itself.
    """

    name = "cellularip-hard"
    description = (
        "flat Cellular IP baseline with hard (break-then-make) "
        "handoff: no semisoft dual-path interval"
    )

    def build(self, spec: ScenarioSpec, seed: int) -> BuiltCIPScenario:
        """Assemble the flat CIP world with hard handoff."""
        return build_cip_scenario(spec, seed, semisoft=False)

    def exercised(self, spec: ScenarioSpec) -> list[str]:
        """Adapter features ``spec`` exercises under hard-handoff CIP."""
        features = super().exercised(spec)
        features[features.index(
            "soft-state route/paging caches + semisoft handoff"
        )] = "soft-state route/paging caches + hard handoff"
        return features


register_stack(CellularIPStack())
register_stack(CellularIPHardStack())

__all__ = [
    "MOBILE_PREFIX",
    "BuiltCIPScenario",
    "CellularIPHardStack",
    "CellularIPStack",
    "build_cip_scenario",
    "cip_metrics_from_harvest",
]
