"""The stack-adapter contract: one protocol stack behind one scenario.

A :class:`StackAdapter` turns a ``(ScenarioSpec, seed)`` pair into a
ready-to-run world under one mobility-management protocol stack —
the paper's multi-tier architecture, flat Cellular IP, or flat Mobile
IP — wiring the *same* population and traffic plan (see
:mod:`repro.stacks.population`) over stack-specific machinery.  The
returned :class:`StackRun` executes warmup → traffic → drain and
collects a metric dict.

Metric contract
---------------
* Every stack emits :data:`COMMON_METRICS` (plain, never-NaN floats) —
  the keys the cross-stack comparison table aligns on.
* Stack-specific extras are namespaced ``<prefix>.<key>`` (e.g.
  ``cip.route_updates``, ``mip.tunneled``) per the adapter's
  :attr:`~StackAdapter.metric_namespace`.  The multi-tier adapter's
  historical extras (``blocked_attaches``, ``via_binding_fraction``)
  predate the namespace convention and are grandfathered un-prefixed:
  they are pinned byte-for-byte by the committed golden tables.
* Contention-mode runs additionally emit ``air_busiest_downlink`` /
  ``air_detach_drops`` (never in legacy mode — legacy tables must not
  grow keys).

Determinism: adapters draw all randomness from the run seed through
named :class:`~repro.sim.rng.RandomStreams`, so one
``(stack, spec, seed)`` triple returns byte-identical metrics in any
process, on any execution backend — the property the cross-stack
comparison table and CI parity gates rely on.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Protocol

if TYPE_CHECKING:  # pragma: no cover
    from repro.scenarios.spec import ScenarioSpec
    from repro.stacks.population import FlowPlan
    from repro.traffic import FlowSink, TrafficSource

#: Metric keys every stack adapter emits, in canonical order — the
#: rows of the cross-stack comparison table.
COMMON_METRICS: tuple[str, ...] = (
    "population",
    "flows",
    "sent",
    "received",
    "loss_rate",
    "mean_delay",
    "jitter",
    "max_gap",
    "handoffs",
    "handoff_latency",
    "attached",
    "elastic_goodput_bps",
    "hop_total",
)


class StackRun(Protocol):
    """What :meth:`StackAdapter.build` returns: a runnable world."""

    def execute(self) -> dict[str, float]:
        """Run warmup → traffic window → drain; return the metric dict."""
        ...  # pragma: no cover - protocol signature only


def run_measurement_phases(sim, spec, flow_plans, sources, sinks, collect):
    """The run protocol every stack shares: warmup → traffic → drain.

    Simulates ``spec.warmup`` seconds, starts every planned flow
    (appending the started sources and their sinks to the run's lists),
    simulates the traffic window plus ``spec.drain``, then returns
    ``collect()`` — the stack's own metric collection.  One definition
    so no stack can drift onto a different measurement window and skew
    the side-by-side comparison.  Deterministic: pure simulation drive.
    """
    sim.run(until=spec.warmup)
    for plan in flow_plans:
        sources.append(plan.start(spec.duration))
        sinks.append(plan.sink)
    sim.run(until=spec.warmup + spec.duration + spec.drain)
    return collect()


def sink_state(sink: "FlowSink") -> dict[str, float]:
    """One sink's metric-relevant state as a plain picklable dict.

    The harvest/merge path of sharded runs (see :mod:`repro.shard`)
    cannot ship live :class:`~repro.traffic.FlowSink` objects across
    processes (they hold a simulator reference), so each stack harvests
    this reduced state instead; the guarded statistics mirror exactly
    the ``received > 0`` / ``received > 1`` conditions under which the
    metric formulas read them.  Deterministic: pure counter readout.
    """
    return {
        "received": sink.received,
        "bytes_received": sink.bytes_received,
        "mean_delay": sink.mean_delay() if sink.received > 0 else 0.0,
        "jitter": sink.jitter() if sink.received > 1 else 0.0,
        "max_gap": sink.max_gap() if sink.received > 1 else 0.0,
    }


def flow_metrics(
    spec: "ScenarioSpec",
    sources: list["TrafficSource"],
    sinks: list["FlowSink"],
    flow_plans: list["FlowPlan"],
) -> dict[str, float]:
    """The traffic-plane slice of :data:`COMMON_METRICS`.

    Shared by the Cellular IP and Mobile IP adapters (the multi-tier
    adapter keeps its historical, golden-pinned collection code).
    Computes sent/received/loss, delay/jitter/gap and elastic goodput
    from the per-flow sources and sinks with the same formulas the
    multi-tier stack uses, so cross-stack columns are comparable.
    Deterministic: pure arithmetic over the run's counters; all values
    are plain floats and never NaN.
    """
    return flow_metrics_from_states(
        spec,
        [source.packets_sent for source in sources],
        [sink_state(sink) for sink in sinks],
        [plan.kind for plan in flow_plans],
    )


def flow_metrics_from_states(
    spec: "ScenarioSpec",
    packets_sent: list[int],
    sink_states: list[dict],
    kinds: list[str],
) -> dict[str, float]:
    """:func:`flow_metrics` over harvested (picklable) per-flow state.

    The single definition both the monolithic path (live objects,
    reduced via :func:`sink_state`) and the sharded merge path feed, so
    shard count cannot change a single formula.  ``packets_sent``,
    ``sink_states`` and ``kinds`` are index-aligned per flow plan.
    Deterministic: pure arithmetic, plain never-NaN floats.
    """
    sent = sum(packets_sent)
    received = sum(state["received"] for state in sink_states)
    delays = [s["mean_delay"] for s in sink_states if s["received"] > 0]
    jitters = [s["jitter"] for s in sink_states if s["received"] > 1]
    gaps = [s["max_gap"] for s in sink_states if s["received"] > 1]
    goodput = [
        state["bytes_received"] * 8.0 / spec.duration
        for state, kind in zip(sink_states, kinds)
        if kind == "elastic-data"
    ]
    return {
        "population": float(spec.population),
        "flows": float(len(kinds)),
        "sent": float(sent),
        "received": float(received),
        "loss_rate": (1.0 - received / sent) if sent else 0.0,
        "mean_delay": (sum(delays) / len(delays)) if delays else 0.0,
        "jitter": (sum(jitters) / len(jitters)) if jitters else 0.0,
        "max_gap": max(gaps) if gaps else 0.0,
        "elastic_goodput_bps": (
            (sum(goodput) / len(goodput)) if goodput else 0.0
        ),
    }


def air_metrics(channels: list, window: float) -> dict[str, float]:
    """Contention-mode air-interface extras over ``channels``.

    Emitted only when the spec enables shared channels (legacy tables
    must not grow keys).  Mirrors the multi-tier adapter's definitions:
    the downlink utilization of the busiest cell (over the ``window``
    seconds simulated) and the total airtime cancelled by claim
    detaches.  Deterministic counter arithmetic.
    """
    from repro.radio.channel import DOWNLINK, UPLINK

    live = [channel for channel in channels if channel is not None]
    busiest = max(
        (channel.stats.busy_seconds[DOWNLINK] for channel in live), default=0.0
    )
    return {
        "air_busiest_downlink": busiest / window,
        "air_detach_drops": float(
            sum(
                channel.stats.dropped_on_detach[DOWNLINK]
                + channel.stats.dropped_on_detach[UPLINK]
                for channel in live
            )
        ),
    }


class StackAdapter(abc.ABC):
    """One pluggable protocol stack the scenario engine can drive.

    Subclasses implement :meth:`build`; everything else — the registry,
    the CLI ``--stack`` flag, :func:`repro.scenarios.compare` — works
    against this interface, so registering a fourth stack is one class
    plus one :func:`repro.stacks.registry.register_stack` call (see
    ``docs/STACKS.md``).
    """

    #: Registry key (the value of ``ScenarioSpec.stack``).
    name: str = ""
    #: One line shown by ``repro scenario describe``.
    description: str = ""
    #: Prefix of this stack's namespaced metric extras ("" = none).
    metric_namespace: str = ""

    @abc.abstractmethod
    def build(self, spec: "ScenarioSpec", seed: int) -> StackRun:
        """Assemble the (not yet run) world for one ``(spec, seed)``.

        Must instantiate the shared population plan from
        :mod:`repro.stacks.population` so trajectories and offered
        traffic match the other stacks for the same seed.
        """

    def run(self, spec: "ScenarioSpec", seed: int) -> dict[str, float]:
        """Build and execute one run — the execution-backend job body."""
        return self.build(spec, seed).execute()

    def harvest_metrics(
        self, spec: "ScenarioSpec", harvest: dict
    ) -> dict[str, float]:
        """Compute the metric dict from a merged shard harvest.

        Sharded runs (see :mod:`repro.shard`) reduce each shard's
        state with the built scenario's ``harvest`` and merge the
        results; this hook applies the stack's exact historical metric
        formulas to that merged harvest.  Adapters that implement the
        shard contract override it; the base refuses, so an unsharded
        stack fails eagerly instead of returning wrong numbers.
        """
        raise NotImplementedError(
            f"stack {self.name!r} does not support sharded runs"
        )

    def exercised(self, spec: "ScenarioSpec") -> list[str]:
        """The adapter features ``spec`` exercises, for ``describe``.

        The base implementation reports the stack-independent spec
        surface (population/traffic plan, hotspots, shared air
        interface); adapters append their stack-specific fields.
        """
        features = ["mobility+traffic mix (shared population plan)"]
        if spec.hotspot_fraction > 0:
            features.append(
                f"hotspot correspondent flows ({spec.hotspot_count()} x "
                f"{spec.hotspot_flows})"
            )
        if "elastic-data" in spec.traffic_mix:
            features.append("elastic ack uplink")
        if spec.channels_enabled():
            features.append("shared air-interface contention")
        return features


__all__ = [
    "COMMON_METRICS",
    "StackAdapter",
    "StackRun",
    "air_metrics",
    "flow_metrics",
    "flow_metrics_from_states",
    "run_measurement_phases",
    "sink_state",
]
