"""Stack-independent population and traffic planning.

Every protocol-stack adapter (multi-tier, Cellular IP, Mobile IP)
instantiates the *same* population from a
:class:`~repro.scenarios.spec.ScenarioSpec`: the same per-mobile
mobility models, start positions, traffic-kind assignments and hotspot
selections, drawn from the same named
:class:`~repro.sim.rng.RandomStreams`.  That is what makes a
cross-stack comparison apples-to-apples — for one ``(spec, seed)``
pair, mobile ``mn3`` walks the identical trajectory and receives the
identical offered traffic under every stack; only the mobility
management underneath differs.

These helpers are hoisted verbatim from the pre-stacks
``repro.scenarios.builder`` (PR 2); the stream names (``mn<i>.start.x``,
``assign.traffic``, ``<flow>.talkspurts``, ...) are part of the
determinism contract and must not change — the multi-tier adapter's
byte-identity with pre-refactor output depends on them.

Determinism: every function here is a pure function of
``(spec, streams, ...)`` inputs; all randomness flows through the named
streams, so the same ``(spec, seed)`` pair produces identical
populations and flow plans in any process, on any execution backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.mobility import (
    GaussMarkov,
    Highway,
    ManhattanGrid,
    MobilityModel,
    RandomDirection,
    RandomWaypoint,
    Stationary,
)
from repro.net.packet import Packet
from repro.radio.geometry import Point, Rectangle
from repro.sim.rng import RandomStreams
from repro.traffic import (
    CBRSource,
    ElasticSource,
    FlowSink,
    OnOffSource,
    PoissonSource,
    TrafficSource,
    VBRVideoSource,
    make_ack_hook,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.scenarios.spec import ScenarioSpec
    from repro.sim.kernel import Simulator

#: Default roaming areas: stay just inside continuous radio coverage.
_ROAM_ONE_DOMAIN = (-4200.0, -1200.0, 4200.0, 1200.0)
_ROAM_TWO_DOMAINS = (-4200.0, -1200.0, 7000.0, 1200.0)

#: Nominal downlink demand (bit/s) per traffic kind — the bandwidth
#: factor of the paper's three-factor handoff decision (§3.2).
BANDWIDTH_DEMAND = {
    "idle": 0.0,
    "cbr-voice": 64e3,
    "onoff-voice": 64e3,
    "vbr-video": 128e3,
    "poisson-data": 80e3,
    "elastic-data": 256e3,
}

#: Mobility models slow enough to camp in a 60 m pico cell.
PICO_FRIENDLY_MODELS = {"stationary", "waypoint", "manhattan", "gauss-markov"}


def roam_rectangle(spec: "ScenarioSpec") -> Rectangle:
    """The area the spec's population roams.

    Returns the spec's explicit ``roam`` rectangle when set, otherwise
    a default strip just inside continuous radio coverage for the
    spec's domain count.  Deterministic: pure function of the spec.
    """
    if spec.roam is not None:
        return Rectangle(*spec.roam)
    bounds = _ROAM_TWO_DOMAINS if spec.domains == 2 else _ROAM_ONE_DOMAIN
    return Rectangle(*bounds)


def start_positions(
    spec: "ScenarioSpec", streams: RandomStreams, roam: Rectangle
) -> list[Point]:
    """Every mobile's seeded start position, drawn once per mobile.

    Uses the same per-mobile stream names the mobility factory has
    always used (``mn<i>.start.x`` / ``.y``), and each name is drawn
    exactly once per run, so every stack sees identical start
    positions and legacy multi-tier worlds stay byte-identical.
    """
    return [
        Point(
            streams.uniform(f"mn{index}.start.x", roam.x_min, roam.x_max),
            streams.uniform(f"mn{index}.start.y", roam.y_min, roam.y_max),
        )
        for index in range(spec.population)
    ]


def pico_sites(
    spec: "ScenarioSpec",
    starts: list[Point],
    mobility_assignment: list[str],
    traffic_assignment: list[str],
) -> list[Point]:
    """Contention-mode pico deployment: cells go where the load is.

    The paper's in-building picos exist to absorb multimedia load the
    wide tiers cannot carry, which presumes they are deployed at load
    concentrations.  Under the shared-channel model we therefore place
    each pico at the seeded start position of a slow, traffic-bearing
    mobile (wrapping over the candidates when picos outnumber them) —
    a pure function of (spec, seed), so determinism is untouched.
    Legacy mode keeps the historic fixed offsets under the micro
    leaves (see the multi-tier adapter).
    """
    candidates = [
        index
        for index in range(spec.population)
        if mobility_assignment[index] in PICO_FRIENDLY_MODELS
        and traffic_assignment[index] != "idle"
    ]
    if not candidates:
        candidates = list(range(spec.population))
    return [
        starts[candidates[pico % len(candidates)]]
        for pico in range(spec.pico_cells)
    ]


def pico_placements(
    spec: "ScenarioSpec",
    starts: list[Point],
    mobility_assignment: list[str],
    traffic_assignment: list[str],
    leaf_centers: dict[str, Point],
) -> list[tuple[str, Point]]:
    """Per-pico ``(parent leaf name, center)`` placements, every stack.

    The single source of truth for where a spec's pico cells go, shared
    by the multi-tier world builder and the baselines' flat cell layout
    so the cross-stack "same geometry" guarantee cannot drift:

    * legacy mode (contention off): the historic fixed offsets — pico
      ``i`` hangs under leaf ``i mod len(leaves)``, ±150 m alternating
      by deployment round;
    * contention mode: picos deploy at the seeded population
      concentration points from :func:`pico_sites`, parented to the
      nearest leaf (ties broken by ``leaf_centers`` insertion order).

    ``leaf_centers`` maps candidate parent leaves (the multi-tier micro
    leaves B/C/E/F) to their cell centers, in tie-break order.
    Deterministic: pure function of its inputs.
    """
    leaves = list(leaf_centers)
    if spec.channels_enabled():
        sites = pico_sites(
            spec, starts, mobility_assignment, traffic_assignment
        )
        return [
            (
                min(
                    leaves,
                    key=lambda name: leaf_centers[name].distance_to(center),
                ),
                center,
            )
            for center in sites
        ]
    placements: list[tuple[str, Point]] = []
    for pico in range(spec.pico_cells):
        parent = leaves[pico % len(leaves)]
        side = 1 if (pico // len(leaves)) % 2 == 0 else -1
        placements.append((
            parent,
            Point(
                leaf_centers[parent].x + side * 150.0,
                leaf_centers[parent].y,
            ),
        ))
    return placements


def make_mobility(
    kind: str, index: int, streams: RandomStreams, roam: Rectangle, start: Point
) -> MobilityModel:
    """One mobility model instance, randomness scoped to this mobile."""
    rng = streams.stream(f"mn{index}.mobility")
    if kind == "stationary":
        return Stationary(start, roam)
    if kind == "waypoint":
        return RandomWaypoint(
            start, roam, rng, speed_range=(0.8, 2.0), pause_range=(0.0, 8.0)
        )
    if kind == "manhattan":
        block = min(200.0, roam.width / 4, roam.height / 2)
        return ManhattanGrid(start, roam, rng, block_size=block, speed=8.0)
    if kind == "highway":
        # Vehicles drive a lane across the middle of the roam area.
        lane = Point(start.x, roam.center.y)
        speed = streams.uniform(f"mn{index}.speed", 22.0, 33.0)
        return Highway(lane, roam, rng, speed=speed, wrap=True, speed_jitter=1.0)
    if kind == "gauss-markov":
        return GaussMarkov(start, roam, rng, mean_speed=5.0)
    if kind == "random-direction":
        return RandomDirection(start, roam, rng, speed=10.0)
    raise ValueError(f"unknown mobility model {kind!r}")


def assignments(spec: "ScenarioSpec", streams: RandomStreams):
    """Per-mobile (mobility model, traffic kind, hotspot) assignment.

    Counts come from the exact largest-remainder apportionment; the
    pairing between the two lists is decorrelated by a seeded shuffle so
    mixes cross (e.g. some vehicles stream video, some walkers are
    idle) instead of aligning block-by-block.  Deterministic: the same
    ``(spec, seed)`` pair assigns every stack the same population.
    """
    mobility = [
        name
        for name, count in spec.mobility_counts().items()
        for _ in range(count)
    ]
    traffic = [
        kind
        for kind, count in spec.traffic_counts().items()
        for _ in range(count)
    ]
    shuffle_rng = streams.stream("assign.traffic")
    order = list(shuffle_rng.permutation(spec.population))
    traffic = [traffic[position] for position in order]
    hotspot_rng = streams.stream("assign.hotspots")
    hotspots = sorted(
        int(i)
        for i in hotspot_rng.permutation(spec.population)[: spec.hotspot_count()]
    )
    return mobility, traffic, hotspots


class ElasticAckDispatcher:
    """One CN-side 'ack' handler fanning out to every elastic source.

    :meth:`repro.net.node.Node.on_protocol` keeps a single handler per
    protocol, so scenarios with several elastic flows route all acks
    through this dispatcher, matched by flow id.  Shared by every stack
    adapter — the CN end of the elastic feedback loop is
    stack-independent.
    """

    def __init__(self) -> None:
        self.sources: dict[str, ElasticSource] = {}

    def register(self, source: ElasticSource) -> None:
        """Route acks carrying ``source.flow_id`` to ``source``."""
        self.sources[source.flow_id] = source

    def __call__(self, packet: Packet, link) -> None:
        """Dispatch one received ack to its flow's elastic source."""
        source = self.sources.get(packet.flow_id)
        if source is not None:
            source.acknowledge(packet.payload)


@dataclass
class FlowPlan:
    """A traffic flow scheduled to start after warmup.

    ``start`` performs the whole monolithic start (sender and receiver
    side, in the historical order).  Sharded runs split the two ends
    across processes: the correspondent-side shard calls
    ``start_sender`` while the mobile-side shard calls
    ``attach_receiver`` — together they perform exactly what ``start``
    does, so shard count cannot change flow behaviour.
    """

    flow_id: str
    kind: str
    start: Callable[[float], TrafficSource]  # duration -> started source
    sink: FlowSink
    #: CN-side half of ``start``: create + start the traffic source.
    start_sender: Optional[Callable[[float], TrafficSource]] = None
    #: Mobile-side half of ``start``: install receive hooks (elastic ack).
    attach_receiver: Optional[Callable[[], None]] = None


def plan_flow(
    sim: "Simulator",
    kind: str,
    flow_id: str,
    streams: RandomStreams,
    ack_dispatcher: ElasticAckDispatcher,
    send: Callable[[Packet], bool],
    data_hooks: list,
    ack_reply: Callable[[Packet], object],
    src_address,
    dst_address,
) -> Optional[FlowPlan]:
    """Plan one downlink flow of ``kind``, stack-independently.

    ``send`` is the CN-side downlink injection callable the stack
    provides (route-optimized tunnelling for multi-tier, plain Internet
    routing for the baselines); ``data_hooks`` is the mobile-side hook
    list fired per received data packet; ``ack_reply`` originates the
    elastic ack uplink from the mobile.  Stream names
    (``<flow>.talkspurts`` etc.) are shared across stacks, so the same
    ``(spec, seed)`` pair offers identical traffic under every stack.
    Returns ``None`` for ``"idle"``.
    """
    if kind == "idle":
        return None
    sink = FlowSink(flow_id=flow_id)
    data_hooks.append(sink.bind(sim))

    def make_source(duration: float) -> TrafficSource:
        if kind == "cbr-voice":
            source = CBRSource(
                sim, send, src_address, dst_address,
                rate_bps=64e3, packet_size=200,
                duration=duration, flow_id=flow_id,
            )
        elif kind == "onoff-voice":
            source = OnOffSource(
                sim, send, src_address, dst_address,
                rng=streams.stream(f"{flow_id}.talkspurts"),
                rate_bps=64e3, packet_size=200,
                duration=duration, flow_id=flow_id,
            )
        elif kind == "vbr-video":
            source = VBRVideoSource(
                sim, send, src_address, dst_address,
                rng=streams.stream(f"{flow_id}.frames"),
                mean_rate_bps=128e3, frame_rate=12.5, mtu=1000,
                duration=duration, flow_id=flow_id,
            )
        elif kind == "poisson-data":
            source = PoissonSource(
                sim, send, src_address, dst_address,
                rng=streams.stream(f"{flow_id}.arrivals"),
                mean_rate_pps=20.0, packet_size=500,
                duration=duration, flow_id=flow_id,
            )
        elif kind == "elastic-data":
            source = ElasticSource(
                sim, send, src_address, dst_address,
                packet_size=1000, duration=duration, flow_id=flow_id,
            )
            ack_dispatcher.register(source)
        else:  # pragma: no cover - spec validation rejects this earlier
            raise ValueError(f"unknown traffic kind {kind!r}")
        return source

    def attach_receiver() -> None:
        if kind == "elastic-data":
            data_hooks.append(make_ack_hook(sim, ack_reply, flow_id=flow_id))

    def start_sender(duration: float) -> TrafficSource:
        return make_source(duration).start()

    def start(duration: float) -> TrafficSource:
        # Historical monolithic order: create + register the source,
        # install the mobile-side hook, then start — preserved exactly
        # so legacy runs stay byte-identical.
        source = make_source(duration)
        attach_receiver()
        return source.start()

    return FlowPlan(
        flow_id=flow_id,
        kind=kind,
        start=start,
        sink=sink,
        start_sender=start_sender,
        attach_receiver=attach_receiver,
    )


__all__ = [
    "BANDWIDTH_DEMAND",
    "PICO_FRIENDLY_MODELS",
    "ElasticAckDispatcher",
    "FlowPlan",
    "assignments",
    "make_mobility",
    "pico_placements",
    "pico_sites",
    "plan_flow",
    "roam_rectangle",
    "start_positions",
]
