"""The flat Mobile IP baseline stack adapter.

Every cell site of the multi-tier geometry becomes a
:class:`~repro.mobileip.foreign_agent.ForeignAgent`; every cell change
is a full home registration through the visited FA to the Home Agent,
and downlink traffic always rides the HA tunnel triangle (no route
optimization, no hierarchy).  Packets tunnelled to a stale care-of
address during the registration round-trip are the scheme's
characteristic handoff losses — the paper's macro-mobility baseline.

Shared-channel mode (the ROADMAP's "uplink contention in the Mobile IP
baseline" nicety): when the spec enables contention, every FA gets a
per-tier :class:`~repro.radio.channel.SharedChannel`, so downlink
deliveries *and* the mobiles' uplink — registration requests included
— contend for airtime exactly like the other stacks.

Determinism: the same population plan and stream names as every stack
(:mod:`repro.stacks.population`); controllers decide from seeded
models and pure signal surveys.  One ``(spec, seed)`` pair returns
byte-identical metrics on any execution backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.mobileip import (
    ForeignAgent,
    HomeAgent,
    MobileIPNode,
    install_home_prefix_routes,
)
from repro.multitier.architecture import HOME_PREFIX
from repro.fluid.driver import FluidDriver
from repro.net.addressing import AddressAllocator
from repro.net.packet import Packet
from repro.net.topology import Network
from repro.radio.cells import Cell
from repro.radio.channel import ChannelPlan
from repro.sim.kernel import Simulator
from repro.sim.rng import RandomStreams
from repro.stacks.base import (
    StackAdapter,
    air_metrics,
    flow_metrics_from_states,
    run_measurement_phases,
    sink_state,
)
from repro.stacks.flat import FlatMobilityController, flat_cell_layout
from repro.stacks.population import (
    ElasticAckDispatcher,
    FlowPlan,
    assignments,
    make_mobility,
    plan_flow,
    roam_rectangle,
    start_positions,
)
from repro.stacks.registry import register_stack
from repro.traffic import FlowSink, TrafficSource

if TYPE_CHECKING:  # pragma: no cover - annotations only (import cycle)
    from repro.scenarios.spec import ScenarioSpec

#: The mobiles' permanent addresses come from the SAME home prefix the
#: multi-tier world uses (imported from its single source of truth,
#: :data:`repro.multitier.architecture.HOME_PREFIX`), so cross-stack
#: flow endpoints match.

#: Wired-link knobs shared with the multi-tier world's defaults.
_HOME_DELAY = 0.025
_INTERNET_DELAY = 0.005


class _MIPController(FlatMobilityController):
    """Strongest-signal controller moving a mobile between FAs.

    A move is detach-from-old + attach-to-new; the new FA's immediate
    agent advertisement triggers the node's home registration, whose
    round-trip is where Mobile IP's handoff losses accrue.
    """

    def __init__(self, sim, model, node, agents_by_cell, **kwargs):
        self.node = node
        self.agents_by_cell = agents_by_cell
        super().__init__(sim, model, **kwargs)

    def _attach(self, cell: Cell):
        """Initial attachment: associate with the cell's FA."""
        self.agents_by_cell[cell.name].attach_mobile(self.node)
        return
        yield  # pragma: no cover - generator protocol

    def _handoff(self, old: Cell, new: Cell):
        """Break-then-make FA change (registration runs asynchronously)."""
        self.agents_by_cell[old.name].detach_mobile(self.node)
        self.agents_by_cell[new.name].attach_mobile(self.node)
        return
        yield  # pragma: no cover - generator protocol


@dataclass
class BuiltMIPScenario:
    """A fully assembled Mobile IP world plus its planned traffic."""

    #: Shard decomposition parts, in deterministic harvest/merge order
    #: (see :mod:`repro.shard`): the radio access side (FAs, mobiles,
    #: controllers), the correspondent host, the home agent, and the
    #: wired core router joining them.
    SHARD_PARTS = ("radio", "cn", "home", "core")

    spec: ScenarioSpec
    seed: int
    sim: Simulator
    network: Network
    home_agent: HomeAgent
    agents: list[ForeignAgent]
    nodes: list[MobileIPNode]
    controllers: list[_MIPController]
    flow_plans: list[FlowPlan]
    channel_plan: Optional[ChannelPlan]
    fluid_driver: Optional[FluidDriver] = None
    sources: list[TrafficSource] = field(default_factory=list)
    sinks: list[FlowSink] = field(default_factory=list)

    def execute(self) -> dict[str, float]:
        """Run warmup → traffic window → drain; return the metric dict."""
        return run_measurement_phases(
            self.sim,
            self.spec,
            self.flow_plans,
            self.sources,
            self.sinks,
            self._collect_metrics,
        )

    # ------------------------------------------------------------------
    def shard_part(self, node_name: str) -> str:
        """Map a network node name onto one of :data:`SHARD_PARTS`.

        The correspondent is its own part, the home agent lives in
        ``home``, the core router in ``core``; everything else (FAs and
        their radio side) is ``radio``.  Deterministic name lookup.
        """
        if node_name == "cn":
            return "cn"
        if node_name == "ha":
            return "home"
        if node_name == "internet":
            return "core"
        return "radio"

    def shard_processes(self, part: str) -> list:
        """The simulation processes owned by ``part``.

        A sharded run neuters these on every replica that does not own
        ``part`` so only the owner advances them.  Deterministic: fixed
        build-order lists.
        """
        if part != "radio":
            return []
        processes = [agent._advertiser for agent in self.agents]
        processes.extend(controller.process for controller in self.controllers)
        if self.fluid_driver is not None:
            processes.append(self.fluid_driver.process)
        return processes

    def harvest(self, parts) -> dict:
        """Reduce the named parts' run state to one picklable dict.

        Each shard calls this for the parts it owns; the merge path
        unions the sections (summing ``hops``, which every replica
        accrues for the links it drives) and feeds the result to
        :func:`mip_metrics_from_harvest`.  Deterministic counter
        readout in fixed build order.
        """
        h: dict = {"hops": self.network.protocol_hop_totals()}
        if "cn" in parts:
            h["packets_sent"] = [s.packets_sent for s in self.sources]
        if "home" in parts:
            home_agent = self.home_agent
            h["home"] = {
                "registrations_accepted": home_agent.registrations_accepted,
                "registrations_denied": home_agent.registrations_denied,
                "tunneled": home_agent.tunneled_count,
                "dropped_no_binding": home_agent.dropped_no_binding,
            }
        if "radio" in parts:
            h["sinks"] = [sink_state(plan.sink) for plan in self.flow_plans]
            h["kinds"] = [plan.kind for plan in self.flow_plans]
            h["handoffs"] = sum(
                controller.handoffs for controller in self.controllers
            )
            h["latencies"] = [
                latency
                for node in self.nodes
                for latency in node.registration_latencies
            ]
            h["attached"] = sum(
                1
                for controller in self.controllers
                if controller.serving_cell is not None
            )
            h["registration_attempts"] = sum(
                node.registration_attempts for node in self.nodes
            )
            h["dropped_unknown_visitor"] = sum(
                agent.dropped_unknown_visitor for agent in self.agents
            )
            if self.channel_plan is not None:
                spec = self.spec
                h["air"] = air_metrics(
                    [agent.shared_channel for agent in self.agents],
                    spec.warmup + spec.duration + spec.drain,
                )
            if self.fluid_driver is not None:
                h["fluid"] = self.fluid_driver.metrics()
        return h

    def _collect_metrics(self) -> dict[str, float]:
        return mip_metrics_from_harvest(self.spec, self.harvest(self.SHARD_PARTS))


def mip_metrics_from_harvest(spec: "ScenarioSpec", h: dict) -> dict[str, float]:
    """Compute the Mobile IP metric dict from a (merged) harvest.

    The single formula set both the monolithic collection path and the
    sharded merge feed, holding the historical metric order exactly so
    shard count cannot perturb a golden table.  Deterministic pure
    arithmetic over harvested counters.
    """
    metrics = flow_metrics_from_states(
        spec, h["packets_sent"], h["sinks"], h["kinds"]
    )
    registrations = h["latencies"]
    home = h["home"]
    metrics.update({
        "handoffs": float(h["handoffs"]),
        # Mobile IP re-establishes routing via home registration, so
        # the registration round-trip IS the handoff latency.
        "handoff_latency": (
            (sum(registrations) / len(registrations))
            if registrations
            else 0.0
        ),
        "attached": float(h["attached"]),
        "hop_total": float(sum(h["hops"].values())),
        # Namespaced Mobile IP extras (metric contract: base.py).
        "mip.registration_attempts": float(h["registration_attempts"]),
        "mip.registrations_accepted": float(home["registrations_accepted"]),
        "mip.registrations_denied": float(home["registrations_denied"]),
        "mip.tunneled": float(home["tunneled"]),
        "mip.dropped_no_binding": float(home["dropped_no_binding"]),
        "mip.dropped_unknown_visitor": float(h["dropped_unknown_visitor"]),
    })
    if "air" in h:
        metrics.update(h["air"])
    if "fluid" in h:
        metrics.update(h["fluid"])
    return metrics


def build_mip_scenario(spec: ScenarioSpec, seed: int) -> BuiltMIPScenario:
    """Assemble the flat Mobile IP world for one ``(spec, seed)``.

    One FA per cell site (macro, micro, pico), all on the wired core
    next to the HA and CN; population, trajectories and traffic come
    from the shared plan, so the run is directly comparable to the
    other stacks at the same seed.  ``spec.domain_overrides`` link
    knobs map onto the analogous links — ``wireless_bandwidth`` /
    ``wireless_delay`` onto the FA radio links, ``wired_bandwidth`` /
    ``wired_delay`` onto the FA↔core access backhaul (so a
    choked-backhaul scenario chokes every stack, apples-to-apples);
    the remaining overrides are multi-tier-specific and ignored here.
    Deterministic: seeded streams only.
    """
    streams = RandomStreams(int(seed))
    sim = Simulator()
    roam = roam_rectangle(spec)
    mobility_assignment, traffic_assignment, hotspot_indices = assignments(
        spec, streams
    )
    starts = start_positions(spec, streams, roam)

    network = Network(sim, prefix="10.0.0.0/8")
    core = network.router("internet")
    home_agent = HomeAgent(
        sim, "ha", network.allocator.allocate(), HOME_PREFIX
    )
    network.add(home_agent)
    cn = network.host("cn")
    network.connect(home_agent, core, delay=_HOME_DELAY)
    network.connect(cn, core, delay=_INTERNET_DELAY)

    channel_plan = (
        ChannelPlan(
            macro_bandwidth=spec.macro_channel_bandwidth,
            pico_bandwidth=spec.pico_channel_bandwidth,
        )
        if spec.channels_enabled()
        else None
    )
    # Link knobs mirror the multi-tier domain defaults unless the spec
    # overrides them: radio legs per FA, and the FA↔core access
    # backhaul (the flat analogue of the domain's wired tree).
    wireless_bandwidth = float(
        spec.domain_overrides.get("wireless_bandwidth", 2e6)
    )
    wireless_delay = float(
        spec.domain_overrides.get("wireless_delay", 0.002)
    )
    wired_bandwidth = float(
        spec.domain_overrides.get("wired_bandwidth", 100e6)
    )
    wired_delay = float(
        spec.domain_overrides.get("wired_delay", _INTERNET_DELAY)
    )
    layout = flat_cell_layout(
        spec, starts, mobility_assignment, traffic_assignment
    )
    agents: list[ForeignAgent] = []
    agents_by_cell: dict[str, ForeignAgent] = {}
    cells: list[Cell] = []
    for site in layout:
        cell = site.cell()
        agent = ForeignAgent(
            sim,
            f"fa-{site.name}",
            network.allocator.allocate(),
            wireless_bandwidth=wireless_bandwidth,
            wireless_delay=wireless_delay,
            shared_channel=(
                channel_plan.channel_for(sim, cell)
                if channel_plan is not None
                else None
            ),
        )
        network.add(agent)
        network.connect(
            agent, core, bandwidth=wired_bandwidth, delay=wired_delay
        )
        agents.append(agent)
        agents_by_cell[cell.name] = agent
        cells.append(cell)
    network.install_routes()
    install_home_prefix_routes(network, home_agent)

    ack_dispatcher = ElasticAckDispatcher()
    cn.on_protocol("ack", ack_dispatcher)

    def downlink(packet: Packet) -> bool:
        return cn.send_via(core, packet)

    home_allocator = AddressAllocator(HOME_PREFIX)
    nodes: list[MobileIPNode] = []
    controllers: list[_MIPController] = []
    flow_plans: list[FlowPlan] = []
    #: Per-mobile data hook lists, indexed like ``nodes`` (MobileIPNode
    #: has no native on_data list, so flows and hotspot flows share
    #: these through the "data" protocol handler).
    hooks_by_index: list[list] = []
    for index in range(spec.population):
        kind = traffic_assignment[index]
        node = MobileIPNode(
            sim,
            f"mn{index}",
            home_address=home_allocator.allocate(),
            home_agent_address=home_agent.address,
        )
        #: Deterministic shared-channel arbitration key (population
        #: index), matching the other stacks' tie-break order.
        node.airtime_key = index
        hooks: list = []
        hooks_by_index.append(hooks)
        node.on_protocol("data", _fan_out(hooks))
        model = make_mobility(
            mobility_assignment[index], index, streams, roam, starts[index]
        )
        controllers.append(_MIPController(
            sim,
            model,
            node,
            agents_by_cell,
            cells=cells,
            sample_period=spec.sample_period,
        ))
        nodes.append(node)
        plan = plan_flow(
            sim,
            kind,
            f"{spec.name}.mn{index}",
            streams,
            ack_dispatcher,
            downlink,
            hooks,
            node.originate,
            cn.address,
            node.home_address,
        )
        if plan is not None:
            flow_plans.append(plan)
    # Flash-crowd hotspots: extra simultaneous correspondent flows.
    for index in hotspot_indices:
        for flow in range(spec.hotspot_flows):
            flow_plans.append(plan_flow(
                sim,
                "poisson-data",
                f"{spec.name}.mn{index}.hot{flow}",
                streams,
                ack_dispatcher,
                downlink,
                hooks_by_index[index],
                nodes[index].originate,
                cn.address,
                nodes[index].home_address,
            ))

    # Hybrid background: analytic claims on every contended flat cell.
    fluid_driver = None
    if spec.fluid is not None and spec.fluid.enabled:
        fluid_driver = FluidDriver(
            sim,
            spec.fluid,
            [
                (cell, agents_by_cell[cell.name].shared_channel)
                for cell in cells
                if agents_by_cell[cell.name].shared_channel is not None
            ],
            roam,
        )

    return BuiltMIPScenario(
        spec=spec,
        seed=int(seed),
        sim=sim,
        network=network,
        home_agent=home_agent,
        agents=agents,
        nodes=nodes,
        controllers=controllers,
        flow_plans=flow_plans,
        channel_plan=channel_plan,
        fluid_driver=fluid_driver,
    )


def _fan_out(hooks: list):
    """A ``data`` protocol handler firing every hook in ``hooks``."""

    def handler(packet: Packet, link) -> None:
        for hook in hooks:
            hook(packet)

    return handler


class MobileIPStack(StackAdapter):
    """Flat Mobile IP: one FA per cell, full home registration per move.

    The macro-mobility baseline: HA tunnel triangle for every packet,
    registration round-trips on every handoff.  Extras are namespaced
    ``mip.*``.
    """

    name = "mobileip"
    description = (
        "flat Mobile IP baseline: one FA per cell, full home "
        "registration per move, HA tunnel triangle"
    )
    metric_namespace = "mip"

    def build(self, spec: ScenarioSpec, seed: int) -> BuiltMIPScenario:
        """Assemble the flat Mobile IP world (see
        :func:`build_mip_scenario`)."""
        return build_mip_scenario(spec, seed)

    def harvest_metrics(
        self, spec: ScenarioSpec, harvest: dict
    ) -> dict[str, float]:
        """Metric dict from a merged shard harvest (shared formulas)."""
        return mip_metrics_from_harvest(spec, harvest)

    def exercised(self, spec: ScenarioSpec) -> list[str]:
        """Adapter features ``spec`` exercises under flat Mobile IP."""
        features = super().exercised(spec)
        features.append("HA binding cache + IP-in-IP tunnelling per flow")
        if spec.domains == 2:
            features.append("one FA set spans both domains' sites")
        if spec.pico_cells > 0:
            features.append(f"pico-site FAs ({spec.pico_cells})")
        if spec.channels_enabled():
            features.append("uplink registration traffic contends for airtime")
        mapped = sorted(
            set(spec.domain_overrides)
            & {
                "wireless_bandwidth",
                "wireless_delay",
                "wired_bandwidth",
                "wired_delay",
            }
        )
        if mapped:
            features.append("domain overrides mapped: " + ", ".join(mapped))
        return features


register_stack(MobileIPStack())

__all__ = [
    "HOME_PREFIX",
    "BuiltMIPScenario",
    "MobileIPStack",
    "build_mip_scenario",
    "mip_metrics_from_harvest",
]
