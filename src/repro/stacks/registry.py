"""The protocol-stack registry.

Maps ``ScenarioSpec.stack`` values to :class:`~repro.stacks.base.
StackAdapter` instances.  The three shipped stacks register themselves
when :mod:`repro.stacks` is imported; a fourth stack is one
:func:`register_stack` call (see ``docs/STACKS.md``).  Lookup failures
always list the registered names, so an unknown ``--stack`` fails
eagerly and helpfully.

Determinism: the registry is populated in import order and iterated in
registration order — pure bookkeeping, no randomness.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.stacks.base import StackAdapter

#: The stack every spec runs under unless it says otherwise — the
#: paper's architecture, and the byte-identity-pinned legacy path.
DEFAULT_STACK = "multitier"

_REGISTRY: dict[str, "StackAdapter"] = {}


def register_stack(adapter: "StackAdapter", replace: bool = False) -> "StackAdapter":
    """Add ``adapter`` to the registry under ``adapter.name``.

    ``replace=False`` (the default) raises :class:`ValueError` on a
    duplicate name so two stacks can never silently shadow each other.
    Returns the registered adapter for chaining.
    """
    if not adapter.name:
        raise ValueError("stack adapter must set a non-empty name")
    if not replace and adapter.name in _REGISTRY:
        raise ValueError(f"stack {adapter.name!r} is already registered")
    _REGISTRY[adapter.name] = adapter
    return adapter


def get_stack(name: str) -> "StackAdapter":
    """Look up a registered stack adapter by name.

    Raises :class:`KeyError` listing the registered names — the eager
    unknown-``--stack`` failure mode.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown stack {name!r}; registered: {', '.join(_REGISTRY)}"
        ) from None


def is_registered(name: str) -> bool:
    """True when ``name`` is a registered stack."""
    return name in _REGISTRY


def stack_names() -> list[str]:
    """The registered stack names, in registration order."""
    return list(_REGISTRY)


def iter_stacks() -> list["StackAdapter"]:
    """The registered adapters, in registration order."""
    return list(_REGISTRY.values())


__all__ = [
    "DEFAULT_STACK",
    "get_stack",
    "is_registered",
    "iter_stacks",
    "register_stack",
    "stack_names",
]
