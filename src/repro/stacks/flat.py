"""Flat-deployment helpers shared by the baseline stack adapters.

The Cellular IP and Mobile IP baselines deploy cells at the *same*
geometry as the multi-tier world — macro umbrellas R1/R2(/R4), micro
street cells A–G, and the spec's pico cells — but manage them flat:
no tier policy, no hierarchy-aware handoff.  :func:`flat_cell_layout`
produces that site list from a spec, and
:class:`FlatMobilityController` drives one mobile across it with the
classic strongest-signal + hysteresis rule (the baseline the paper's
three-factor decision is compared against).

Determinism: the layout is a pure function of ``(spec, starts,
assignments)``; the controller samples the (seeded) mobility model on a
fixed period and decides from :class:`~repro.radio.signal.SignalMeter`
surveys only — same ``(spec, seed)``, same handoff schedule, in any
process, on any execution backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.radio.cells import Cell, Tier
from repro.radio.geometry import Point
from repro.radio.propagation import PropagationModel
from repro.radio.signal import SignalMeter
from repro.stacks.population import pico_placements

if TYPE_CHECKING:  # pragma: no cover
    from repro.mobility import MobilityModel
    from repro.scenarios.spec import ScenarioSpec
    from repro.sim.kernel import Simulator


@dataclass(frozen=True)
class FlatSite:
    """One cell site of a flat deployment: name, geometry, tree parent."""

    name: str
    tier: Tier
    center: Point
    radius: float
    #: Name of the wired-tree parent site ("" = directly under the root).
    parent: str

    def cell(self) -> Cell:
        """This site's :class:`~repro.radio.cells.Cell` (tier defaults
        fill radio parameters)."""
        return Cell(
            name=f"cell-{self.name}",
            center=self.center,
            tier=self.tier,
            radius=self.radius,
        )


#: The multi-tier world's radio geometry (architecture.py docstring):
#: macro towers 800 m off the street axis, micro cells on it.
_MACRO_SITES = (
    ("R1", Point(-2000, 800)),
    ("R2", Point(2000, 800)),
)
_MACRO_SITES_D2 = (("R4", Point(6000, 800)),)
_MICRO_SITES = (
    ("A", Point(-2000, 0), "R1"),
    ("B", Point(-2700, 0), "R1"),
    ("C", Point(-1300, 0), "R1"),
    ("D", Point(2000, 0), "R2"),
    ("E", Point(1300, 0), "R2"),
    ("F", Point(2700, 0), "R2"),
)
_MICRO_SITES_D2 = (("G", Point(6000, 0), "R4"),)

#: Micro leaves eligible as pico parents (mirrors the multi-tier
#: builder's ``leaves`` tuple).
_PICO_LEAVES = ("B", "C", "E", "F")


def flat_cell_layout(
    spec: "ScenarioSpec",
    starts: Optional[list[Point]] = None,
    mobility_assignment: Optional[list[str]] = None,
    traffic_assignment: Optional[list[str]] = None,
) -> list[FlatSite]:
    """The baseline deployments' site list for ``spec``.

    Mirrors the multi-tier world cell-for-cell so coverage (and thus
    the mobility a roam rectangle induces) is identical across stacks:
    macro umbrellas (radius 2500 m), micro street cells (400 m), and
    ``spec.pico_cells`` picos (60 m) placed by the SAME shared rule the
    multi-tier builder uses
    (:func:`~repro.stacks.population.pico_placements`: fixed offsets
    under the micro leaves in legacy mode, seeded population
    concentration points — requiring ``starts`` and the assignments —
    when contention is enabled).  Deterministic: pure function of its
    inputs.
    """
    sites: list[FlatSite] = []
    macro = list(_MACRO_SITES) + (
        list(_MACRO_SITES_D2) if spec.domains == 2 else []
    )
    micro = list(_MICRO_SITES) + (
        list(_MICRO_SITES_D2) if spec.domains == 2 else []
    )
    for name, center in macro:
        sites.append(FlatSite(name, Tier.MACRO, center, 2500.0, ""))
    for name, center, parent in micro:
        sites.append(FlatSite(name, Tier.MICRO, center, 400.0, parent))

    micro_by_name = {name: center for name, center, _ in micro}
    leaf_centers = {name: micro_by_name[name] for name in _PICO_LEAVES}
    placements = pico_placements(
        spec, starts, mobility_assignment, traffic_assignment, leaf_centers
    )
    for pico, (parent, center) in enumerate(placements):
        sites.append(FlatSite(f"p{pico}", Tier.PICO, center, 60.0, parent))
    return sites


class FlatMobilityController:
    """Strongest-signal mobility for one mobile over a flat deployment.

    Samples the mobility model every ``sample_period`` seconds, surveys
    all cells, and: attaches to the strongest covering cell when
    unattached; hands off when the serving cell no longer covers the
    position (forced) or a covering rival beats it by ``hysteresis_db``
    — the tier-blind baseline behaviour (no speed or bandwidth factor).

    Subclasses implement :meth:`_attach` / :meth:`_handoff` as
    generators executing the stack's actual attachment machinery; the
    controller records handoff counts and wall-clock latencies (the
    time the handoff generator occupied, e.g. the Cellular IP semisoft
    interval).  Deterministic: decisions read only the seeded model and
    the pure signal survey.
    """

    def __init__(
        self,
        sim: "Simulator",
        model: "MobilityModel",
        cells: list[Cell],
        sample_period: float = 0.5,
        hysteresis_db: float = 4.0,
        min_usable_dbm: float = -95.0,
        propagation: Optional[PropagationModel] = None,
    ) -> None:
        self.sim = sim
        self.model = model
        self.sample_period = sample_period
        self.hysteresis_db = hysteresis_db
        self.meter = SignalMeter(
            propagation if propagation is not None else PropagationModel(),
            cells,
            min_usable_dbm=min_usable_dbm,
        )
        self.serving_cell: Optional[Cell] = None
        self.handoffs = 0
        self.handoff_latencies: list[float] = []
        self.process = sim.process(self._run())

    # ------------------------------------------------------------------
    def _run(self):
        while True:
            yield self.sim.timeout(self.sample_period)
            position = self.model.advance(self.sample_period)
            covering = [
                m
                for m in self.meter.survey(position)
                if m.cell.covers(position)
            ]
            if not covering:
                continue
            best = covering[0]  # survey is sorted strongest-first
            if self.serving_cell is None:
                self.serving_cell = best.cell
                yield from self._attach(best.cell)
                continue
            serving = next(
                (m for m in covering if m.cell is self.serving_cell), None
            )
            if serving is None:
                target = best.cell  # forced: walked out of the serving cell
            elif (
                best.cell is not self.serving_cell
                and best.rss_dbm >= serving.rss_dbm + self.hysteresis_db
            ):
                target = best.cell
            else:
                continue
            old = self.serving_cell
            self.serving_cell = target
            started = self.sim.now
            yield from self._handoff(old, target)
            self.handoffs += 1
            self.handoff_latencies.append(self.sim.now - started)

    # ------------------------------------------------------------------
    def _attach(self, cell: Cell):
        """Stack hook: initial attachment to ``cell`` (generator)."""
        return
        yield  # pragma: no cover - makes this a generator

    def _handoff(self, old: Cell, new: Cell):
        """Stack hook: execute the move ``old`` -> ``new`` (generator)."""
        return
        yield  # pragma: no cover - makes this a generator


__all__ = [
    "FlatMobilityController",
    "FlatSite",
    "flat_cell_layout",
]
