"""The multi-tier stack adapter: the paper's architecture (default).

This is the pre-stacks ``repro.scenarios.builder`` world-assembly code
hoisted behind the :class:`~repro.stacks.base.StackAdapter` interface:
a :class:`~repro.multitier.architecture.MultiTierWorld` (one or two
domains, optional pico cells, optional shared air interface), the
shared population plan from :mod:`repro.stacks.population`, per-mobile
:class:`~repro.multitier.architecture.MobilityController`\\ s applying
the three-factor handoff decision, and RSMC route optimization at the
correspondent.

Byte-identity contract: for any spec with ``stack="multitier"`` (the
default) this adapter's build order, stream names and metric
collection are IDENTICAL to the pre-refactor builder — pinned by the
``results/scenarios_smoke/`` goldens and the 16 experiment tables.

Determinism: all randomness flows through named
:class:`~repro.sim.rng.RandomStreams` keyed by mobile index, so the
same ``(spec, seed)`` pair builds an identical world and returns
byte-identical metrics on any execution backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.fluid.driver import FluidDriver, install_fluid_background
from repro.multitier.architecture import MobilityController, MultiTierWorld
from repro.multitier.mobile import MultiTierMobileNode
from repro.net.packet import Packet
from repro.policy.decider import TierDecider
from repro.radio.channel import ChannelPlan
from repro.sim.rng import RandomStreams

if TYPE_CHECKING:  # pragma: no cover - annotations only (import cycle)
    from repro.scenarios.spec import ScenarioSpec
from repro.stacks.base import StackAdapter, run_measurement_phases, sink_state
from repro.stacks.population import (
    BANDWIDTH_DEMAND,
    ElasticAckDispatcher,
    FlowPlan,
    assignments,
    make_mobility,
    pico_placements,
    plan_flow,
    roam_rectangle,
    start_positions,
)
from repro.stacks.registry import register_stack
from repro.traffic import FlowSink, TrafficSource


@dataclass
class BuiltScenario:
    """A fully assembled multi-tier world plus its planned traffic."""

    spec: ScenarioSpec
    seed: int
    world: MultiTierWorld
    mobiles: list[MultiTierMobileNode]
    controllers: list[MobilityController]
    mobility_assignment: list[str]
    traffic_assignment: list[str]
    hotspot_indices: list[int]
    flow_plans: list[FlowPlan]
    fluid_driver: "FluidDriver | None" = None
    sources: list[TrafficSource] = field(default_factory=list)
    sinks: list[FlowSink] = field(default_factory=list)

    def execute(self) -> dict[str, float]:
        """Run warmup → traffic window → drain; return scenario metrics."""
        return run_measurement_phases(
            self.world.sim,
            self.spec,
            self.flow_plans,
            self.sources,
            self.sinks,
            self._collect_metrics,
        )

    # ------------------------------------------------------------------
    # Shard decomposition contract (see repro.shard)
    # ------------------------------------------------------------------
    #: Spatial parts a built multi-tier world decomposes into, in the
    #: deterministic order the shard planner coalesces them.
    SHARD_PARTS = ("radio", "cn", "home", "core")

    @property
    def sim(self) -> "Simulator":
        """The world's simulator — uniform access for :mod:`repro.shard`
        (the other stacks store it as a plain ``sim`` field)."""
        return self.world.sim

    def shard_part(self, node_name: str) -> str:
        """The shard part a node belongs to, by node name.

        The wired core splits into the correspondent (``cn``), the home
        machinery (``ha`` + ``mnld``) and the ``internet`` router; every
        other node — RSMCs, stations, picos, mobiles — is radio-side
        (controllers hold direct references to stations of *both*
        domains, so the radio access side is one part).  Deterministic:
        pure name lookup.
        """
        if node_name == "cn":
            return "cn"
        if node_name in ("ha", "mnld"):
            return "home"
        if node_name == "internet":
            return "core"
        return "radio"

    def shard_processes(self, part: str) -> list:
        """Root simulation processes owned by ``part`` (for neutering).

        A shard that does not own ``part`` swaps these processes'
        generators for no-ops before time starts, so the replicated
        world stays quiescent outside its owned region.  Deterministic:
        fixed build-order lists.
        """
        if part != "radio":
            return []
        processes = [controller.process for controller in self.controllers]
        if self.fluid_driver is not None:
            processes.append(self.fluid_driver.process)
        return processes

    def harvest(self, parts) -> dict:
        """Picklable metric state for the owned ``parts`` of this world.

        The sharded merge unions one harvest per shard (summing the
        ``hops`` section, which every shard contributes) and feeds the
        result to :func:`metrics_from_harvest`; the monolithic path
        harvests all parts at once and feeds the same function, so
        shard count cannot change a formula.  Deterministic: pure
        counter readout in build order.
        """
        h: dict = {"hops": self.world.protocol_hop_totals()}
        if "cn" in parts:
            cn = self.world.cn
            h["packets_sent"] = [s.packets_sent for s in self.sources]
            h["cn"] = {
                "sent_via_binding": cn.sent_via_binding,
                "sent_via_home": cn.sent_via_home,
            }
        if "radio" in parts:
            h["sinks"] = [sink_state(plan.sink) for plan in self.flow_plans]
            h["kinds"] = [plan.kind for plan in self.flow_plans]
            h["mobiles"] = [
                {
                    "handoffs": m.handoffs_completed,
                    "latencies": list(m.handoff_latencies),
                    "attached": m.serving_bs is not None,
                }
                for m in self.mobiles
            ]
            h["blocked"] = sum(
                c.blocked_attach_attempts for c in self.controllers
            )
            if self.world.channel_plan is not None:
                from repro.radio.channel import DOWNLINK, UPLINK

                channels = [
                    bs.shared_channel
                    for bs in self.world.all_radio_stations()
                    if bs.shared_channel is not None
                ]
                window = self.spec.warmup + self.spec.duration + self.spec.drain
                busiest = max(
                    (ch.stats.busy_seconds[DOWNLINK] for ch in channels),
                    default=0.0,
                )
                h["air"] = {
                    "air_busiest_downlink": busiest / window,
                    "air_detach_drops": float(
                        sum(
                            ch.stats.dropped_on_detach[DOWNLINK]
                            + ch.stats.dropped_on_detach[UPLINK]
                            for ch in channels
                        )
                    ),
                }
            if not self.spec.policy.is_default():
                h["policy"] = self.world.decision_trace.metric_counts()
            if self.fluid_driver is not None:
                h["fluid"] = self.fluid_driver.metrics()
        return h

    def _collect_metrics(self) -> dict[str, float]:
        return metrics_from_harvest(self.spec, self.harvest(self.SHARD_PARTS))


def metrics_from_harvest(spec: "ScenarioSpec", h: dict) -> dict[str, float]:
    """The multi-tier metric dict from (merged) harvest state.

    Exactly the historical golden-pinned collection formulas, reading
    harvested counters instead of live objects — the monolithic
    :meth:`BuiltScenario.execute` path routes through here too, so the
    sharded merge and the legacy path cannot drift apart.  Metrics are
    plain floats and never NaN, so serial-vs-parallel (and
    shards(1)-vs-shards(N)) byte-identity is checkable with ordinary
    equality.  Deterministic: pure arithmetic.
    """
    sent = sum(h["packets_sent"])
    received = sum(s["received"] for s in h["sinks"])
    delays = [s["mean_delay"] for s in h["sinks"] if s["received"] > 0]
    jitters = [s["jitter"] for s in h["sinks"] if s["received"] > 1]
    gaps = [s["max_gap"] for s in h["sinks"] if s["received"] > 1]
    handoffs = sum(m["handoffs"] for m in h["mobiles"])
    latencies = [
        latency for m in h["mobiles"] for latency in m["latencies"]
    ]
    blocked = h["blocked"]
    attached = sum(1 for m in h["mobiles"] if m["attached"])
    routed = h["cn"]["sent_via_binding"] + h["cn"]["sent_via_home"]
    goodput = [
        state["bytes_received"] * 8.0 / spec.duration
        for state, kind in zip(h["sinks"], h["kinds"])
        if kind == "elastic-data"
    ]
    metrics = {
        "population": float(spec.population),
        "flows": float(len(h["kinds"])),
        "sent": float(sent),
        "received": float(received),
        "loss_rate": (1.0 - received / sent) if sent else 0.0,
        "mean_delay": (sum(delays) / len(delays)) if delays else 0.0,
        "jitter": (sum(jitters) / len(jitters)) if jitters else 0.0,
        "max_gap": max(gaps) if gaps else 0.0,
        "handoffs": float(handoffs),
        "handoff_latency": (
            (sum(latencies) / len(latencies)) if latencies else 0.0
        ),
        "blocked_attaches": float(blocked),
        "attached": float(attached),
        "via_binding_fraction": (
            h["cn"]["sent_via_binding"] / routed if routed else 0.0
        ),
        "elastic_goodput_bps": (
            (sum(goodput) / len(goodput)) if goodput else 0.0
        ),
        "hop_total": float(sum(h["hops"].values())),
    }
    if "air" in h:
        # Contention mode only: adding keys to a legacy run would
        # change its rendered table and break pre-channel byte-identity.
        metrics.update(h["air"])
    if "policy" in h:
        # Non-default policy block only — gated so default runs keep
        # their table shape byte-identical.
        metrics.update(h["policy"])
    if "fluid" in h:
        # Hybrid runs only: the fluid.* family (same gating rule).
        metrics.update(h["fluid"])
    return metrics


# ----------------------------------------------------------------------
def _downlink(world: MultiTierWorld, mobile: MultiTierMobileNode):
    """A send callable streaming CN -> mobile with route optimization."""

    def send(packet: Packet) -> bool:
        return world.cn.send_to_mobile(
            mobile.home_address,
            size=packet.size,
            flow_id=packet.flow_id,
            seq=packet.seq,
            created_at=packet.created_at,
        )

    return send


def build_multitier_scenario(spec: ScenarioSpec, seed: int) -> BuiltScenario:
    """Assemble the multi-tier world, population and traffic for one run.

    The pre-stacks ``build_scenario`` body, verbatim: same construction
    order, same stream names, same pico placement — the root of the
    ``stack="multitier"`` byte-identity guarantee.  Returns the
    assembled (not yet run) world; call :meth:`BuiltScenario.execute`
    to run it.
    """
    streams = RandomStreams(int(seed))
    channel_plan = None
    if spec.channels_enabled():
        # Contention mode: per-cell shared channels on every tier.  The
        # micro tier (and any unset field) runs at its TIER_DEFAULTS
        # budget; uplink budgets are half the downlink ones.
        channel_plan = ChannelPlan(
            macro_bandwidth=spec.macro_channel_bandwidth,
            pico_bandwidth=spec.pico_channel_bandwidth,
            admission_factor=spec.policy.admission_factor,
            weighted=spec.policy.weighted_airtime,
        )
    world = MultiTierWorld(
        second_domain=spec.domains == 2,
        domain_kwargs=dict(spec.domain_overrides),
        channel_plan=channel_plan,
    )
    roam = roam_rectangle(spec)
    mobility_assignment, traffic_assignment, hotspot_indices = assignments(
        spec, streams
    )
    starts = start_positions(spec, streams, roam)
    # In-building picos (Fig 2.1's third hierarchy level).  Legacy mode
    # keeps the historic placement: alternating fixed offsets under the
    # micro leaves.  Contention mode deploys them at seeded population
    # concentration points, so the pico overlay can actually absorb
    # load — the paper's reason for its existence.  The placement rule
    # is shared with the baselines' flat layout (pico_placements), so
    # cross-stack cell geometry cannot drift.
    leaf_centers = {
        name: world.domain1[name].cell.center for name in ("B", "C", "E", "F")
    }
    placements = pico_placements(
        spec, starts, mobility_assignment, traffic_assignment, leaf_centers
    )
    for pico, (parent_name, center) in enumerate(placements):
        world.add_pico(parent_name, f"p{pico}", center)

    ack_dispatcher = ElasticAckDispatcher()
    world.cn.on_protocol("ack", ack_dispatcher)

    # Under a shared air interface any slow, traffic-bearing mobile
    # benefits from a covering pico's fat shared budget, so the default
    # policy block resolves its demand threshold to 1 bit/s in
    # contention mode (200 kbit/s with per-user dedicated radios) —
    # the historical stack defaults, byte-identical.
    policy = TierDecider.from_config(
        spec.policy, contention=channel_plan is not None
    )
    mobiles: list[MultiTierMobileNode] = []
    controllers: list[MobilityController] = []
    flow_plans: list[FlowPlan] = []
    for index in range(spec.population):
        kind = traffic_assignment[index]
        mobile = world.add_mobile(
            f"mn{index}",
            bandwidth_demand=BANDWIDTH_DEMAND[kind],
            airtime_key=index,
        )
        model = make_mobility(
            mobility_assignment[index], index, streams, roam, starts[index]
        )
        controllers.append(
            world.add_controller(
                mobile,
                model,
                sample_period=spec.sample_period,
                policy=policy,
            )
        )
        mobiles.append(mobile)
        plan = plan_flow(
            world.sim,
            kind,
            f"{spec.name}.mn{index}",
            streams,
            ack_dispatcher,
            _downlink(world, mobile),
            mobile.on_data,
            mobile.originate,
            world.cn.address,
            mobile.home_address,
        )
        if plan is not None:
            flow_plans.append(plan)
    # Flash-crowd hotspots: extra simultaneous correspondent flows.
    for index in hotspot_indices:
        for flow in range(spec.hotspot_flows):
            plan = plan_flow(
                world.sim,
                "poisson-data",
                f"{spec.name}.mn{index}.hot{flow}",
                streams,
                ack_dispatcher,
                _downlink(world, mobiles[index]),
                mobiles[index].on_data,
                mobiles[index].originate,
                world.cn.address,
                mobiles[index].home_address,
            )
            flow_plans.append(plan)

    # Hybrid background (no-op returning None unless the spec carries a
    # non-empty fluid block): one analytic driver over every contended
    # cell, claiming airtime the discrete cohort then contends for.
    fluid_driver = install_fluid_background(
        world.sim, spec, world.all_radio_stations(), roam
    )

    return BuiltScenario(
        spec=spec,
        seed=int(seed),
        world=world,
        mobiles=mobiles,
        controllers=controllers,
        mobility_assignment=mobility_assignment,
        traffic_assignment=traffic_assignment,
        hotspot_indices=hotspot_indices,
        flow_plans=flow_plans,
        fluid_driver=fluid_driver,
    )


class MultiTierStack(StackAdapter):
    """The paper's multi-tier architecture with RSMC route optimization.

    Default stack: three-factor tier selection, make-before-break
    handoff, RSMC buffering and CN binding updates.  Extras
    (``blocked_attaches``, ``via_binding_fraction``) are grandfathered
    un-namespaced — pinned by the committed golden tables.
    """

    name = "multitier"
    description = (
        "the paper's multi-tier architecture: tier policy, "
        "make-before-break handoff, RSMC route optimization"
    )
    metric_namespace = ""  # grandfathered: predates the namespace rule

    def build(self, spec: ScenarioSpec, seed: int) -> BuiltScenario:
        """Assemble the multi-tier world (see
        :func:`build_multitier_scenario`)."""
        return build_multitier_scenario(spec, seed)

    def harvest_metrics(
        self, spec: ScenarioSpec, harvest: dict
    ) -> dict[str, float]:
        """Metric dict from a merged shard harvest (shared formulas)."""
        return metrics_from_harvest(spec, harvest)

    def exercised(self, spec: ScenarioSpec) -> list[str]:
        """Adapter features ``spec`` exercises under the multi-tier stack."""
        features = super().exercised(spec)
        features.append("three-factor tier selection + RSMC route optimization")
        if spec.domains == 2:
            features.append("inter-domain handoff (two RSMCs)")
        if spec.pico_cells > 0:
            features.append(f"pico overlay ({spec.pico_cells} cells)")
        if spec.domain_overrides:
            features.append(
                "domain overrides: "
                + ", ".join(sorted(spec.domain_overrides))
            )
        if not spec.policy.is_default():
            features.append(
                f"non-default policy block (mode={spec.policy.mode}, "
                f"policy.* metrics + decision trace)"
            )
        if spec.policy.admission_factor is not None:
            features.append(
                "air-interface admission control "
                f"(factor {spec.policy.admission_factor:g})"
            )
        if spec.policy.weighted_airtime:
            features.append("weighted airtime shares (demand-proportional)")
        if spec.fluid is not None and spec.fluid.enabled:
            features.append(
                f"hybrid fluid background "
                f"({spec.fluid.population} analytic mobiles)"
            )
        return features


register_stack(MultiTierStack())

__all__ = [
    "BuiltScenario",
    "MultiTierStack",
    "build_multitier_scenario",
    "metrics_from_harvest",
]
