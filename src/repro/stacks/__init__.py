"""Pluggable protocol-stack backends for the scenario engine.

The paper's central claim is comparative — multi-tier mobility
management beats flat Mobile IP and Cellular IP for multimedia traffic
— so every catalog scenario can run under any registered *stack
adapter*: an object that builds a world from a
``(ScenarioSpec, seed)`` pair, attaches mobility control, wires the
shared traffic plan and collects a common metric dict (see
:mod:`repro.stacks.base` for the contract and ``docs/STACKS.md`` for
the guide).

Shipped stacks (registered on import, in this order):

* ``multitier`` — the paper's architecture (the default; byte-identical
  to the pre-stacks builder);
* ``cellularip`` — flat Cellular IP with semisoft handoff;
* ``mobileip`` — flat Mobile IP, one FA per cell, full home
  registration per move.

All three instantiate the *same* seeded population and traffic plan
(:mod:`repro.stacks.population`), which is what makes
``repro scenario run <name> --stack all`` an apples-to-apples,
Table-1-style protocol comparison at catalog scale.

Determinism: adapters draw all randomness from the run seed through
named streams; one ``(stack, spec, seed)`` triple returns
byte-identical metrics on any execution backend.
"""

from repro.stacks.base import (
    COMMON_METRICS,
    StackAdapter,
    StackRun,
    air_metrics,
    flow_metrics,
)
from repro.stacks.registry import (
    DEFAULT_STACK,
    get_stack,
    is_registered,
    iter_stacks,
    register_stack,
    stack_names,
)
from repro.stacks.multitier import (
    BuiltScenario,
    MultiTierStack,
    build_multitier_scenario,
)
from repro.stacks.cellularip import (
    BuiltCIPScenario,
    CellularIPStack,
    build_cip_scenario,
)
from repro.stacks.mobileip import (
    BuiltMIPScenario,
    MobileIPStack,
    build_mip_scenario,
)

__all__ = [
    "COMMON_METRICS",
    "DEFAULT_STACK",
    "BuiltCIPScenario",
    "BuiltMIPScenario",
    "BuiltScenario",
    "CellularIPStack",
    "MobileIPStack",
    "MultiTierStack",
    "StackAdapter",
    "StackRun",
    "air_metrics",
    "build_cip_scenario",
    "build_mip_scenario",
    "build_multitier_scenario",
    "flow_metrics",
    "get_stack",
    "is_registered",
    "iter_stacks",
    "register_stack",
    "stack_names",
]
