"""``python -m repro`` entry point."""

import sys

from repro.cli import main

if __name__ == "__main__":
    try:
        code = main()
        sys.stdout.flush()
    except BrokenPipeError:
        # Downstream closed the pipe (e.g. `... | head`): exit quietly
        # with the conventional SIGPIPE status instead of a traceback.
        sys.stderr.close()
        code = 141
    raise SystemExit(code)
