"""The paper's primary contribution: multi-tier mobility management —
hierarchical cell tables, the three-factor handoff strategy, and the
Resource Switching Management Center (RSMC)."""

from repro.multitier import messages
from repro.multitier.basestation import Attachment, MultiTierBaseStation
from repro.multitier.correspondent import CorrespondentNode
from repro.multitier.domain import MobileRealm, MultiTierDomain, default_cell
from repro.multitier.mnld import MNLD
from repro.multitier.mobile import MultiTierMobileNode
from repro.multitier.policy import (
    AlwaysMacroPolicy,
    AlwaysMicroPolicy,
    AlwaysStrongestPolicy,
    Candidate,
    HandoffFactors,
    TierSelectionPolicy,
)
from repro.multitier.rsmc import RSMC
from repro.multitier.tables import DIRECT, CellTable, LocationRecord, TablePair

__all__ = [
    "AlwaysMacroPolicy",
    "AlwaysMicroPolicy",
    "AlwaysStrongestPolicy",
    "Attachment",
    "Candidate",
    "CellTable",
    "CorrespondentNode",
    "DIRECT",
    "HandoffFactors",
    "LocationRecord",
    "MNLD",
    "MobileRealm",
    "MultiTierBaseStation",
    "MultiTierDomain",
    "MultiTierMobileNode",
    "RSMC",
    "TablePair",
    "TierSelectionPolicy",
    "default_cell",
    "messages",
]
