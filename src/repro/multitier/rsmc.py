"""The Resource Switching Management Center (§4).

The RSMC roots a domain's base-station hierarchy and fuses the
Cellular IP gateway with the base stations' caches.  Paper duties:

* store the location information of every MN in the domain
  (inherited: the root's cell tables see every Location Message);
* forward data packets to MNs — and, during a handoff, *buffer* them
  so the radio switch loses nothing (the "resource switching" that
  "reduce[s] data packet loss");
* authenticate the identity of MNs arriving in the domain;
* on a route/location update after a move, notify the HA and the CN
  so traffic flows directly to this RSMC (no HA triangle).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.mobileip import messages as mip_messages
from repro.multitier import messages
from repro.multitier.basestation import MultiTierBaseStation
from repro.net.addressing import IPAddress
from repro.net.link import connect
from repro.net.node import Node
from repro.net.packet import Packet, decapsulate
from repro.radio.cells import Tier

if TYPE_CHECKING:  # pragma: no cover
    from repro.multitier.domain import MultiTierDomain
    from repro.sim.kernel import Simulator


class RSMC(MultiTierBaseStation):
    """Domain root: gateway + location store + handoff buffer + auth."""

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        address,
        domain: "MultiTierDomain",
        home_agent_address=None,
        mnld_address=None,
    ) -> None:
        super().__init__(
            sim, name, address, domain, tier=Tier.MACRO, channels=1_000_000
        )
        if domain.rsmc is not None:
            raise ValueError("domain already has an RSMC")
        domain.rsmc = self
        self.internet_neighbor: Optional[Node] = None
        self.home_agent_address = (
            IPAddress(home_agent_address) if home_agent_address is not None else None
        )
        self.mnld_address = (
            IPAddress(mnld_address) if mnld_address is not None else None
        )

        #: Handoff buffers: mobile -> queued downlink packets.
        self._buffers: dict[IPAddress, deque[Packet]] = {}
        self._buffer_guards: dict[IPAddress, object] = {}
        #: MNs whose identity this domain has verified.
        self.authenticated: set[IPAddress] = set()
        self._auth_in_progress: set[IPAddress] = set()
        #: MNs whose current Mobile IP care-of address is this RSMC.
        self._registered: set[IPAddress] = set()
        #: Last correspondent seen sending to each mobile (for notify).
        self._correspondents: dict[IPAddress, IPAddress] = {}
        #: Mobiles that arrived before we knew their correspondent: the
        #: route-optimization notify is sent as soon as we learn it.
        self._pending_cn_notify: set[IPAddress] = set()
        self._notify_sequence = 0

        #: Grace-period forwarding pointers for mobiles that left the
        #: domain: mobile -> (new care-of address, valid-until).
        self._forward_to: dict[IPAddress, tuple[IPAddress, float]] = {}

        self.buffered_packets = 0
        self.buffer_overflows = 0
        self.flushed_packets = 0
        self.forwarded_to_new_domain = 0
        self.authentications = 0
        self.notifications_sent = 0
        self.proxy_registrations = 0
        self.on_protocol("ipip", self._handle_tunneled)
        self.on_protocol(
            mip_messages.BINDING_NOTIFY, self._handle_home_binding_notify
        )

    # ------------------------------------------------------------------
    def connect_internet(
        self, router: Node, bandwidth: float = 100e6, delay: float = 0.005
    ) -> None:
        connect(self.sim, self, router, bandwidth=bandwidth, delay=delay)
        self.internet_neighbor = router

    # ------------------------------------------------------------------
    # Overridden packet paths
    # ------------------------------------------------------------------
    def receive(self, packet: Packet, link=None) -> None:
        from_node = link.head if link is not None else None
        if packet.protocol == messages.HANDOFF_BEGIN and self._is_local_control(packet):
            self.received_count += 1
            self._start_buffering(packet.payload.mobile_address)
            return
        if (
            self.domain.is_mobile(packet.dst)
            and packet.protocol == "data"
            and from_node is self.internet_neighbor
        ):
            # Remember who talks to this mobile, for route optimization.
            self._learn_correspondent(packet.dst, packet.src)
        super().receive(packet, link)

    def _learn_correspondent(self, mobile: IPAddress, correspondent) -> None:
        self._correspondents[mobile] = IPAddress(correspondent)
        if mobile in self._pending_cn_notify:
            self._pending_cn_notify.discard(mobile)
            self._notify_correspondent(mobile)

    def _is_local_control(self, packet: Packet) -> bool:
        return packet.dst == self.address or self.owns(packet.dst)

    def _forward_up(self, packet: Packet) -> None:
        """The root consumes domain control and bridges data upward."""
        protocol = packet.protocol
        if protocol in (
            messages.LOCATION,
            messages.UPDATE_LOCATION,
            messages.DELETE_LOCATION,
            messages.HANDOFF_BEGIN,
        ):
            return
        if self.internet_neighbor is not None:
            self.send_via(self.internet_neighbor, packet)

    def _handle_tunneled(self, packet: Packet, link) -> None:
        """Tunnel exit: the RSMC is the domain's care-of address."""
        inner = decapsulate(packet)
        if self.domain.is_mobile(inner.dst):
            if inner.protocol == "data" and not self.domain.is_mobile(inner.src):
                self._learn_correspondent(inner.dst, inner.src)
            self._route_mobile_packet(inner, link.head if link else None)
        # Non-mobile inner destinations are not ours to forward.

    # ------------------------------------------------------------------
    # Location handling: flush buffers, authenticate, notify
    # ------------------------------------------------------------------
    def _handle_location(self, packet: Packet, from_node) -> None:
        payload = packet.payload
        mobile = payload.mobile_address
        if packet.protocol == messages.UPDATE_LOCATION and not self._is_authenticated(
            mobile
        ):
            # First contact in this domain: authenticate, then apply.
            self.sim.process(
                self._authenticate_then_apply(packet, from_node),
                name=f"{self.name}-auth-{mobile}",
            )
            return
        super()._handle_location(packet, from_node)
        if packet.protocol == messages.UPDATE_LOCATION:
            self._finish_handoff(mobile)
            if mobile not in self._registered:
                # (Re-)entering the domain: the HA and MNLD must learn
                # the new care-of address.  Intra-domain handoffs keep
                # the registration and never touch the home network.
                self._register_with_home(mobile)
                self._update_mnld(mobile)

    def _is_authenticated(self, mobile: IPAddress) -> bool:
        return mobile in self.authenticated

    def _authenticate_then_apply(self, packet: Packet, from_node):
        mobile = packet.payload.mobile_address
        if mobile in self._auth_in_progress:
            return
        self._auth_in_progress.add(mobile)
        # Start buffering so nothing is lost while we verify identity.
        self._start_buffering(mobile)
        yield self.sim.timeout(self.domain.auth_delay)
        self._auth_in_progress.discard(mobile)
        self.authenticated.add(mobile)
        self.authentications += 1
        MultiTierBaseStation._handle_location(self, packet, from_node)
        self._finish_handoff(mobile)
        self._register_with_home(mobile)
        self._update_mnld(mobile)

    def _finish_handoff(self, mobile: IPAddress) -> None:
        # The mobile (re-)appeared in this domain: any stale departure
        # pointer is obsolete.
        self._forward_to.pop(mobile, None)
        self._flush_buffer(mobile)
        self._notify_correspondent(mobile)

    def _handle_delete(self, packet: Packet, from_node) -> None:
        """Delete reaching the domain root may mean the mobile left the
        domain entirely (Fig 3.3): per the paper, keep serving it "a
        while" — buffer its packets until the home network replies with
        the new location, then forward them there."""
        mobile = packet.payload.mobile_address
        had_record, _probes = self.tables.lookup(mobile)
        super()._handle_delete(packet, from_node)
        still_there, _probes = self.tables.lookup(mobile)
        if had_record is not None and still_there is None:
            self._start_buffering(mobile)

    def _handle_home_binding_notify(self, packet: Packet, link) -> None:
        """HA -> old domain: the mobile now binds to another care-of
        address; forward held and future packets there for a grace
        period."""
        notify = packet.payload
        if not isinstance(notify, mip_messages.BindingNotification):
            return
        mobile = notify.home_address
        new_coa = notify.forward_to
        if new_coa == self.address:
            return  # we *are* the current domain
        self._registered.discard(mobile)
        self._forward_to[mobile] = (
            new_coa,
            self.sim.now + self.domain.forward_grace,
        )
        buffer = self._buffers.pop(mobile, None)
        self._buffer_guards.pop(mobile, None)
        if buffer:
            for held in buffer:
                self._tunnel_to_new_domain(held, new_coa)

    def _tunnel_to_new_domain(self, packet: Packet, new_coa: IPAddress) -> None:
        if self.internet_neighbor is None:
            self.dropped_no_record += 1
            return
        from repro.net.packet import encapsulate

        self.forwarded_to_new_domain += 1
        self.send_via(
            self.internet_neighbor, encapsulate(packet, self.address, new_coa)
        )

    # ------------------------------------------------------------------
    # Handoff buffering ("resource switching")
    # ------------------------------------------------------------------
    def _start_buffering(self, mobile: IPAddress) -> None:
        if mobile not in self._buffers:
            self._buffers[mobile] = deque()
        guard = self._buffer_guards.get(mobile)
        if guard is None or not getattr(guard, "is_alive", False):
            self._buffer_guards[mobile] = self.sim.process(
                self._buffer_guard(mobile), name=f"{self.name}-bufguard-{mobile}"
            )

    def _buffer_guard(self, mobile: IPAddress):
        """Abandon a buffer if the handoff never completes."""
        yield self.sim.timeout(self.domain.buffer_guard_time)
        buffer = self._buffers.pop(mobile, None)
        self._buffer_guards.pop(mobile, None)
        if buffer:
            self.buffer_overflows += len(buffer)
            # The mobile vanished without an update or a home notify:
            # treat it as departed so a return re-registers.
            self._registered.discard(mobile)

    def _flush_buffer(self, mobile: IPAddress) -> None:
        buffer = self._buffers.pop(mobile, None)
        self._buffer_guards.pop(mobile, None)
        if not buffer:
            return
        record, _probes = self.tables.lookup(mobile)
        if record is None or record.via is None or record.via not in self.links:
            self.buffer_overflows += len(buffer)
            return
        for packet in buffer:
            self.flushed_packets += 1
            self.send_via(record.via, packet)

    def _route_mobile_packet(self, packet: Packet, from_node) -> None:
        buffer = self._buffers.get(packet.dst)
        if buffer is not None and packet.protocol == "data":
            self._buffer_packet(packet.dst, buffer, packet)
            return
        forward = self._forward_to.get(packet.dst)
        if forward is not None:
            new_coa, valid_until = forward
            if self.sim.now < valid_until:
                if packet.protocol == "data":
                    self._tunnel_to_new_domain(packet, new_coa)
                    return
            else:
                del self._forward_to[packet.dst]
        record, probes = self.tables.lookup(packet.dst)
        self.lookup_probes += probes
        if record is not None:
            down = record.via
            if down is not None and down in self.links and down is not from_node:
                self.send_via(down, packet)
                return
            if packet.protocol == "data":
                # Stale branch drained back to us mid-handoff: hold the
                # packet until the Update Location Message lands.
                self._start_buffering(packet.dst)
                self._buffer_packet(packet.dst, self._buffers[packet.dst], packet)
                return
        if record is None and self.domain.broadcast_paging and self.children:
            if packet.paged:
                self.dropped_no_record += 1
                return
            for child in self.children:
                copy = packet.copy(
                    duplicate_of=packet.duplicate_of or packet.uid, paged=True
                )
                self.send_via(child, copy)
            return
        self.dropped_no_record += 1

    def _buffer_packet(self, mobile: IPAddress, buffer, packet: Packet) -> None:
        if len(buffer) >= self.domain.buffer_size:
            self.buffer_overflows += 1
            return
        self.buffered_packets += 1
        buffer.append(packet)

    # ------------------------------------------------------------------
    # Route optimization and wide-area integration (§4)
    # ------------------------------------------------------------------
    def _notify_correspondent(self, mobile: IPAddress) -> None:
        if not self.domain.notify_correspondents:
            return
        correspondent = self._correspondents.get(mobile)
        if correspondent is None:
            # No known CN yet: notify as soon as its traffic shows up.
            self._pending_cn_notify.add(mobile)
            return
        if self.internet_neighbor is None:
            return
        # Timestamp-based sequence so notifies from *different* RSMCs
        # compare correctly at the correspondent (latest move wins).
        self._notify_sequence = max(
            self._notify_sequence + 1, int(self.sim.now * 1e9)
        )
        notify = messages.RSMCBindingNotify(
            mobile_address=mobile,
            rsmc_address=self.address,
            sequence=self._notify_sequence,
        )
        self.notifications_sent += 1
        self.send_via(
            self.internet_neighbor,
            Packet(
                src=self.address,
                dst=correspondent,
                size=messages.BINDING_NOTIFY_BYTES,
                protocol=messages.BINDING_NOTIFY,
                payload=notify,
                created_at=self.sim.now,
            ),
        )

    def _register_with_home(self, mobile: IPAddress) -> None:
        """Proxy Mobile IP registration: this RSMC is the MN's CoA."""
        self._registered.add(mobile)
        if self.home_agent_address is None or self.internet_neighbor is None:
            return
        identification = int(self.sim.now * 1e6) + 1
        request = mip_messages.RegistrationRequest(
            home_address=mobile,
            home_agent=self.home_agent_address,
            care_of_address=self.address,
            lifetime=300.0,
            identification=identification,
        )
        self.proxy_registrations += 1
        self.send_via(
            self.internet_neighbor,
            Packet(
                src=self.address,
                dst=self.home_agent_address,
                size=mip_messages.REGISTRATION_REQUEST_BYTES,
                protocol=mip_messages.REGISTRATION_REQUEST,
                payload=request,
                created_at=self.sim.now,
            ),
        )

    def _update_mnld(self, mobile: IPAddress) -> None:
        if self.mnld_address is None or self.internet_neighbor is None:
            return
        update = messages.MNLDUpdate(mobile_address=mobile, rsmc_address=self.address)
        self.send_via(
            self.internet_neighbor,
            Packet(
                src=self.address,
                dst=self.mnld_address,
                size=messages.MNLD_BYTES,
                protocol=messages.MNLD_UPDATE,
                payload=update,
                created_at=self.sim.now,
            ),
        )
