"""Correspondent node with an RSMC binding cache (§4 route
optimization).

"Then RSMC will update the location information of MN after got this
packet, and send a message to notify HA and CN.  Thus, packets sent by
CN will reach MN correctly via RSMC."  The CN keeps a per-mobile
binding and tunnels subsequent packets straight to the RSMC, skipping
the home-agent triangle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.multitier import messages
from repro.net.addressing import IPAddress
from repro.net.node import Node
from repro.net.packet import Packet, encapsulate

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.link import Link
    from repro.sim.kernel import Simulator


class CorrespondentNode(Node):
    """A wired host that streams to mobiles, honouring RSMC notifies."""

    def __init__(self, sim: "Simulator", name: str, address) -> None:
        super().__init__(sim, name, address)
        self.bindings: dict[IPAddress, IPAddress] = {}
        self._binding_sequence: dict[IPAddress, int] = {}
        self.gateway_router: Optional[Node] = None
        self.notifications_received = 0
        self.sent_via_binding = 0
        self.sent_via_home = 0
        self.data_received = 0
        self.on_protocol(messages.BINDING_NOTIFY, self._handle_notify)
        self.on_protocol("data", self._handle_data)

    # ------------------------------------------------------------------
    def _handle_notify(self, packet: Packet, link: Optional["Link"]) -> None:
        notify = packet.payload
        if not isinstance(notify, messages.RSMCBindingNotify):
            return
        last = self._binding_sequence.get(notify.mobile_address, -1)
        if notify.sequence <= last:
            return  # stale notify raced a newer one
        self._binding_sequence[notify.mobile_address] = notify.sequence
        self.bindings[notify.mobile_address] = notify.rsmc_address
        self.notifications_received += 1

    def _handle_data(self, packet: Packet, link: Optional["Link"]) -> None:
        self.data_received += 1

    # ------------------------------------------------------------------
    def send_to_mobile(self, mobile, size: int = 1000, **packet_fields) -> bool:
        """Send one data packet to ``mobile``.

        With a binding: tunnel to the RSMC (route-optimized).  Without:
        plain addressing, which the Internet routes to the home agent.
        """
        mobile = IPAddress(mobile)
        inner = Packet(
            src=self.address,
            dst=mobile,
            size=size,
            protocol="data",
            created_at=packet_fields.pop("created_at", self.sim.now),
            **packet_fields,
        )
        binding = self.bindings.get(mobile)
        if binding is not None:
            self.sent_via_binding += 1
            outgoing = encapsulate(inner, self.address, binding)
        else:
            self.sent_via_home += 1
            outgoing = inner
        return self.originate(outgoing)

    def originate(self, packet: Packet) -> bool:
        target = self.gateway_router
        if target is None and self.links:
            target = next(iter(self.links))
        if target is None:
            return False
        return self.send_via(target, packet)
