"""Domain configuration and construction helpers.

A *domain* is the paper's unit of wide-area mobility: the coverage of
one macro-tier hierarchy rooted at an RSMC (§3.2 defines "a domain to
be coverage of macro-tier").  Several domains share a
:class:`MobileRealm` — the set of mobile home addresses — and are
stitched together over the wired Internet by Mobile IP.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.net.addressing import IPAddress
from repro.radio.cells import Cell, Tier
from repro.radio.geometry import Point

if TYPE_CHECKING:  # pragma: no cover
    from repro.multitier.basestation import MultiTierBaseStation
    from repro.multitier.rsmc import RSMC
    from repro.sim.kernel import Simulator


class MobileRealm:
    """The set of mobile home addresses known across all domains."""

    def __init__(self) -> None:
        self.mobile_addresses: set[IPAddress] = set()

    def register(self, address) -> None:
        self.mobile_addresses.add(IPAddress(address))

    def is_mobile(self, address) -> bool:
        return IPAddress(address) in self.mobile_addresses


class MultiTierDomain:
    """Parameters and registry for one multi-tier domain."""

    def __init__(
        self,
        sim: "Simulator",
        realm: Optional[MobileRealm] = None,
        record_lifetime: float = 5.0,
        location_update_period: float = 1.0,
        handoff_timeout: float = 1.0,
        buffer_size: int = 64,
        buffer_guard_time: float = 2.0,
        forward_grace: float = 5.0,
        auth_delay: float = 0.020,
        guard_channels: int = 1,
        wireless_bandwidth: float = 2e6,
        wireless_delay: float = 0.002,
        wired_bandwidth: float = 100e6,
        wired_delay: float = 0.002,
        broadcast_paging: bool = True,
        notify_correspondents: bool = True,
    ) -> None:
        self.sim = sim
        self.realm = realm if realm is not None else MobileRealm()
        self.record_lifetime = record_lifetime
        self.location_update_period = location_update_period
        self.handoff_timeout = handoff_timeout
        self.buffer_size = buffer_size
        self.buffer_guard_time = buffer_guard_time
        self.forward_grace = forward_grace
        self.auth_delay = auth_delay
        self.guard_channels = guard_channels
        self.wireless_bandwidth = wireless_bandwidth
        self.wireless_delay = wireless_delay
        self.wired_bandwidth = wired_bandwidth
        self.wired_delay = wired_delay
        self.broadcast_paging = broadcast_paging
        self.notify_correspondents = notify_correspondents

        self.rsmc: Optional["RSMC"] = None
        self.base_stations: list["MultiTierBaseStation"] = []

    # ------------------------------------------------------------------
    def is_mobile(self, address) -> bool:
        return self.realm.is_mobile(address)

    def register_mobile(self, address) -> None:
        self.realm.register(address)

    def add_station(self, station: "MultiTierBaseStation") -> None:
        if station not in self.base_stations:
            self.base_stations.append(station)

    def link(self, parent: "MultiTierBaseStation", child: "MultiTierBaseStation") -> None:
        """Wire ``child`` under ``parent`` in the hierarchy."""
        from repro.net.link import connect

        if child.parent is not None:
            raise ValueError(f"{child.name} already has a parent")
        connect(
            self.sim,
            parent,
            child,
            bandwidth=self.wired_bandwidth,
            delay=self.wired_delay,
        )
        child.parent = parent
        parent.children.append(child)

    # ------------------------------------------------------------------
    # Accounting across the whole domain
    # ------------------------------------------------------------------
    def total_location_messages(self) -> int:
        return sum(bs.location_messages_seen for bs in self.base_stations)

    def total_table_records(self) -> int:
        return sum(bs.tables.total_records() for bs in self.base_stations)

    def total_downlink_drops(self) -> int:
        return sum(
            bs.dropped_no_record + bs.dropped_stale_radio
            for bs in self.base_stations
        )


def default_cell(name: str, tier: Tier, center: Point = Point(0.0, 0.0)) -> Cell:
    """A cell with tier-default radio parameters."""
    return Cell(name=name, center=center, tier=tier)
