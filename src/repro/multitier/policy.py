"""The paper's three-factor handoff decision (§3.2).

"When MN demands a handoff request, three kinds of factor are
considered to decide the suitable tier that MN should hop.  The first
is the speed of MN, the power of signal from BS is considered also,
and the last is the resources of BS."

Speed and bandwidth demand pick the *preferred tier*; signal strength
ranks candidates inside a tier; resources are checked by admission at
the base station (a rejection makes the MN "turn to ask" the other
tier — overflow).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.radio.cells import Tier


@dataclass
class HandoffFactors:
    """Inputs the mobile can observe locally."""

    speed: float
    bandwidth_demand: float = 0.0
    serving_tier: Optional[Tier] = None


@dataclass
class Candidate:
    """One admissible target: a base station heard at some signal level."""

    station: object  # MultiTierBaseStation (untyped to avoid an import cycle)
    rss_dbm: float
    tier: Tier = field(init=False)

    def __post_init__(self) -> None:
        self.tier = self.station.tier


class TierSelectionPolicy:
    """Order handoff candidates by tier preference, then signal.

    * Fast mobiles prefer the macro tier: micro cells would hand off
      every few seconds ("the speed of MN").
    * Slow mobiles with high bandwidth demand prefer the micro tier,
      whose cells offer more per-user bandwidth (§3.2 case a: "MN needs
      more bandwidth ... system will switch MN to micro-cell").
    * Within a tier, stronger signal wins ("the power of signal").

    The admission (resources) factor is applied by trying candidates in
    the returned order until one accepts.
    """

    #: True for policies that ignore tiers entirely (signal chasing):
    #: the controller then applies hysteresis across all tiers instead
    #: of preferring one.
    tier_agnostic = False

    def __init__(
        self,
        speed_threshold: float = 15.0,
        demand_threshold: float = 200e3,
    ) -> None:
        if speed_threshold <= 0:
            raise ValueError("speed_threshold must be positive")
        self.speed_threshold = speed_threshold
        self.demand_threshold = demand_threshold

    def preferred_tier(self, factors: HandoffFactors) -> Tier:
        return self.tier_preference(factors)[0]

    def tier_preference(self, factors: HandoffFactors) -> list[Tier]:
        """Tiers best-first for these factors.

        Fast mobiles: macro first (fewest handoffs).  Slow mobiles with
        high bandwidth demand: smallest cell first (pico offers the most
        per-user bandwidth, then micro).  Everyone else: micro first,
        pico as a local bonus, macro as overflow.
        """
        if factors.speed >= self.speed_threshold:
            return [Tier.MACRO, Tier.MICRO, Tier.PICO]
        if factors.bandwidth_demand >= self.demand_threshold:
            return [Tier.PICO, Tier.MICRO, Tier.MACRO]
        return [Tier.MICRO, Tier.PICO, Tier.MACRO]

    def order_candidates(
        self, candidates: list[Candidate], factors: HandoffFactors
    ) -> list[Candidate]:
        """Best-first list of stations to ask, never empty-handed: the
        non-preferred tiers follow as overflow."""
        preference = self.tier_preference(factors)
        return sorted(
            candidates,
            key=lambda c: (preference.index(c.tier), -c.rss_dbm),
        )


class AlwaysStrongestPolicy(TierSelectionPolicy):
    """Baseline for the E9 ablation: ignore speed/demand, chase signal.

    At street level a nearby micro cell usually beats the off-street
    macro tower, so this policy drags even vehicles through the micro
    cells and pays the handoff churn.
    """

    tier_agnostic = True

    def order_candidates(
        self, candidates: list[Candidate], factors: HandoffFactors
    ) -> list[Candidate]:
        return sorted(candidates, key=lambda c: -c.rss_dbm)


class AlwaysMicroPolicy(TierSelectionPolicy):
    """Baseline: micro tier whenever audible, macro only as overflow."""

    def tier_preference(self, factors: HandoffFactors) -> list[Tier]:
        return [Tier.MICRO, Tier.PICO, Tier.MACRO]


class AlwaysMacroPolicy(TierSelectionPolicy):
    """Baseline: macro tier whenever audible (flat wide-area network)."""

    def tier_preference(self, factors: HandoffFactors) -> list[Tier]:
        return [Tier.MACRO, Tier.MICRO, Tier.PICO]
