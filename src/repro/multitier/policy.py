"""The paper's three-factor handoff decision (§3.2) — compat layer.

"When MN demands a handoff request, three kinds of factor are
considered to decide the suitable tier that MN should hop.  The first
is the speed of MN, the power of signal from BS is considered also,
and the last is the resources of BS."

The decision engine itself now lives in :mod:`repro.policy` (the
explainable, config-driven :class:`~repro.policy.decider.TierDecider`).
This module keeps the historical names importable:
:class:`TierSelectionPolicy` and the E9 ablation baselines are thin
subclasses pinning the corresponding
:class:`~repro.policy.config.PolicyConfig` mode, and
:class:`~repro.policy.types.HandoffFactors` /
:class:`~repro.policy.types.Candidate` are re-exported.  Ordering is
byte-identical to the historical classes (and still deterministic:
pure functions of candidates and factors, pinned by the golden
tables).
"""

from __future__ import annotations

from repro.policy.decider import TierDecider
from repro.policy.types import Candidate, HandoffFactors


class TierSelectionPolicy(TierDecider):
    """The paper's speed-aware policy under its historical name.

    Equivalent to ``TierDecider(mode="speed-aware")``; both thresholds
    are validated (finite, strictly positive) with the same
    ``ValueError`` shape.
    """

    def __init__(
        self,
        speed_threshold: float = 15.0,
        demand_threshold: float = 200e3,
    ) -> None:
        super().__init__(
            speed_threshold=speed_threshold,
            demand_threshold=demand_threshold,
            mode="speed-aware",
        )


class AlwaysStrongestPolicy(TierDecider):
    """Baseline for the E9 ablation: ignore speed/demand, chase signal.

    At street level a nearby micro cell usually beats the off-street
    macro tower, so this policy drags even vehicles through the micro
    cells and pays the handoff churn.  Equivalent to
    ``TierDecider(mode="always-strongest")``.
    """

    tier_agnostic = True

    def __init__(
        self,
        speed_threshold: float = 15.0,
        demand_threshold: float = 200e3,
    ) -> None:
        super().__init__(
            speed_threshold=speed_threshold,
            demand_threshold=demand_threshold,
            mode="always-strongest",
        )


class AlwaysMicroPolicy(TierDecider):
    """Baseline: micro tier whenever audible, macro only as overflow.

    Equivalent to ``TierDecider(mode="always-micro")``.
    """

    def __init__(
        self,
        speed_threshold: float = 15.0,
        demand_threshold: float = 200e3,
    ) -> None:
        super().__init__(
            speed_threshold=speed_threshold,
            demand_threshold=demand_threshold,
            mode="always-micro",
        )


class AlwaysMacroPolicy(TierDecider):
    """Baseline: macro tier whenever audible (flat wide-area network).

    Equivalent to ``TierDecider(mode="always-macro")``.
    """

    def __init__(
        self,
        speed_threshold: float = 15.0,
        demand_threshold: float = 200e3,
    ) -> None:
        super().__init__(
            speed_threshold=speed_threshold,
            demand_threshold=demand_threshold,
            mode="always-macro",
        )


__all__ = [
    "AlwaysMacroPolicy",
    "AlwaysMicroPolicy",
    "AlwaysStrongestPolicy",
    "Candidate",
    "HandoffFactors",
    "TierSelectionPolicy",
]
