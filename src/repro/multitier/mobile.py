"""The multi-tier mobile node (the paper's MN).

Mobility is mobile-controlled (§3.2 picks mechanism "(1) managed by
MN"): the node requests admission from a candidate base station,
and on acceptance performs make-before-break signalling — Delete
Location Message down the old radio, Update Location Message up the
new one, "in the same time".
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Callable, Optional

from repro.multitier import messages
from repro.multitier.basestation import MultiTierBaseStation
from repro.net.addressing import IPAddress
from repro.net.node import Node
from repro.net.packet import Packet
from repro.radio.cells import Tier

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.link import Link
    from repro.sim.kernel import Simulator

_handoff_ids = itertools.count(1)


class MultiTierMobileNode(Node):
    """A mobile node roaming a multi-tier network."""

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        home_address,
        realm,
        bandwidth_demand: float = 0.0,
        airtime_key: Optional[int] = None,
    ) -> None:
        super().__init__(sim, name, home_address)
        self.home_address = IPAddress(home_address)
        realm.register(self.home_address)
        self.realm = realm
        #: Deterministic shared-channel arbitration key (the mobile's
        #: population index); ``None`` falls back to a name hash in
        #: :func:`repro.radio.channel.airtime_key`.
        self.airtime_key = airtime_key
        self.serving_bs: Optional[MultiTierBaseStation] = None
        #: Updated by the mobility controller each sampling epoch.
        self.speed = 0.0
        self.bandwidth_demand = bandwidth_demand

        self._location_loop = None
        self._pending_answers: dict[int, object] = {}
        self.handoffs_attempted = 0
        self.handoffs_completed = 0
        self.handoffs_rejected = 0
        self.handoffs_timed_out = 0
        #: Cause token of the most recent failed attempt (empty after a
        #: success) — read by the mobility controller to explain the
        #: resulting fallback: ``handoff-timeout``, or the rejecting
        #: base station's reason (e.g. ``air-budget-exceeded``).
        self.last_handoff_failure = ""
        self.handoff_latencies: list[float] = []
        self.location_messages_sent = 0
        self.data_received = 0
        self.on_data: list[Callable[[Packet], None]] = []

        self.on_protocol(messages.HANDOFF_ACCEPT, self._handle_answer)
        self.on_protocol(messages.HANDOFF_REJECT, self._handle_answer)

    # ------------------------------------------------------------------
    @property
    def serving_tier(self) -> Optional[Tier]:
        return self.serving_bs.tier if self.serving_bs is not None else None

    # ------------------------------------------------------------------
    # Attachment / location refresh
    # ------------------------------------------------------------------
    def initial_attach(self, bs: MultiTierBaseStation) -> bool:
        """First association: new-call admission (guard channels excluded)."""
        if not bs.admit_new_call(self):
            return False
        self.serving_bs = bs
        self._send_update_location()
        self._ensure_location_loop()
        return True

    def _ensure_location_loop(self, period: Optional[float] = None) -> None:
        if self._location_loop is not None and self._location_loop.is_alive:
            return
        self._location_loop = self.sim.process(
            self._location_refresh_loop(period), name=f"{self.name}-location-loop"
        )

    def _location_refresh_loop(self, period: Optional[float]):
        from repro.sim.errors import Interrupt

        while True:
            serving = self.serving_bs
            interval = period or (
                serving.domain.location_update_period if serving else 1.0
            )
            try:
                yield self.sim.timeout(interval)
            except Interrupt:
                return
            if self.serving_bs is not None:
                self.send_location_message()

    def send_location_message(self) -> None:
        serving = self.serving_bs
        if serving is None:
            return
        self.location_messages_sent += 1
        self.send_via(
            serving,
            Packet(
                src=self.home_address,
                dst=serving.address,
                size=messages.LOCATION_BYTES,
                protocol=messages.LOCATION,
                payload=messages.LocationMessage(
                    mobile_address=self.home_address, serving_tier=serving.tier
                ),
                created_at=self.sim.now,
            ),
        )

    def _send_update_location(self, handoff_id: int = 0) -> None:
        serving = self.serving_bs
        if serving is None:
            return
        self.location_messages_sent += 1
        self.send_via(
            serving,
            Packet(
                src=self.home_address,
                dst=serving.address,
                size=messages.UPDATE_LOCATION_BYTES,
                protocol=messages.UPDATE_LOCATION,
                payload=messages.UpdateLocationMessage(
                    mobile_address=self.home_address,
                    serving_tier=serving.tier,
                    handoff_id=handoff_id,
                ),
                created_at=self.sim.now,
            ),
        )

    def _send_delete_location(self, old_bs: MultiTierBaseStation, handoff_id: int) -> None:
        self.send_via(
            old_bs,
            Packet(
                src=self.home_address,
                dst=old_bs.address,
                size=messages.DELETE_LOCATION_BYTES,
                protocol=messages.DELETE_LOCATION,
                payload=messages.DeleteLocationMessage(
                    mobile_address=self.home_address, handoff_id=handoff_id
                ),
                created_at=self.sim.now,
            ),
        )

    # ------------------------------------------------------------------
    # Handoff procedure (§3.2, mobile-controlled)
    # ------------------------------------------------------------------
    def perform_handoff(self, new_bs: MultiTierBaseStation):
        """Generator: run as ``sim.process(mn.perform_handoff(bs))``.

        Returns True on success.  On rejection or timeout the mobile
        stays with its old base station (the caller may then try the
        next candidate — tier overflow).
        """
        if new_bs is self.serving_bs:
            return True
        self.last_handoff_failure = ""
        self.handoffs_attempted += 1
        handoff_id = next(_handoff_ids)
        started = self.sim.now

        # 1. Admission over the new radio ("resources of BS").
        new_bs.radio_connect(self)
        answer_event = self.sim.event()
        self._pending_answers[handoff_id] = answer_event
        self.send_via(
            new_bs,
            Packet(
                src=self.home_address,
                dst=new_bs.address,
                size=messages.HANDOFF_CONTROL_BYTES,
                protocol=messages.HANDOFF_REQUEST,
                payload=messages.HandoffRequest(
                    mobile_address=self.home_address,
                    handoff_id=handoff_id,
                    bandwidth_demand=self.bandwidth_demand,
                ),
                created_at=started,
            ),
        )
        timeout_guard = self.sim.timeout(self._handoff_timeout(new_bs))
        outcome = yield self.sim.any_of([answer_event, timeout_guard])
        self._pending_answers.pop(handoff_id, None)

        if answer_event not in outcome:
            self.handoffs_timed_out += 1
            self.last_handoff_failure = "handoff-timeout"
            if new_bs is not self.serving_bs:
                new_bs.radio_disconnect(self)
            return False
        answer = answer_event.value
        if not answer.accepted:
            self.handoffs_rejected += 1
            self.last_handoff_failure = (
                getattr(answer, "reason", "") or "channel-pool-full"
            )
            if new_bs is not self.serving_bs:
                new_bs.radio_disconnect(self)
            return False

        # 2. Make-before-break: erase the stale branch via the old radio
        #    and announce the new location via the new one, "in the same
        #    time" (§3.2 case a).
        old_bs = self.serving_bs
        if old_bs is not None:
            self._send_delete_location(old_bs, handoff_id)
        self.serving_bs = new_bs
        self._send_update_location(handoff_id)
        self._ensure_location_loop()
        self.handoffs_completed += 1
        self.handoff_latencies.append(self.sim.now - started)
        return True

    def _handoff_timeout(self, bs: MultiTierBaseStation) -> float:
        return bs.domain.handoff_timeout

    def _handle_answer(self, packet: Packet, link: Optional["Link"]) -> None:
        answer = packet.payload
        event = self._pending_answers.get(answer.handoff_id)
        if event is not None and not event.triggered:
            event.succeed(answer)

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def originate(self, packet: Packet) -> bool:
        if self.serving_bs is None:
            return False
        return self.send_via(self.serving_bs, packet)

    def deliver_local(self, packet: Packet, link: Optional["Link"]) -> None:
        if packet.protocol == "data":
            self.data_received += 1
            for hook in self.on_data:
                hook(packet)
        super().deliver_local(packet, link)
