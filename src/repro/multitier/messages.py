"""Control messages of the paper's multi-tier mobility management.

Protocol tags are prefixed ``mt-``.  §3.1 defines the periodic
*Location Message*; §3.2 adds *Update Location Message* and *Delete
Location Message* plus the handoff request/accept exchange; §4 adds
the RSMC's binding notifications and authentication exchange.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.addressing import IPAddress
from repro.radio.cells import Tier

LOCATION = "mt-location"
UPDATE_LOCATION = "mt-update-location"
DELETE_LOCATION = "mt-delete-location"
HANDOFF_REQUEST = "mt-handoff-request"
HANDOFF_ACCEPT = "mt-handoff-accept"
HANDOFF_REJECT = "mt-handoff-reject"
HANDOFF_BEGIN = "mt-handoff-begin"
BINDING_NOTIFY = "mt-binding-notify"
AUTH_REQUEST = "mt-auth-request"
AUTH_REPLY = "mt-auth-reply"
MNLD_UPDATE = "mnld-update"
MNLD_QUERY = "mnld-query"
MNLD_REPLY = "mnld-reply"

LOCATION_BYTES = 40
UPDATE_LOCATION_BYTES = 44
DELETE_LOCATION_BYTES = 40
HANDOFF_CONTROL_BYTES = 44
BINDING_NOTIFY_BYTES = 44
AUTH_BYTES = 64
MNLD_BYTES = 48


@dataclass(frozen=True)
class LocationMessage:
    """Periodic soft-state refresh sent by the MN to the top of the
    macro tier (§3.1)."""

    mobile_address: IPAddress
    serving_tier: Tier


@dataclass(frozen=True)
class UpdateLocationMessage:
    """Sent through the *new* base station after a handoff is accepted."""

    mobile_address: IPAddress
    serving_tier: Tier
    handoff_id: int


@dataclass(frozen=True)
class DeleteLocationMessage:
    """Sent to the *old* base station so the stale branch is erased
    instead of waiting for soft-state expiry."""

    mobile_address: IPAddress
    handoff_id: int


@dataclass(frozen=True)
class HandoffRequest:
    """MN -> candidate BS: admission request (channel needed)."""

    mobile_address: IPAddress
    handoff_id: int
    bandwidth_demand: float = 0.0


@dataclass(frozen=True)
class HandoffAnswer:
    """Candidate BS -> MN: accept or reject (resources factor, §3.2)."""

    mobile_address: IPAddress
    handoff_id: int
    accepted: bool
    #: Machine-readable rejection cause (empty when accepted), e.g.
    #: ``channel-pool-full`` or ``air-budget-exceeded``.
    reason: str = ""


@dataclass(frozen=True)
class HandoffBegin:
    """New BS -> RSMC: start buffering downlink packets for the MN."""

    mobile_address: IPAddress
    handoff_id: int


@dataclass(frozen=True)
class RSMCBindingNotify:
    """RSMC -> HA / CN: the MN is now reachable via this RSMC (§4),
    enabling route optimization around the HA triangle."""

    mobile_address: IPAddress
    rsmc_address: IPAddress
    sequence: int


@dataclass(frozen=True)
class AuthRequest:
    """MN (via BS) -> RSMC: authenticate on first arrival in a domain."""

    mobile_address: IPAddress
    credential: int


@dataclass(frozen=True)
class AuthReply:
    mobile_address: IPAddress
    granted: bool


@dataclass(frozen=True)
class MNLDUpdate:
    """RSMC -> MNLD: record the MN's current domain."""

    mobile_address: IPAddress
    rsmc_address: IPAddress


@dataclass(frozen=True)
class MNLDQuery:
    mobile_address: IPAddress
    reply_to: IPAddress


@dataclass(frozen=True)
class MNLDReply:
    mobile_address: IPAddress
    rsmc_address: IPAddress | None
