"""Full-system assembly of the paper's architecture (Figures 3.1 and
4.1) plus the mobile-side mobility controller.

The canonical world:

* a wired Internet core with a Home Agent (home prefix 10.99.0.0/16),
  an MNLD and a correspondent node;
* **domain 1** (Fig 3.1): RSMC1 over macro aggregation BS *R3*, macro
  cells *R1*, *R2*, micro aggregation *A*/*D* and micro leaf cells
  *B*, *C*, *E*, *F* laid out along a 2-D strip so that walking east
  produces exactly the handoffs of Fig 3.4;
* optionally **domain 2** (Fig 3.3): RSMC2 with macro *R4* and micro
  *G*, overlapping domain 1's eastern edge, so that crossing into it is
  an inter-domain handoff with a *different* upper BS.

Geometry (x-axis meters)::

    B(-2700)  A(-2000)  C(-1300) |corridor| E(1300)  D(2000)  F(2700)   G(6000)
    [------ R1 macro (-2000 r2500) ------][------ R2 macro (2000) -----][-- R4 --]
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.mobileip import HomeAgent, install_home_prefix_routes
from repro.multitier.basestation import MultiTierBaseStation
from repro.multitier.correspondent import CorrespondentNode
from repro.multitier.domain import MobileRealm, MultiTierDomain
from repro.multitier.mnld import MNLD
from repro.multitier.mobile import MultiTierMobileNode
from repro.multitier.policy import Candidate, HandoffFactors, TierSelectionPolicy
from repro.multitier.rsmc import RSMC
from repro.policy.trace import DecisionTrace
from repro.policy.types import FallbackDecision, NextAction, TierDecision
from repro.net import Network
from repro.net.addressing import AddressAllocator
from repro.radio.cells import Cell, Tier
from repro.radio.channel import ChannelPlan
from repro.radio.geometry import Point, Rectangle
from repro.radio.propagation import PropagationModel
from repro.radio.signal import SignalMeter
from repro.sim.kernel import Simulator

#: The strip of the world that mobility models roam.
WORLD_BOUNDS = Rectangle(-4500, -1500, 8500, 1500)
HOME_PREFIX = "10.99.0.0/16"


@dataclass
class DomainHandle:
    """Convenient access to one built domain's parts."""

    domain: MultiTierDomain
    rsmc: RSMC
    stations: dict[str, MultiTierBaseStation] = field(default_factory=dict)

    def __getitem__(self, name: str) -> MultiTierBaseStation:
        return self.stations[name]

    def radio_stations(self) -> list[MultiTierBaseStation]:
        return [bs for bs in self.stations.values() if bs.cell is not None]


class MultiTierWorld:
    """The assembled simulation world."""

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        home_delay: float = 0.025,
        internet_delay: float = 0.005,
        second_domain: bool = False,
        domain_kwargs: Optional[dict] = None,
        channel_plan: Optional[ChannelPlan] = None,
    ) -> None:
        self.sim = sim if sim is not None else Simulator()
        self.network = Network(self.sim, prefix="10.0.0.0/8")
        self.realm = MobileRealm()
        self.domain_kwargs = dict(domain_kwargs or {})
        #: Per-tier shared air-interface budgets; ``None`` (default) =
        #: legacy unconstrained per-mobile radio links.
        self.channel_plan = channel_plan
        #: World-wide decision-trace log: every controller built via
        #: :meth:`add_controller` records its tier decisions and
        #: fallbacks here (ring buffer + exact ``policy.*`` counters).
        self.decision_trace = DecisionTrace()
        self._home_allocator = AddressAllocator(HOME_PREFIX)

        # Wired core ----------------------------------------------------
        self.internet = self.network.router("internet")
        self.ha = HomeAgent(
            self.sim, "ha", self.network.allocator.allocate(), HOME_PREFIX
        )
        self.mnld = MNLD(self.sim, "mnld", self.network.allocator.allocate())
        self.cn = CorrespondentNode(
            self.sim, "cn", self.network.allocator.allocate()
        )
        for node in (self.ha, self.mnld, self.cn):
            self.network.add(node)
        self.network.connect(self.ha, self.internet, delay=home_delay)
        self.network.connect(self.mnld, self.internet, delay=internet_delay)
        self.network.connect(self.cn, self.internet, delay=internet_delay)
        self.cn.gateway_router = self.internet
        self.mnld.gateway_router = self.internet

        # Domains ---------------------------------------------------------
        self.domain1 = self._build_domain_one()
        self.domain2 = self._build_domain_two() if second_domain else None

        self.network.install_routes()
        install_home_prefix_routes(self.network, self.ha)

        self.mobiles: list[MultiTierMobileNode] = []
        self.controllers: list["MobilityController"] = []

    # ------------------------------------------------------------------
    def _new_domain(self) -> MultiTierDomain:
        return MultiTierDomain(self.sim, realm=self.realm, **self.domain_kwargs)

    def _station(
        self,
        domain: MultiTierDomain,
        name: str,
        tier: Tier,
        center: Optional[Point],
        radius: float = 0.0,
        channels: Optional[int] = None,
    ) -> MultiTierBaseStation:
        cell = None
        shared_channel = None
        if center is not None:
            cell = Cell(name=f"cell-{name}", center=center, tier=tier, radius=radius)
            if self.channel_plan is not None:
                shared_channel = self.channel_plan.channel_for(self.sim, cell)
        station = MultiTierBaseStation(
            self.sim,
            name,
            self.network.allocator.allocate(),
            domain,
            tier=tier,
            cell=cell,
            channels=channels,
            shared_channel=shared_channel,
        )
        self.network.add(station)
        return station

    def _build_domain_one(self) -> DomainHandle:
        domain = self._new_domain()
        rsmc = RSMC(
            self.sim,
            "rsmc1",
            self.network.allocator.allocate(),
            domain,
            home_agent_address=self.ha.address,
            mnld_address=self.mnld.address,
        )
        self.network.add(rsmc)
        self.network.connect(rsmc, self.internet, delay=0.005)
        rsmc.internet_neighbor = self.internet

        handle = DomainHandle(domain=domain, rsmc=rsmc)
        # Macro tier: R3 aggregates R1 and R2 (Fig 3.1's two levels).
        # Macro towers sit 800 m off the street axis, so at street level a
        # nearby micro cell is stronger than the macro umbrella — signal-
        # chasing policies therefore churn between tiers (E9's baseline).
        r3 = self._station(domain, "R3", Tier.MACRO, None)
        r1 = self._station(domain, "R1", Tier.MACRO, Point(-2000, 800), radius=2500)
        r2 = self._station(domain, "R2", Tier.MACRO, Point(2000, 800), radius=2500)
        # Micro tier west (under R1): A aggregates B and C.
        a = self._station(domain, "A", Tier.MICRO, Point(-2000, 0), radius=400)
        b = self._station(domain, "B", Tier.MICRO, Point(-2700, 0), radius=400)
        c = self._station(domain, "C", Tier.MICRO, Point(-1300, 0), radius=400)
        # Micro tier east (under R2): D aggregates E and F.
        d = self._station(domain, "D", Tier.MICRO, Point(2000, 0), radius=400)
        e = self._station(domain, "E", Tier.MICRO, Point(1300, 0), radius=400)
        f = self._station(domain, "F", Tier.MICRO, Point(2700, 0), radius=400)

        domain.link(rsmc, r3)
        domain.link(r3, r1)
        domain.link(r3, r2)
        domain.link(r1, a)
        domain.link(a, b)
        domain.link(a, c)
        domain.link(r2, d)
        domain.link(d, e)
        domain.link(d, f)
        handle.stations = {
            "R3": r3, "R1": r1, "R2": r2,
            "A": a, "B": b, "C": c,
            "D": d, "E": e, "F": f,
        }
        return handle

    def _build_domain_two(self) -> DomainHandle:
        domain = self._new_domain()
        rsmc = RSMC(
            self.sim,
            "rsmc2",
            self.network.allocator.allocate(),
            domain,
            home_agent_address=self.ha.address,
            mnld_address=self.mnld.address,
        )
        self.network.add(rsmc)
        self.network.connect(rsmc, self.internet, delay=0.005)
        rsmc.internet_neighbor = self.internet

        handle = DomainHandle(domain=domain, rsmc=rsmc)
        r4 = self._station(domain, "R4", Tier.MACRO, Point(6000, 800), radius=2500)
        g = self._station(domain, "G", Tier.MICRO, Point(6000, 0), radius=400)
        domain.link(rsmc, r4)
        domain.link(r4, g)
        handle.stations = {"R4": r4, "G": g}
        return handle

    # ------------------------------------------------------------------
    def add_pico(
        self,
        parent_name: str,
        name: str,
        center: Point,
        radius: float = 60.0,
        channels: Optional[int] = None,
        domain: str = "domain1",
    ) -> MultiTierBaseStation:
        """Attach an in-building pico cell under an existing station.

        Pico cells are the paper's third hierarchy level (Fig 2.1);
        mobility-wise they behave like micro cells (micro_table only).
        """
        handle: DomainHandle = getattr(self, domain)
        parent = handle[parent_name]
        station = self._station(
            handle.domain, name, Tier.PICO, center, radius=radius, channels=channels
        )
        handle.domain.link(parent, station)
        handle.stations[name] = station
        return station

    def add_mobile(
        self,
        name: str,
        bandwidth_demand: float = 0.0,
        airtime_key: Optional[int] = None,
    ) -> MultiTierMobileNode:
        mobile = MultiTierMobileNode(
            self.sim,
            name,
            home_address=self._home_allocator.allocate(),
            realm=self.realm,
            bandwidth_demand=bandwidth_demand,
            airtime_key=airtime_key,
        )
        self.mobiles.append(mobile)
        return mobile

    def protocol_hop_totals(self) -> dict[str, int]:
        """Per-protocol delivered-hop totals over every link of this
        world (wired, radio, both domains) — the T1 accounting input.

        Scoped to this world's simulator, so several worlds can coexist
        (sequentially or on a parallel execution backend) without
        cross-contaminating each other's totals.
        """
        return self.network.protocol_hop_totals()

    def all_radio_stations(self) -> list[MultiTierBaseStation]:
        stations = self.domain1.radio_stations()
        if self.domain2 is not None:
            stations.extend(self.domain2.radio_stations())
        return stations

    def add_controller(self, mobile, model, **kwargs) -> "MobilityController":
        kwargs.setdefault("trace", self.decision_trace)
        controller = MobilityController(
            self.sim, mobile, model, self.all_radio_stations(), **kwargs
        )
        self.controllers.append(controller)
        return controller


class MobilityController:
    """Drives one mobile: samples its mobility model, applies the
    three-factor decision and executes handoffs (§3.2)."""

    def __init__(
        self,
        sim: Simulator,
        mobile: MultiTierMobileNode,
        model,
        stations: list[MultiTierBaseStation],
        policy: Optional[TierSelectionPolicy] = None,
        sample_period: float = 0.5,
        hysteresis_db: float = 4.0,
        min_usable_dbm: float = -95.0,
        propagation: Optional[PropagationModel] = None,
        offload_queue_threshold: int = 3,
        trace: Optional[DecisionTrace] = None,
    ) -> None:
        self.sim = sim
        self.mobile = mobile
        self.model = model
        self.policy = policy if policy is not None else TierSelectionPolicy()
        #: Decision-trace log this controller records into; worlds pass
        #: their shared per-world trace, hand-built controllers get a
        #: private one.
        self.trace = trace if trace is not None else DecisionTrace()
        self.sample_period = sample_period
        self.hysteresis_db = hysteresis_db
        #: Contention mode only: downlink packets waiting on the
        #: serving cell's shared channel before a traffic-bearing
        #: mobile looks for a covering cell with spare airtime (the
        #: "resources of BS" factor made real; no effect in legacy
        #: mode, where cells have no shared channel).
        self.offload_queue_threshold = offload_queue_threshold
        self.stations = [bs for bs in stations if bs.cell is not None]
        self._cell_to_station = {bs.cell.name: bs for bs in self.stations}
        self.meter = SignalMeter(
            propagation if propagation is not None else PropagationModel(),
            [bs.cell for bs in self.stations],
            min_usable_dbm=min_usable_dbm,
        )
        self.blocked_attach_attempts = 0
        self.process = sim.process(self._run(), name=f"{mobile.name}-controller")

    # ------------------------------------------------------------------
    def _candidates(self, position: Point) -> list[Candidate]:
        survey = self.meter.survey(position)
        return [
            Candidate(station=self._cell_to_station[m.cell.name], rss_dbm=m.rss_dbm)
            for m in survey
            if self._cell_to_station[m.cell.name].cell.covers(position)
        ]

    def _factors(self) -> HandoffFactors:
        return HandoffFactors(
            speed=self.mobile.speed,
            bandwidth_demand=self.mobile.bandwidth_demand,
            serving_tier=self.mobile.serving_tier,
        )

    def _run(self):
        mobile = self.mobile
        while True:
            yield self.sim.timeout(self.sample_period)
            position = self.model.advance(self.sample_period)
            mobile.speed = self.model.speed
            candidates = self._candidates(position)
            if not candidates:
                continue
            factors = self._factors()
            ordered = self.policy.order_candidates(candidates, factors)

            if mobile.serving_bs is None:
                for index, candidate in enumerate(ordered):
                    if mobile.initial_attach(candidate.station):
                        break
                    self.blocked_attach_attempts += 1
                    self._note_fallback(
                        candidate,
                        ordered[index + 1:],
                        candidate.station.last_rejection_reason
                        or "attach-blocked",
                    )
                continue

            decision = self._decide(position, candidates, factors, ordered)
            if decision is None:
                continue
            self.trace.record(
                self.sim.now,
                mobile.name,
                "decision",
                decision.reasons,
                target=(
                    decision.target.station.name
                    if decision.target is not None
                    else ""
                ),
            )
            # Try candidates best-first until one admits us (the paper's
            # tier overflow: "turns to ask micro-tier for handoff").
            for index, candidate in enumerate(decision.targets):
                if candidate.station is mobile.serving_bs:
                    break
                accepted = yield from mobile.perform_handoff(candidate.station)
                if accepted:
                    break
                self._note_fallback(
                    candidate,
                    decision.targets[index + 1:],
                    mobile.last_handoff_failure or "handoff-rejected",
                )

    def _note_fallback(
        self,
        failed: Candidate,
        remaining: list[Candidate],
        reason: str,
    ) -> FallbackDecision:
        """Record what happens after one refused or timed-out attempt.

        Mirrors the try-next-candidate loop exactly: the next target is
        ``remaining[0]`` (the serving station there means the loop will
        stop), a different tier means the §3.2 "turn to ask" overflow
        (``ESCALATE_TIER``), the same tier a plain retry.  Returns the
        :class:`FallbackDecision` it recorded.
        """
        serving = self.mobile.serving_bs
        nxt = remaining[0] if remaining else None
        if nxt is None or nxt.station is serving:
            action = NextAction.STOP
            next_tier = None
            target = ""
        else:
            if nxt.tier is not failed.tier:
                action = NextAction.ESCALATE_TIER
            else:
                action = NextAction.RETRY_SAME_TIER
            next_tier = nxt.tier
            target = nxt.station.name
        self.trace.record(
            self.sim.now,
            self.mobile.name,
            "fallback",
            [reason],
            action=action.value,
            target=target,
        )
        return FallbackDecision(action=action, next_tier=next_tier, reason=reason)

    def _channel_congested(self, station: MultiTierBaseStation) -> bool:
        """True when ``station``'s shared downlink queue is at or above
        the offload threshold; always False in legacy mode (no channel).
        """
        from repro.radio.channel import DOWNLINK

        channel = station.shared_channel
        return (
            channel is not None
            and channel.queued[DOWNLINK] >= self.offload_queue_threshold
        )

    def _airtime_relief(
        self, ordered: list[Candidate], factors: HandoffFactors
    ) -> Optional[list[Candidate]]:
        """Offload targets when the serving shared channel is congested.

        Returns the policy-ordered covering candidates whose shared
        channels have spare airtime (downlink queue below the offload
        threshold), or ``None`` when the serving cell has no shared
        channel (legacy mode), the mobile carries no traffic, or the
        serving channel is not congested.  Deterministic: reads only
        the channels' current queue lengths.
        """
        serving = self.mobile.serving_bs
        if serving.shared_channel is None or factors.bandwidth_demand <= 0:
            return None
        if not self._channel_congested(serving):
            return None
        relief = [
            c
            for c in ordered
            if c.station is not serving
            and c.station.shared_channel is not None
            and not self._channel_congested(c.station)
        ]
        return relief or None

    def _decide(
        self,
        position: Point,
        candidates: list[Candidate],
        factors: HandoffFactors,
        ordered: list[Candidate],
    ) -> Optional[TierDecision]:
        """None = stay; otherwise an explainable decision whose
        ``targets`` are the ordered candidates to try and whose
        ``reasons`` name the branch that fired (reason vocabulary:
        ``docs/POLICY.md``)."""
        mobile = self.mobile
        serving = mobile.serving_bs
        serving_candidate = next(
            (c for c in candidates if c.station is serving), None
        )

        def decision(targets: list[Candidate], reasons: list[str]) -> TierDecision:
            return TierDecision(targets=targets, reasons=reasons, factors=factors)

        # Factor: signal — out of the serving cell entirely, must move.
        if serving_candidate is None or not serving.cell.covers(position):
            return decision(
                [c for c in ordered if c.station is not serving],
                ["out-of-coverage"] + self.policy.preference_reasons(factors),
            )

        # Factor: resources — in contention mode a congested shared
        # channel sheds traffic-bearing mobiles toward covering cells
        # with spare airtime (the paper's pico-overlay absorption:
        # "system will switch MN" when the serving tier cannot carry
        # its bandwidth).  Never fires in legacy mode (no channel).
        relief = self._airtime_relief(ordered, factors)
        if relief is not None:
            return decision(
                relief, ["airtime-relief", "serving-channel-congested"]
            )

        if not self.policy.tier_agnostic:
            # Factors: speed / bandwidth demand — switch to a tier the
            # policy ranks strictly better than the serving one.  In
            # contention mode a congested target is never "better":
            # without this filter the preference branch would bounce a
            # mobile straight back into the congested cell that
            # _airtime_relief just moved it off (handoff ping-pong).
            preference = self.policy.tier_preference(factors)
            serving_rank = preference.index(serving.tier)
            better_tier = [
                c
                for c in ordered
                if preference.index(c.tier) < serving_rank
                and not self._channel_congested(c.station)
            ]
            if better_tier:
                best_rank = min(preference.index(c.tier) for c in better_tier)
                return decision(
                    [
                        c
                        for c in better_tier
                        if preference.index(c.tier) == best_rank
                    ],
                    ["better-tier"] + self.policy.preference_reasons(factors),
                )
            rivals = [
                c
                for c in candidates
                if c.tier is serving.tier and c.station is not serving
            ]
        else:
            rivals = [c for c in candidates if c.station is not serving]

        # Factor: signal — a rival beats us by the hysteresis margin
        # (congested rivals excluded in contention mode, same reason).
        rivals = [c for c in rivals if not self._channel_congested(c.station)]
        if rivals:
            best = max(rivals, key=lambda c: c.rss_dbm)
            if best.rss_dbm >= serving_candidate.rss_dbm + self.hysteresis_db:
                return decision(
                    [best]
                    + [
                        c
                        for c in ordered
                        if c.station not in (best.station, serving)
                    ],
                    ["signal-hysteresis"],
                )
        return None
