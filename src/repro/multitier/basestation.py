"""Multi-tier base stations (§3).

A base station belongs to the micro or macro tier, keeps the paper's
cell tables (micro_table, and macro_table for macro cells), admits
mobiles through a guarded channel pool (the "resources of BS" handoff
factor), and routes data packets by walking the location records:
down when a record is known, up toward the RSMC otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.multitier import messages
from repro.multitier.tables import TablePair
from repro.net.addressing import IPAddress
from repro.net.link import connect
from repro.net.node import Node
from repro.net.packet import Packet
from repro.radio.cells import Cell, Tier
from repro.radio.channel import airtime_key
from repro.sim.resources import GuardedChannelPool, Request

if TYPE_CHECKING:  # pragma: no cover
    from repro.multitier.domain import MultiTierDomain
    from repro.net.link import Link
    from repro.radio.channel import SharedChannel
    from repro.sim.kernel import Simulator


@dataclass
class Attachment:
    """One mobile currently holding a channel on this base station."""

    node: Node
    channel: Optional[Request]
    since: float


class MultiTierBaseStation(Node):
    """A micro- or macro-tier base station with cell tables."""

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        address,
        domain: "MultiTierDomain",
        tier: Tier,
        cell: Optional[Cell] = None,
        channels: Optional[int] = None,
        shared_channel: Optional["SharedChannel"] = None,
    ) -> None:
        super().__init__(sim, name, address)
        if tier not in (Tier.PICO, Tier.MICRO, Tier.MACRO):
            raise ValueError(f"unknown tier {tier!r}")
        self.domain = domain
        self.tier = tier
        self.cell = cell
        #: The cell's shared air interface; ``None`` = legacy mode
        #: (every radio link gets its own unconstrained transmitter).
        self.shared_channel = shared_channel
        # Pico cells are mobility-managed exactly like micro cells
        # (§4: "The focused facilities of mobility management and
        # handoff strategy are separated into micro-cell and macro-cell")
        # — they keep a micro_table only.
        self.tables = TablePair(
            sim,
            record_lifetime=domain.record_lifetime,
            has_macro_table=(tier is Tier.MACRO),
        )
        capacity = channels or (cell.channels if cell else 32)
        guard = min(domain.guard_channels, max(capacity - 1, 0))
        self.channels = GuardedChannelPool(sim, capacity=capacity, guard=guard)
        self.parent: Optional["MultiTierBaseStation"] = None
        self.children: list["MultiTierBaseStation"] = []
        self.attached: dict[IPAddress, Attachment] = {}
        #: Channel held between handoff-accept and update-location.
        self._pending_channels: dict[IPAddress, Request] = {}

        self.location_messages_seen = 0
        self.handoff_requests = 0
        self.handoffs_accepted = 0
        self.handoffs_rejected = 0
        self.new_calls_blocked = 0
        #: Admissions refused by the shared channel's demand budget
        #: (a subset of handoffs_rejected / new_calls_blocked).
        self.air_admission_rejects = 0
        #: Cause token of the most recent refusal this station issued
        #: (``air-budget-exceeded`` or ``channel-pool-full``) — read by
        #: the mobility controller to explain attach fallbacks.
        self.last_rejection_reason = ""
        self.dropped_no_record = 0
        self.dropped_stale_radio = 0
        self.delivered_to_mobiles = 0
        self.bounced_up = 0
        self.lookup_probes = 0
        domain.add_station(self)

    # ------------------------------------------------------------------
    @property
    def is_root(self) -> bool:
        return self.parent is None

    def radio_connect(self, mobile: Node) -> None:
        """Create the radio link pair (signalling-only until admitted).

        When this cell has a :class:`~repro.radio.channel.SharedChannel`
        the link pair is gated on it and the mobile's airtime claim is
        attached here — during make-before-break handoff the mobile
        briefly holds claims on both the old and the new cell.
        """
        if self.link_to(mobile) is None:
            connect(
                self.sim,
                self,
                mobile,
                bandwidth=self.domain.wireless_bandwidth,
                delay=self.domain.wireless_delay,
                shared_channel=self.shared_channel,
                channel_key=airtime_key(mobile),
            )
            if self.shared_channel is not None:
                self.shared_channel.attach(
                    airtime_key(mobile),
                    demand=getattr(mobile, "bandwidth_demand", 0.0),
                )

    def radio_disconnect(self, mobile: Node) -> None:
        """Tear the radio link down, migrating the airtime claim away.

        Detaching the claim cancels any airtime the departed mobile
        still had queued on this cell's shared channel (counted as
        air-interface losses); a no-op in legacy mode.
        """
        if self.shared_channel is not None and self.link_to(mobile) is not None:
            self.shared_channel.detach(airtime_key(mobile))
        self.detach_link(mobile)
        mobile.detach_link(self)

    # ------------------------------------------------------------------
    # Admission (the "resources of BS" factor)
    # ------------------------------------------------------------------
    def admit_new_call(self, mobile: Node) -> bool:
        """Initial attachment: may not take guard channels.

        Checks both resource pools — the shared channel's demand
        budget first (when admission control is on), then the guarded
        channel pool — and records the cause of a refusal in
        :attr:`last_rejection_reason`.
        """
        if self.shared_channel is not None and not self.shared_channel.admit(
            airtime_key(mobile), getattr(mobile, "bandwidth_demand", 0.0)
        ):
            self.last_rejection_reason = "air-budget-exceeded"
            self.air_admission_rejects += 1
            self.new_calls_blocked += 1
            return False
        channel = self.channels.admit_new_call()
        if channel is None:
            self.last_rejection_reason = "channel-pool-full"
            self.new_calls_blocked += 1
            return False
        self.radio_connect(mobile)
        self.attached[mobile.address] = Attachment(mobile, channel, self.sim.now)
        return True

    def detach_mobile(self, mobile: Node) -> None:
        attachment = self.attached.pop(mobile.address, None)
        if attachment is not None and attachment.channel is not None:
            self.channels.release(attachment.channel)
        pending = self._pending_channels.pop(mobile.address, None)
        if pending is not None:
            self.channels.release(pending)
        self.radio_disconnect(mobile)

    @property
    def free_channels(self) -> int:
        return self.channels.free

    # ------------------------------------------------------------------
    # Packet handling
    # ------------------------------------------------------------------
    def receive(self, packet: Packet, link: Optional["Link"] = None) -> None:
        self.received_count += 1
        from_node = link.head if link is not None else None
        protocol = packet.protocol

        if protocol in (messages.LOCATION, messages.UPDATE_LOCATION):
            self._handle_location(packet, from_node)
            return
        if protocol == messages.DELETE_LOCATION:
            self._handle_delete(packet, from_node)
            return
        if protocol == messages.HANDOFF_REQUEST:
            self._handle_handoff_request(packet, from_node)
            return
        if protocol == messages.HANDOFF_BEGIN:
            self._forward_up(packet)
            return
        if self.owns(packet.dst):
            self.deliver_local(packet, link)
            return
        if self.domain.is_mobile(packet.dst):
            self._route_mobile_packet(packet, from_node)
            return
        # Plain uplink traffic toward the Internet.
        self._forward_up(packet)

    def _forward_up(self, packet: Packet) -> None:
        if self.parent is not None:
            self.send_via(self.parent, packet)
        # The RSMC overrides to bridge to the Internet / consume control.

    # ------------------------------------------------------------------
    # Location management (§3.1)
    # ------------------------------------------------------------------
    def _handle_location(self, packet: Packet, from_node: Optional[Node]) -> None:
        payload = packet.payload
        self.location_messages_seen += 1
        mobile = payload.mobile_address
        serving_macro = payload.serving_tier is Tier.MACRO
        came_from_mobile = from_node is not None and from_node.owns(mobile)
        via = None if came_from_mobile else from_node
        self.tables.store(mobile, via, serving_tier_is_macro=serving_macro)

        if packet.protocol == messages.UPDATE_LOCATION:
            self._finalize_handoff_attachment(mobile)
        self._forward_up(packet)

    def _finalize_handoff_attachment(self, mobile_address: IPAddress) -> None:
        """Promote a pending handoff channel to a full attachment."""
        pending = self._pending_channels.pop(mobile_address, None)
        if pending is None:
            return
        mobile = self._linked_mobile(mobile_address)
        if mobile is None:
            self.channels.release(pending)
            return
        self.attached[mobile_address] = Attachment(mobile, pending, self.sim.now)

    def _linked_mobile(self, mobile_address: IPAddress) -> Optional[Node]:
        for neighbor in self.links:
            if neighbor.owns(mobile_address):
                return neighbor
        return None

    def _handle_delete(self, packet: Packet, from_node: Optional[Node]) -> None:
        """Delete Location Message: erase the stale branch (§3.2).

        The record is deleted only while it still points toward where
        the delete came from (the stale branch / the departed radio);
        if an Update Location Message already repointed it, propagation
        stops — that node is the crossover.
        """
        payload = packet.payload
        mobile = payload.mobile_address
        record = self.tables.micro_table.peek(mobile)
        if record is None and self.tables.macro_table is not None:
            record = self.tables.macro_table.peek(mobile)
        if record is None:
            return
        came_from_mobile = from_node is not None and from_node.owns(mobile)
        if came_from_mobile:
            # We are the old serving BS: always erase and release radio.
            self.tables.delete(mobile)
            mobile_node = self.attached.get(mobile)
            if mobile_node is not None:
                self.detach_mobile(mobile_node.node)
            self._forward_up(packet)
            return
        if record.via is from_node:
            self.tables.delete(mobile)
            self._forward_up(packet)
        # else: record points elsewhere (crossover reached) — stop.

    # ------------------------------------------------------------------
    # Handoff admission (§3.2)
    # ------------------------------------------------------------------
    def _handle_handoff_request(self, packet: Packet, from_node: Optional[Node]) -> None:
        request = packet.payload
        self.handoff_requests += 1
        mobile_address = request.mobile_address
        mobile = self._linked_mobile(mobile_address)
        # Resources factor, checked in order: the shared channel's
        # demand budget (when admission control is on), then the
        # guarded channel pool.
        air_ok = (
            self.shared_channel is None
            or mobile is None
            or self.shared_channel.admit(
                airtime_key(mobile), request.bandwidth_demand
            )
        )
        channel = self.channels.admit_handoff() if air_ok else None
        accepted = channel is not None
        reason = ""
        if accepted:
            # Hold the channel until the Update Location Message lands.
            previous = self._pending_channels.pop(mobile_address, None)
            if previous is not None:
                self.channels.release(previous)
            self._pending_channels[mobile_address] = channel
            self.handoffs_accepted += 1
            self._notify_handoff_begin(request)
        else:
            reason = "channel-pool-full" if air_ok else "air-budget-exceeded"
            if not air_ok:
                self.air_admission_rejects += 1
            self.last_rejection_reason = reason
            self.handoffs_rejected += 1

        answer = messages.HandoffAnswer(
            mobile_address=mobile_address,
            handoff_id=request.handoff_id,
            accepted=accepted,
            reason=reason,
        )
        if mobile is not None:
            self.send_via(
                mobile,
                Packet(
                    src=self.address,
                    dst=mobile_address,
                    size=messages.HANDOFF_CONTROL_BYTES,
                    protocol=messages.HANDOFF_ACCEPT
                    if accepted
                    else messages.HANDOFF_REJECT,
                    payload=answer,
                    created_at=packet.created_at,
                ),
            )

    def _notify_handoff_begin(self, request) -> None:
        """Tell the RSMC to start buffering for this mobile."""
        if self.parent is None:
            # We are the root: handle locally (RSMC overrides).
            return
        begin = messages.HandoffBegin(
            mobile_address=request.mobile_address, handoff_id=request.handoff_id
        )
        self.send_via(
            self.parent,
            Packet(
                src=self.address,
                dst=self._root_address(),
                size=messages.HANDOFF_CONTROL_BYTES,
                protocol=messages.HANDOFF_BEGIN,
                payload=begin,
                created_at=self.sim.now,
            ),
        )

    def _root_address(self) -> IPAddress:
        node: MultiTierBaseStation = self
        while node.parent is not None:
            node = node.parent
        return node.address

    # ------------------------------------------------------------------
    # Location tracking (§3.1: "When system needs to track the location
    # of MNs, BSS just search its cell table")
    # ------------------------------------------------------------------
    def locate(self, mobile) -> tuple[Optional["MultiTierBaseStation"], int]:
        """Walk the downward pointers to the serving base station.

        Returns ``(serving_bs, table_probes)``; ``(None, probes)`` when
        the trail is cold.  Each hop costs one :meth:`TablePair.lookup`
        (micro_table first, then macro_table — the paper's order).
        """
        probes = 0
        node: MultiTierBaseStation = self
        visited: set[int] = set()
        while True:
            if id(node) in visited:
                return None, probes  # corrupt trail; refuse to loop
            visited.add(id(node))
            record, cost = node.tables.lookup(mobile)
            probes += cost
            if record is None:
                return None, probes
            if record.via is None:
                return node, probes
            if not isinstance(record.via, MultiTierBaseStation):
                return None, probes
            node = record.via

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def _route_mobile_packet(self, packet: Packet, from_node: Optional[Node]) -> None:
        """Forward a packet destined to a mobile.

        Normal case: follow the location record downward.  If the
        record is stale (departed radio) or points back at the sender
        (the stale branch of an in-progress handoff), the packet is
        *bounced upward* toward the RSMC, which re-routes or buffers
        it — the paper's resource switching.  Bouncing is loop-free: a
        packet never goes back down the link it arrived on.
        """
        destination = packet.dst
        attachment = self.attached.get(destination)
        if attachment is not None:
            if attachment.node in self.links:
                self.delivered_to_mobiles += 1
                self.send_via(attachment.node, packet)
            else:
                self.dropped_stale_radio += 1
            return

        record, probes = self.tables.lookup(destination)
        self.lookup_probes += probes
        if record is not None:
            down = record.via
            usable = (
                down is not None and down in self.links and down is not from_node
            )
            if usable:
                self.send_via(down, packet)
                return
        # No usable downward pointer: drain upward (resource switching)
        # unless this copy is a paging flood that found nobody.
        if packet.paged:
            self.dropped_no_record += 1
            return
        if self.parent is not None:
            if packet.ttl <= 1:
                self.dropped_no_record += 1
                return
            packet.ttl -= 1
            self.bounced_up += 1
            self.send_via(self.parent, packet)
            return
        self.dropped_no_record += 1
