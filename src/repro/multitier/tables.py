"""The paper's cell tables (§3.1).

Every micro-cell base station keeps a ``micro_table``; every macro-cell
base station keeps a ``macro_table`` *and* a ``micro_table`` covering
the micro cells in its region.  A record ``(mn, via)`` is a downward
pointer: the child base station (or the radio interface, for the
serving cell itself) through which the mobile is reachable.  Records
carry a time limit and are erased if no Location Message renews them.

Lookup order is the paper's: *"Macro-cell will search its micro_table
first, if not find, its macro_table will be searched."*
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.net.addressing import IPAddress

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node
    from repro.sim.kernel import Simulator

#: Sentinel ``via`` meaning "attached directly to this base station".
DIRECT = None


@dataclass
class LocationRecord:
    """One ``(mn, via)`` downward pointer with its expiry time."""

    mobile: IPAddress
    via: Optional["Node"]
    expires: float
    stored_at: float

    @property
    def is_direct(self) -> bool:
        return self.via is None


class CellTable:
    """A micro_table or macro_table with soft-state records."""

    def __init__(self, sim: "Simulator", name: str, record_lifetime: float) -> None:
        if record_lifetime <= 0:
            raise ValueError(f"record_lifetime must be positive, got {record_lifetime}")
        self.sim = sim
        self.name = name
        self.record_lifetime = record_lifetime
        self._records: dict[IPAddress, LocationRecord] = {}
        self.stores = 0
        self.hits = 0
        self.misses = 0
        self.deletes = 0
        self.expirations = 0

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, mobile) -> bool:
        return self.get(mobile) is not None

    def store(self, mobile, via: Optional["Node"]) -> LocationRecord:
        """Insert or refresh the record for ``mobile``."""
        mobile = IPAddress(mobile)
        now = self.sim.now
        record = LocationRecord(
            mobile=mobile,
            via=via,
            expires=now + self.record_lifetime,
            stored_at=now,
        )
        self._records[mobile] = record
        self.stores += 1
        return record

    def get(self, mobile) -> Optional[LocationRecord]:
        """The live record for ``mobile``, purging it if expired."""
        mobile = IPAddress(mobile)
        record = self._records.get(mobile)
        if record is None:
            self.misses += 1
            return None
        if record.expires <= self.sim.now:
            del self._records[mobile]
            self.expirations += 1
            self.misses += 1
            return None
        self.hits += 1
        return record

    def peek(self, mobile) -> Optional[LocationRecord]:
        """Like :meth:`get` but without touching hit/miss counters."""
        mobile = IPAddress(mobile)
        record = self._records.get(mobile)
        if record is None or record.expires <= self.sim.now:
            return None
        return record

    def delete(self, mobile) -> bool:
        """Explicit erase (Delete Location Message, §3.2)."""
        mobile = IPAddress(mobile)
        if mobile in self._records:
            del self._records[mobile]
            self.deletes += 1
            return True
        return False

    def purge_expired(self) -> int:
        now = self.sim.now
        stale = [mn for mn, record in self._records.items() if record.expires <= now]
        for mn in stale:
            del self._records[mn]
        self.expirations += len(stale)
        return len(stale)

    def mobiles(self) -> list[IPAddress]:
        return [
            mn
            for mn, record in self._records.items()
            if record.expires > self.sim.now
        ]


class TablePair:
    """The paper's per-BS table set with its two-step lookup.

    Micro-cell base stations have only a ``micro_table``; macro-cell
    base stations have both.  ``lookup`` returns the record and counts
    the number of tables probed (the paper's lookup-cost metric).
    """

    def __init__(
        self,
        sim: "Simulator",
        record_lifetime: float,
        has_macro_table: bool,
    ) -> None:
        self.micro_table = CellTable(sim, "micro", record_lifetime)
        self.macro_table = (
            CellTable(sim, "macro", record_lifetime) if has_macro_table else None
        )

    def store(self, mobile, via: Optional["Node"], serving_tier_is_macro: bool) -> None:
        """File the record in the table matching the MN's serving tier."""
        if serving_tier_is_macro and self.macro_table is not None:
            self.macro_table.store(mobile, via)
            # A fresher macro record invalidates any stale micro record.
            self.micro_table.delete(mobile)
        else:
            self.micro_table.store(mobile, via)
            if self.macro_table is not None:
                self.macro_table.delete(mobile)

    def lookup(self, mobile) -> tuple[Optional[LocationRecord], int]:
        """(record, tables probed) — micro_table first, then macro_table."""
        record = self.micro_table.get(mobile)
        if record is not None:
            return record, 1
        if self.macro_table is None:
            return None, 1
        record = self.macro_table.get(mobile)
        return record, 2

    def delete(self, mobile) -> bool:
        deleted = self.micro_table.delete(mobile)
        if self.macro_table is not None:
            deleted = self.macro_table.delete(mobile) or deleted
        return deleted

    def total_records(self) -> int:
        total = len(self.micro_table)
        if self.macro_table is not None:
            total += len(self.macro_table)
        return total
