"""The Mobile Node Location Database (Fig 4.1).

A wired service storing which RSMC currently serves each mobile.
RSMCs push updates on arrival; the home network (or any node) may
query it when no fresher binding exists.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.multitier import messages
from repro.net.addressing import IPAddress
from repro.net.node import Node
from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.link import Link
    from repro.sim.kernel import Simulator


class MNLD(Node):
    """Mobile Node Location Database server."""

    def __init__(self, sim: "Simulator", name: str, address) -> None:
        super().__init__(sim, name, address)
        self.records: dict[IPAddress, IPAddress] = {}
        self.updates_received = 0
        self.queries_received = 0
        self.gateway_router: Optional[Node] = None
        self.on_protocol(messages.MNLD_UPDATE, self._handle_update)
        self.on_protocol(messages.MNLD_QUERY, self._handle_query)

    def _handle_update(self, packet: Packet, link: Optional["Link"]) -> None:
        update = packet.payload
        if not isinstance(update, messages.MNLDUpdate):
            return
        self.records[update.mobile_address] = update.rsmc_address
        self.updates_received += 1

    def _handle_query(self, packet: Packet, link: Optional["Link"]) -> None:
        query = packet.payload
        if not isinstance(query, messages.MNLDQuery):
            return
        self.queries_received += 1
        reply = messages.MNLDReply(
            mobile_address=query.mobile_address,
            rsmc_address=self.records.get(query.mobile_address),
        )
        out = Packet(
            src=self.address,
            dst=query.reply_to,
            size=messages.MNLD_BYTES,
            protocol=messages.MNLD_REPLY,
            payload=reply,
            created_at=self.sim.now,
        )
        target = self.gateway_router
        if target is None and self.links:
            target = next(iter(self.links))
        if target is not None:
            self.send_via(target, out)

    def lookup(self, mobile) -> Optional[IPAddress]:
        return self.records.get(IPAddress(mobile))
