"""Experiment harness: scenario builders, baselines and one function
per reproduced figure/table."""

from repro.experiments.ablations import (
    ablation_buffer_size,
    ablation_record_lifetime,
    experiment_e9,
    experiment_t1,
    experiment_t2,
)
from repro.experiments.baselines import (
    SCHEMES,
    build_cip_world,
    run_cip_hard,
    run_cip_semisoft,
    run_mobileip,
    run_multitier_rsmc,
)
from repro.experiments.elastic import experiment_e8b
from repro.experiments.load import experiment_e11
from repro.experiments.figures import (
    experiment_e1,
    experiment_e2,
    experiment_e3,
    experiment_e4,
    experiment_e5_e6,
    experiment_e7,
    experiment_e7_blocking,
    experiment_e8,
    experiment_e10,
)
from repro.experiments.runner import (
    ExperimentResult,
    Replication,
    replicate,
    sweep,
)

ALL_EXPERIMENTS = {
    "E1": experiment_e1,
    "E2": experiment_e2,
    "E3": experiment_e3,
    "E4": experiment_e4,
    "E5/E6": experiment_e5_e6,
    "E7": experiment_e7,
    "E7b": experiment_e7_blocking,
    "E8": experiment_e8,
    "E8b": experiment_e8b,
    "E9": experiment_e9,
    "E10": experiment_e10,
    "E11": experiment_e11,
    "T1": experiment_t1,
    "T2": experiment_t2,
    "AB1": ablation_buffer_size,
    "AB2": ablation_record_lifetime,
}

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "Replication",
    "SCHEMES",
    "ablation_buffer_size",
    "ablation_record_lifetime",
    "build_cip_world",
    "experiment_e1",
    "experiment_e2",
    "experiment_e3",
    "experiment_e4",
    "experiment_e5_e6",
    "experiment_e7",
    "experiment_e7_blocking",
    "experiment_e8",
    "experiment_e8b",
    "experiment_e9",
    "experiment_e10",
    "experiment_e11",
    "experiment_t1",
    "experiment_t2",
    "replicate",
    "run_cip_hard",
    "run_cip_semisoft",
    "run_mobileip",
    "run_multitier_rsmc",
    "sweep",
]
