"""Experiment harness: scenario builders, baselines and one function
per reproduced figure/table.

Execution engine
----------------
Every experiment routes its per-(seed, sweep-point) scenario jobs
through a pluggable :class:`~repro.experiments.exec.ExecutionBackend`
(see :mod:`repro.experiments.exec`):

* :class:`~repro.experiments.exec.SerialBackend` (the default) runs
  jobs in order in-process and is bit-identical to the historic serial
  code path;
* :class:`~repro.experiments.exec.ProcessPoolBackend` fans the same
  jobs out over forked worker processes — ``repro run E8 --jobs 8`` on
  the CLI, or ``experiment_e8(backend=ProcessPoolBackend(8))`` from
  code.

**Determinism guarantee:** a scenario derives all randomness from its
seed via :class:`repro.sim.rng.RandomStreams`, builds its own
:class:`~repro.sim.kernel.Simulator` (whose link registry scopes
whole-network accounting to that world), and returns plain floats.
Backends only decide *where* jobs run; results are aggregated in job
order, so every backend — and every job count — produces identical
metrics for the same seed list.
"""

from repro.experiments.ablations import (
    ablation_buffer_size,
    ablation_record_lifetime,
    experiment_e9,
    experiment_t1,
    experiment_t2,
)
from repro.experiments.baselines import (
    SCHEMES,
    build_cip_world,
    run_cip_hard,
    run_cip_semisoft,
    run_mobileip,
    run_multitier_rsmc,
    run_scheme,
)
from repro.experiments.exec import (
    ExecutionBackend,
    ProcessPoolBackend,
    RemoteTraceback,
    SerialBackend,
    backend_for_jobs,
    get_default_backend,
    set_default_backend,
)
from repro.experiments.elastic import experiment_e8b
from repro.experiments.load import experiment_e11
from repro.experiments.figures import (
    save_experiment_figure,
    experiment_e1,
    experiment_e2,
    experiment_e3,
    experiment_e4,
    experiment_e5_e6,
    experiment_e7,
    experiment_e7_blocking,
    experiment_e8,
    experiment_e10,
)
from repro.experiments.runner import (
    ExperimentResult,
    Replication,
    aggregate,
    build_sweep_result,
    replicate,
    replicate_grid,
    sweep,
)

ALL_EXPERIMENTS = {
    "E1": experiment_e1,
    "E2": experiment_e2,
    "E3": experiment_e3,
    "E4": experiment_e4,
    "E5/E6": experiment_e5_e6,
    "E7": experiment_e7,
    "E7b": experiment_e7_blocking,
    "E8": experiment_e8,
    "E8b": experiment_e8b,
    "E9": experiment_e9,
    "E10": experiment_e10,
    "E11": experiment_e11,
    "T1": experiment_t1,
    "T2": experiment_t2,
    "AB1": ablation_buffer_size,
    "AB2": ablation_record_lifetime,
}

__all__ = [
    "ALL_EXPERIMENTS",
    "ExecutionBackend",
    "ExperimentResult",
    "ProcessPoolBackend",
    "RemoteTraceback",
    "Replication",
    "SCHEMES",
    "SerialBackend",
    "ablation_buffer_size",
    "ablation_record_lifetime",
    "aggregate",
    "backend_for_jobs",
    "build_cip_world",
    "build_sweep_result",
    "experiment_e1",
    "experiment_e2",
    "experiment_e3",
    "experiment_e4",
    "experiment_e5_e6",
    "experiment_e7",
    "experiment_e7_blocking",
    "experiment_e8",
    "experiment_e8b",
    "experiment_e9",
    "experiment_e10",
    "experiment_e11",
    "experiment_t1",
    "experiment_t2",
    "get_default_backend",
    "replicate",
    "replicate_grid",
    "run_cip_hard",
    "run_cip_semisoft",
    "run_mobileip",
    "run_multitier_rsmc",
    "run_scheme",
    "save_experiment_figure",
    "set_default_backend",
    "sweep",
]
