"""E9 (tier-selection policy), T1 (signalling accounting), T2 (scale)
and the design-choice ablations listed in DESIGN.md §6."""

from __future__ import annotations

from functools import partial
from typing import Iterable, Optional

from repro.experiments.exec import ExecutionBackend, get_default_backend
from repro.experiments.runner import ExperimentResult, replicate_grid, sweep
from repro.metrics.tables import diff_counts, format_table
from repro.mobility import Highway, RandomWaypoint
from repro.multitier.architecture import WORLD_BOUNDS, MultiTierWorld
from repro.multitier.policy import (
    AlwaysMicroPolicy,
    AlwaysStrongestPolicy,
    TierSelectionPolicy,
)
from repro.radio.cells import Tier
from repro.sim.rng import RandomStreams
from repro.radio.geometry import Point, Rectangle
from repro.traffic import CBRSource, FlowSink

DEFAULT_SEEDS = (1, 2, 3)


# ----------------------------------------------------------------------
# E9 — speed-aware tier selection vs baselines
# ----------------------------------------------------------------------
def experiment_e9(
    seeds: Iterable[int] = DEFAULT_SEEDS,
    duration: float = 120.0,
    vehicles: int = 3,
    pedestrians: int = 3,
    backend: Optional[ExecutionBackend] = None,
) -> ExperimentResult:
    """S3.2 speed factor: tier-selection policy ablation (vehicles vs pedestrians)."""
    policies = {
        "speed-aware (paper)": TierSelectionPolicy,
        "always-strongest": AlwaysStrongestPolicy,
        "always-micro": AlwaysMicroPolicy,
    }

    def make_policy_scenario(policy_cls):
        def scenario(seed: int) -> dict[str, float]:
            # One named stream per mobile: adding a vehicle (or a draw in
            # one model) cannot perturb any other mobile's trajectory.
            streams = RandomStreams(seed)
            world = MultiTierWorld()
            sim = world.sim
            vehicle_nodes = []
            for index in range(vehicles):
                mn = world.add_mobile(f"veh{index}")
                start_x = streams.uniform(f"veh{index}.start", -4000, -1000)
                model = Highway(
                    Point(start_x, 0.0),
                    WORLD_BOUNDS,
                    streams.stream(f"veh{index}.mobility"),
                    speed=25.0,
                    wrap=False,
                )
                world.add_controller(mn, model, policy=policy_cls())
                vehicle_nodes.append(mn)
            pedestrian_nodes = []
            walk_area = Rectangle(-2500, -300, -1500, 300)
            for index in range(pedestrians):
                mn = world.add_mobile(f"ped{index}")
                model = RandomWaypoint(
                    Point(-2000, 0),
                    walk_area,
                    streams.stream(f"ped{index}.mobility"),
                    speed_range=(0.8, 1.8),
                )
                world.add_controller(mn, model, policy=policy_cls())
                pedestrian_nodes.append(mn)

            sim.run(until=duration)
            minutes = duration / 60.0
            vehicle_handoffs = sum(m.handoffs_completed for m in vehicle_nodes)
            pedestrian_handoffs = sum(m.handoffs_completed for m in pedestrian_nodes)
            on_macro = sum(
                1 for m in vehicle_nodes if m.serving_tier is Tier.MACRO
            )
            return {
                "vehicle_handoffs_per_min": vehicle_handoffs / vehicles / minutes,
                "pedestrian_handoffs_per_min": pedestrian_handoffs
                / max(pedestrians, 1)
                / minutes,
                "vehicles_on_macro": float(on_macro),
                "rejections": float(
                    sum(m.handoffs_rejected for m in vehicle_nodes + pedestrian_nodes)
                ),
            }

        return scenario

    replications = replicate_grid(
        [make_policy_scenario(policy_cls) for policy_cls in policies.values()],
        seeds,
        backend=backend,
    )
    rows = []
    for label, replication in zip(policies, replications):
        rows.append(
            [
                label,
                replication.mean("vehicle_handoffs_per_min"),
                replication.mean("pedestrian_handoffs_per_min"),
                replication.mean("vehicles_on_macro"),
                replication.mean("rejections"),
            ]
        )
    text = format_table(
        [
            "policy",
            "veh_handoffs/min",
            "ped_handoffs/min",
            "vehicles_on_macro",
            "rejections",
        ],
        rows,
        title="E9 (§3.2): tier-selection policy ablation "
        f"({vehicles} vehicles @25 m/s, {pedestrians} pedestrians, {duration:.0f}s)",
    )
    return ExperimentResult(
        experiment_id="E9",
        title="Tier-selection policy ablation",
        x_label="policy",
        x_values=list(policies),
        series={
            "veh_handoffs_per_min": [row[1] for row in rows],
            "ped_handoffs_per_min": [row[2] for row in rows],
            "vehicles_on_macro": [row[3] for row in rows],
        },
        text=text,
        notes="The paper's speed factor parks vehicles on the macro tier, "
        "cutting their handoff rate versus signal-chasing policies, while "
        "pedestrians stay on the high-bandwidth micro tier either way.",
    )


# ----------------------------------------------------------------------
# T1 — signalling message-hops per handoff type
# ----------------------------------------------------------------------
_T1_PROTOCOLS = [
    "mt-update-location",
    "mt-delete-location",
    "mt-handoff-request",
    "mt-handoff-accept",
    "mt-handoff-begin",
    "mip-reg-request",
    "mnld-update",
    "mt-binding-notify",
]


def _t1_case(start: str, target: str, cross_domain: bool) -> dict[str, int]:
    """Hop-count delta around one handoff, in an isolated world."""
    world = MultiTierWorld(second_domain=True)
    sim = world.sim
    mn = world.add_mobile("mn")
    start_bs = world.domain1[start]
    target_bs = world.domain2[target] if cross_domain else world.domain1[target]
    assert mn.initial_attach(start_bs)
    sim.run(until=1.0)
    # Freeze the periodic refresh so only handoff signalling counts.
    if mn._location_loop is not None and mn._location_loop.is_alive:
        mn._location_loop.interrupt("t1 accounting")
    sim.run(until=1.5)
    before = world.protocol_hop_totals()

    def handoff():
        ok = yield from mn.perform_handoff(target_bs)
        assert ok

    sim.process(handoff())
    sim.run(until=4.0)
    return diff_counts(before, world.protocol_hop_totals(), _T1_PROTOCOLS)


def experiment_t1(
    backend: Optional[ExecutionBackend] = None,
) -> ExperimentResult:
    """Control message-hops consumed by one handoff of each type.

    Deterministic (no seeds needed): the periodic location-refresh loop
    is frozen and hop counts are differenced around the handoff over the
    world's link registry (which also covers radio links that are torn
    down during the handoff).  Each case builds its own world and runs
    as one job on the execution backend.  RSMC authentication is a
    processing delay, not an on-wire message, so it has no column.
    """
    cases = {
        "micro->micro (F->E)": ("F", "E", False),
        "macro->micro (R1->B)": ("R1", "B", False),
        "micro->macro (E->R2)": ("E", "R2", False),
        "inter same-upper (C->E)": ("C", "E", False),
        "inter diff-upper (F->G)": ("F", "G", True),
    }
    if backend is None:
        backend = get_default_backend()
    deltas = backend.run(
        [
            partial(_t1_case, start, target, cross_domain)
            for start, target, cross_domain in cases.values()
        ]
    )
    rows = [
        [label] + [delta[protocol] for protocol in _T1_PROTOCOLS]
        for label, delta in zip(cases, deltas)
    ]

    headers = ["handoff type"] + [p.replace("mt-", "") for p in _T1_PROTOCOLS]
    text = format_table(
        headers, rows, title="T1: control message-hops per handoff type"
    )
    return ExperimentResult(
        experiment_id="T1",
        title="Signalling cost per handoff type",
        x_label="handoff type",
        x_values=list(cases),
        series={
            headers[index + 1]: [row[index + 1] for row in rows]
            for index in range(len(_T1_PROTOCOLS))
        },
        text=text,
        notes="Intra-domain handoffs touch only the changed branch; the "
        "different-upper case adds a home registration and an MNLD update "
        "(plus a binding notify when a correspondent is active). RSMC "
        "authentication is a processing delay at the RSMC, not a message.",
    )


# ----------------------------------------------------------------------
# T2 — scaling: hierarchy vs flat central registration
# ----------------------------------------------------------------------
def experiment_t2(
    seeds: Iterable[int] = (1,),
    mobile_counts=(8, 16, 32, 64),
    duration: float = 20.0,
    backend: Optional[ExecutionBackend] = None,
) -> ExperimentResult:
    """T2: location-management scaling, hierarchy vs flat central registration."""

    def make_scenario(count):
        def scenario(seed: int) -> dict[str, float]:
            world = MultiTierWorld()
            d1 = world.domain1
            leaves = [d1["B"], d1["C"], d1["E"], d1["F"]]
            for index in range(count):
                mn = world.add_mobile(f"mn{index}")
                mn.initial_attach(leaves[index % len(leaves)])
            world.sim.run(until=duration)
            domain = d1.domain
            rate = count / domain.location_update_period
            # Hierarchy: measured message-hops/s (each refresh climbs its
            # branch only).  Flat central: every refresh must cross
            # BS -> RSMC -> Internet -> HA, and one server absorbs all of it.
            hierarchy_hops = domain.total_location_messages() / duration
            branch_depth = 4  # leaf -> aggregation -> macro -> R3 -> RSMC
            flat_hops = rate * (branch_depth + 2)
            return {
                "update_rate_per_s": rate,
                "hierarchy_msg_hops_per_s": hierarchy_hops,
                "flat_central_msg_hops_per_s": flat_hops,
                "central_server_load_per_s": rate,
                "max_station_load_per_s": max(
                    bs.location_messages_seen for bs in domain.base_stations
                )
                / duration,
                "table_records": float(domain.total_table_records()),
            }

        return scenario

    # One batch over the whole (count, seed) grid so a parallel backend
    # overlaps the sweep points, not just the (often single) seeds.
    replications = replicate_grid(
        [make_scenario(count) for count in mobile_counts], seeds, backend=backend
    )
    rows = []
    for count, replication in zip(mobile_counts, replications):
        rows.append(
            [
                count,
                replication.mean("update_rate_per_s"),
                replication.mean("hierarchy_msg_hops_per_s"),
                replication.mean("flat_central_msg_hops_per_s"),
                replication.mean("max_station_load_per_s"),
                replication.mean("table_records"),
            ]
        )
    headers = [
        "mobiles",
        "updates/s",
        "hier_hops/s",
        "flat_hops/s",
        "max_station_load/s",
        "table_records",
    ]
    text = format_table(
        headers, rows, title="T2: location-management scaling, hierarchy vs flat"
    )
    return ExperimentResult(
        experiment_id="T2",
        title="Scaling of location management",
        x_label="mobiles",
        x_values=list(mobile_counts),
        series={
            headers[index]: [row[index] for row in rows]
            for index in range(1, len(headers))
        },
        text=text,
        notes="Both grow linearly in message count, but the hierarchy keeps "
        "per-station load bounded and localizes handoff updates, while the "
        "flat scheme concentrates everything on one server across the WAN.",
    )


# ----------------------------------------------------------------------
# Ablation: RSMC handoff buffer depth
# ----------------------------------------------------------------------
def ablation_buffer_size(
    seeds: Iterable[int] = DEFAULT_SEEDS,
    buffer_sizes=(1, 2, 4, 8, 32),
    home_delay: float = 0.100,
    backend: Optional[ExecutionBackend] = None,
) -> ExperimentResult:
    """Inter-domain handoff (Fig 3.3): the *old* RSMC must hold roughly
    a home-network round trip's worth of packets before the HA tells it
    where to forward them.  Intra-domain handoffs barely need the
    buffer (resource switching drains the old branch), so this is the
    regime where depth matters."""

    def make_scenario(size):
        def scenario(seed: int) -> dict[str, float]:
            world = MultiTierWorld(
                second_domain=True,
                home_delay=home_delay,
                domain_kwargs={"buffer_size": size},
            )
            sim = world.sim
            mn = world.add_mobile("mn")
            assert mn.initial_attach(world.domain1["F"])
            sim.run(until=1.0)
            sink = FlowSink()
            mn.on_data.append(sink.bind(sim))
            source = CBRSource(
                sim,
                lambda p: world.cn.send_to_mobile(
                    mn.home_address, size=p.size, flow_id=p.flow_id,
                    seq=p.seq, created_at=p.created_at,
                ),
                world.cn.address,
                mn.home_address,
                rate_bps=200e3,
                packet_size=500,
                duration=6.0,
            ).start()
            sink.flow_id = source.flow_id

            def mover():
                yield sim.timeout(2.0)
                yield from mn.perform_handoff(world.domain2["G"])

            sim.process(mover())
            sim.run(until=12.0)
            rsmc1 = world.domain1.rsmc
            return {
                "loss_rate": sink.loss_rate(source.packets_sent),
                "max_gap": sink.max_gap(),
                "buffered": float(rsmc1.buffered_packets),
                "overflows": float(rsmc1.buffer_overflows),
            }

        return scenario

    return sweep(
        "AB1",
        "Ablation: RSMC handoff buffer depth, inter-domain handoff "
        f"(home RTT ~{2 * home_delay * 1e3:.0f} ms, 50 pkt/s)",
        "buffer_size_packets",
        list(buffer_sizes),
        make_scenario,
        seeds,
        ["loss_rate", "max_gap", "buffered", "overflows"],
        notes="The old RSMC buffers packets until the home agent reports "
        "the new domain; a buffer smaller than home-RTT x packet-rate "
        "overflows and loses packets, after which extra depth buys nothing.",
        backend=backend,
    )


# ----------------------------------------------------------------------
# Ablation: location record lifetime / refresh period ratio
# ----------------------------------------------------------------------
def ablation_record_lifetime(
    seeds: Iterable[int] = DEFAULT_SEEDS,
    lifetime_ratios=(1.2, 2.0, 4.0, 8.0),
    update_period: float = 1.0,
    duration: float = 20.0,
    backend: Optional[ExecutionBackend] = None,
) -> ExperimentResult:
    """Ablation: location record lifetime as a multiple of the refresh period."""
    def make_scenario(ratio):
        def scenario(seed: int) -> dict[str, float]:
            world = MultiTierWorld(
                domain_kwargs={
                    "record_lifetime": update_period * ratio,
                    "location_update_period": update_period,
                }
            )
            sim = world.sim
            d1 = world.domain1
            mn = world.add_mobile("mn")
            assert mn.initial_attach(d1["B"])
            sim.run(until=1.0)
            sink = FlowSink()
            mn.on_data.append(sink.bind(sim))
            source = CBRSource(
                sim,
                lambda p: world.cn.send_to_mobile(
                    mn.home_address, size=p.size, flow_id=p.flow_id,
                    seq=p.seq, created_at=p.created_at,
                ),
                world.cn.address,
                mn.home_address,
                rate_bps=40e3,
                packet_size=500,
                duration=duration,
            ).start()
            sink.flow_id = source.flow_id
            sim.run(until=duration + 3.0)
            return {
                "loss_rate": sink.loss_rate(source.packets_sent),
                "records_at_root": float(d1.rsmc.tables.total_records()),
                "location_msgs_per_s": world.domain1.domain.total_location_messages()
                / duration,
            }

        return scenario

    return sweep(
        "AB2",
        "Ablation: record lifetime as a multiple of the refresh period",
        "lifetime/period",
        list(lifetime_ratios),
        make_scenario,
        seeds,
        ["loss_rate", "records_at_root", "location_msgs_per_s"],
        notes="Lifetimes barely above the refresh period risk expiry between "
        "refreshes (losses); larger ratios only delay stale-record cleanup.",
        backend=backend,
    )
