"""E8b: elastic (TCP-like) traffic under handoffs, per scheme.

The multimedia story (E8) uses CBR; elastic AIMD traffic reacts to the
same handoff losses by collapsing its window, so schemes that lose
packets lose *throughput* disproportionately — the classic motivation
for loss-free handoff ("providing improved TCP and UDP performance
over hard handoff", §2.2.2).

Acks travel the real uplink as packets; nothing is short-circuited.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.experiments import baselines
from repro.experiments.exec import ExecutionBackend
from repro.experiments.runner import ExperimentResult, replicate_grid
from repro.metrics.tables import format_table
from repro.multitier.architecture import MultiTierWorld
from repro.net import Packet
from repro.traffic import ElasticSource, FlowSink, make_ack_hook


def _ack_receiver(source: ElasticSource):
    def handler(packet: Packet, link) -> None:
        source.acknowledge(packet.payload)

    return handler


def run_cip_elastic(
    semisoft: bool,
    seed: int = 0,
    handoffs: int = 6,
    handoff_interval: float = 2.0,
    duration: float = 16.0,
) -> dict[str, float]:
    sim, domain, gw, leaves, internet, cn, mn = baselines.build_cip_world()
    mn.attach_to(leaves[0])
    sim.run(until=1.0)

    sink = FlowSink()
    source = ElasticSource(
        sim,
        lambda p: internet.receive(p) or True,
        src=cn.address,
        dst=mn.address,
        duration=duration,
    )
    sink.flow_id = source.flow_id
    mn.on_data.append(sink.bind(sim))
    mn.on_data.append(make_ack_hook(sim, mn.originate))
    cn.on_protocol("ack", _ack_receiver(source))
    source.start()

    def mover():
        for index in range(handoffs):
            yield sim.timeout(handoff_interval)
            target = leaves[(index + 1) % len(leaves)]
            if semisoft:
                yield sim.process(mn.handoff_semisoft(target))
            else:
                mn.handoff_hard(target)

    sim.process(mover())
    sim.run(until=1.0 + duration + 4.0)
    return {
        "goodput_bps": sink.bytes_received * 8.0 / duration,
        "lossy_windows": float(source.windows_lossy),
        "clean_windows": float(source.windows_clean),
        "final_window": source.window,
    }


def run_multitier_elastic(
    seed: int = 0,
    handoffs: int = 6,
    handoff_interval: float = 2.0,
    duration: float = 16.0,
) -> dict[str, float]:
    world = MultiTierWorld()
    sim = world.sim
    d1 = world.domain1
    cells = [d1["B"], d1["C"], d1["E"], d1["F"]]
    mn = world.add_mobile("mn")
    assert mn.initial_attach(cells[0])
    sim.run(until=1.0)

    sink = FlowSink()
    source = ElasticSource(
        sim,
        lambda p: world.cn.send_to_mobile(
            mn.home_address, size=p.size, flow_id=p.flow_id,
            seq=p.seq, created_at=p.created_at,
        ),
        src=world.cn.address,
        dst=mn.home_address,
        duration=duration,
    )
    sink.flow_id = source.flow_id
    mn.on_data.append(sink.bind(sim))
    mn.on_data.append(make_ack_hook(sim, mn.originate))
    world.cn.on_protocol("ack", _ack_receiver(source))
    source.start()

    def mover():
        for index in range(handoffs):
            yield sim.timeout(handoff_interval)
            yield from mn.perform_handoff(cells[(index + 1) % len(cells)])

    sim.process(mover())
    sim.run(until=1.0 + duration + 4.0)
    return {
        "goodput_bps": sink.bytes_received * 8.0 / duration,
        "lossy_windows": float(source.windows_lossy),
        "clean_windows": float(source.windows_clean),
        "final_window": source.window,
    }


def experiment_e8b(
    seeds: Iterable[int] = (1, 2, 3),
    handoffs: int = 6,
    handoff_interval: float = 2.0,
    duration: float = 16.0,
    backend: Optional[ExecutionBackend] = None,
) -> ExperimentResult:
    """E8b: elastic AIMD goodput under handoffs (CIP hard vs semisoft vs RSMC)."""
    schemes = {
        "cip-hard": lambda seed: run_cip_elastic(
            False, seed, handoffs, handoff_interval, duration
        ),
        "cip-semisoft": lambda seed: run_cip_elastic(
            True, seed, handoffs, handoff_interval, duration
        ),
        "multitier-rsmc": lambda seed: run_multitier_elastic(
            seed, handoffs, handoff_interval, duration
        ),
    }
    rows = []
    series: dict[str, list[float]] = {
        "goodput_bps": [], "lossy_windows": [], "final_window": [],
    }
    replications = replicate_grid(list(schemes.values()), seeds, backend=backend)
    for name, replication in zip(schemes, replications):
        row = [
            name,
            replication.mean("goodput_bps"),
            replication.mean("lossy_windows"),
            replication.mean("final_window"),
        ]
        rows.append(row)
        for index, key in enumerate(series):
            series[key].append(row[index + 1])
    text = format_table(
        ["scheme", "goodput_bps", "lossy_windows", "final_window"],
        rows,
        title=(
            "E8b: elastic (AIMD) traffic under handoffs, "
            f"{handoffs} handoffs @ {handoff_interval}s"
        ),
    )
    return ExperimentResult(
        experiment_id="E8b",
        title="Elastic traffic scheme comparison",
        x_label="scheme",
        x_values=list(schemes),
        series=series,
        text=text,
        notes="Handoff losses make AIMD halve its window: hard handoff shows "
        "lossy windows and reduced goodput, while semisoft and the RSMC keep "
        "the window growing through every handoff.",
    )
