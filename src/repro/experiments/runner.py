"""Replication machinery: run a scenario across seeds, aggregate.

A *scenario* is any callable ``f(seed) -> dict[str, float]``.  The
runner executes it for each seed and reduces every metric to a mean ±
confidence-interval :class:`Estimate`.

Execution is delegated to an
:class:`~repro.experiments.exec.ExecutionBackend`: :func:`replicate`
turns its seed list into one job per seed, :func:`sweep` flattens the
whole (x value, seed) grid into a single batch so a parallel backend
can use every core even when the seed list is short.  Results come back
in job order, so the aggregated output is identical for every backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Iterable, Optional, Sequence

from repro.experiments.exec import ExecutionBackend, get_default_backend
from repro.metrics.stats import Estimate, mean_confidence

Scenario = Callable[[int], dict[str, float]]


@dataclass
class Replication:
    """Aggregated results of one scenario across seeds."""

    metrics: dict[str, Estimate]
    samples: dict[str, list[float]] = field(default_factory=dict)

    def __getitem__(self, name: str) -> Estimate:
        return self.metrics[name]

    def mean(self, name: str) -> float:
        return self.metrics[name].mean


def aggregate(
    results: Iterable[dict[str, float]], confidence: float = 0.95
) -> Replication:
    """Reduce per-seed metric dicts (in seed order) to a Replication.

    Public entry point for callers that batch heterogeneous job lists
    through a backend directly (e.g. the scenario catalog running
    several scenarios' seed grids as one batch) and aggregate the
    chunks themselves.
    """
    return _aggregate(results, confidence)


def _aggregate(results: Iterable[dict[str, float]], confidence: float) -> Replication:
    """Reduce per-seed metric dicts (in seed order) to a Replication."""
    samples: dict[str, list[float]] = {}
    for result in results:
        for name, value in result.items():
            samples.setdefault(name, []).append(float(value))
    metrics = {
        name: mean_confidence(values, confidence)
        for name, values in samples.items()
    }
    return Replication(metrics=metrics, samples=samples)


def replicate(
    scenario: Scenario,
    seeds: Iterable[int],
    confidence: float = 0.95,
    backend: Optional[ExecutionBackend] = None,
) -> Replication:
    """Run ``scenario`` once per seed and aggregate each metric.

    Each seed becomes one job on ``backend`` (default: the process-wide
    backend from :func:`repro.experiments.exec.get_default_backend`).
    """
    if backend is None:
        backend = get_default_backend()
    jobs = [partial(scenario, int(seed)) for seed in seeds]
    return _aggregate(backend.run(jobs), confidence)


def replicate_grid(
    scenarios: Sequence[Scenario],
    seeds: Iterable[int],
    confidence: float = 0.95,
    backend: Optional[ExecutionBackend] = None,
) -> list[Replication]:
    """Replicate several scenarios over the same seeds as ONE batch.

    Submitting the whole (scenario, seed) grid at once lets a parallel
    backend overlap the scenarios themselves, not just the (often
    short) seed list.  Results are chunked back per scenario, in order,
    so the output is identical to calling :func:`replicate` per
    scenario.
    """
    if backend is None:
        backend = get_default_backend()
    scenarios = list(scenarios)
    seeds = [int(seed) for seed in seeds]
    results = backend.run(
        [partial(scenario, seed) for scenario in scenarios for seed in seeds]
    )
    return [
        _aggregate(results[index * len(seeds): (index + 1) * len(seeds)], confidence)
        for index in range(len(scenarios))
    ]


@dataclass
class ExperimentResult:
    """One reproduced figure/table: data plus its rendered text."""

    experiment_id: str
    title: str
    x_label: str
    x_values: Sequence[object]
    series: dict[str, list[float]]
    text: str
    notes: str = ""
    #: Per-x-value aggregates (confidence intervals included), parallel
    #: to ``x_values``.  Populated by :func:`sweep`.
    replications: list[Replication] = field(default_factory=list)
    #: Confidence level the replications' intervals were computed at;
    #: renderers derive their CI column labels from this so label and
    #: data cannot disagree.
    confidence: float = 0.95

    def series_mean(self, name: str) -> float:
        values = self.series[name]
        return sum(values) / len(values) if values else float("nan")


def build_sweep_result(
    experiment_id: str,
    title: str,
    x_label: str,
    x_values: Sequence[object],
    replications: list[Replication],
    metric_names: Sequence[str],
    notes: str = "",
    confidence: float = 0.95,
) -> ExperimentResult:
    """Assemble an :class:`ExperimentResult` from per-point replications.

    Pure (deterministic) rendering: extracts each metric's per-point
    means into series and formats the text table.  Shared by
    :func:`sweep` and by callers that batch several sweeps' grids
    through one backend run and chunk the replications themselves
    (e.g. ``repro.scenarios.sweep.sweep_scenarios``).
    """
    from repro.metrics.tables import format_series

    series: dict[str, list[float]] = {name: [] for name in metric_names}
    for replication in replications:
        for name in metric_names:
            estimate = replication.metrics.get(name)
            series[name].append(estimate.mean if estimate else float("nan"))
    text = format_series(x_label, x_values, series, title=title)
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        x_label=x_label,
        x_values=list(x_values),
        series=series,
        text=text,
        notes=notes,
        replications=replications,
        confidence=confidence,
    )


def sweep(
    experiment_id: str,
    title: str,
    x_label: str,
    x_values: Sequence[object],
    make_scenario: Callable[[object], Scenario],
    seeds: Iterable[int],
    metric_names: Sequence[str],
    notes: str = "",
    confidence: float = 0.95,
    backend: Optional[ExecutionBackend] = None,
) -> ExperimentResult:
    """Run a parameter sweep: one replication per x value.

    The full (x value, seed) grid is submitted to ``backend`` as one
    batch — row-major, seeds fastest — then aggregated per x value at
    the caller's ``confidence`` level.
    """
    scenarios = [make_scenario(x) for x in x_values]
    replications = replicate_grid(scenarios, seeds, confidence, backend)
    return build_sweep_result(
        experiment_id,
        title,
        x_label,
        x_values,
        replications,
        metric_names,
        notes=notes,
        confidence=confidence,
    )
