"""Replication machinery: run a scenario across seeds, aggregate.

A *scenario* is any callable ``f(seed) -> dict[str, float]``.  The
runner executes it for each seed and reduces every metric to a mean ±
confidence-interval :class:`Estimate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.metrics.stats import Estimate, mean_confidence

Scenario = Callable[[int], dict[str, float]]


@dataclass
class Replication:
    """Aggregated results of one scenario across seeds."""

    metrics: dict[str, Estimate]
    samples: dict[str, list[float]] = field(default_factory=dict)

    def __getitem__(self, name: str) -> Estimate:
        return self.metrics[name]

    def mean(self, name: str) -> float:
        return self.metrics[name].mean


def replicate(
    scenario: Scenario, seeds: Iterable[int], confidence: float = 0.95
) -> Replication:
    """Run ``scenario`` once per seed and aggregate each metric."""
    samples: dict[str, list[float]] = {}
    for seed in seeds:
        result = scenario(int(seed))
        for name, value in result.items():
            samples.setdefault(name, []).append(float(value))
    metrics = {
        name: mean_confidence(values, confidence)
        for name, values in samples.items()
    }
    return Replication(metrics=metrics, samples=samples)


@dataclass
class ExperimentResult:
    """One reproduced figure/table: data plus its rendered text."""

    experiment_id: str
    title: str
    x_label: str
    x_values: Sequence[object]
    series: dict[str, list[float]]
    text: str
    notes: str = ""

    def series_mean(self, name: str) -> float:
        values = self.series[name]
        return sum(values) / len(values) if values else float("nan")


def sweep(
    experiment_id: str,
    title: str,
    x_label: str,
    x_values: Sequence[object],
    make_scenario: Callable[[object], Scenario],
    seeds: Iterable[int],
    metric_names: Sequence[str],
    notes: str = "",
) -> ExperimentResult:
    """Run a parameter sweep: one replication per x value."""
    from repro.metrics.tables import format_series

    seeds = list(seeds)
    series: dict[str, list[float]] = {name: [] for name in metric_names}
    for x in x_values:
        replication = replicate(make_scenario(x), seeds)
        for name in metric_names:
            estimate = replication.metrics.get(name)
            series[name].append(estimate.mean if estimate else float("nan"))
    text = format_series(x_label, x_values, series, title=title)
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        x_label=x_label,
        x_values=list(x_values),
        series=series,
        text=text,
        notes=notes,
    )
