"""The four comparable mobility schemes for the headline experiment
(E8, paper Fig 4.1) and reusable scenario pieces.

Each ``run_*`` function builds its own world, streams a downlink CBR
flow from a correspondent to one mobile while the mobile performs a
fixed schedule of handoffs, and returns the same metric dict:

``loss_rate, mean_delay, jitter, max_gap, duplicates, handoff_count``

* ``run_mobileip``   — plain Mobile IP, one FA per cell, every move is
  a full home registration (losses during the registration RTT).
* ``run_cip_hard``   — flat Cellular IP, hard handoff.
* ``run_cip_semisoft`` — flat Cellular IP, semisoft handoff.
* ``run_multitier_rsmc`` — the paper's scheme.
"""

from __future__ import annotations

from typing import Optional

from repro.cellularip import CIPBaseStation, CIPDomain, CIPGateway, CIPMobileHost
from repro.mobileip import ForeignAgent, HomeAgent, MobileIPNode, install_home_prefix_routes
from repro.multitier.architecture import MultiTierWorld
from repro.net import Network, Packet, Router, ip
from repro.sim import Simulator
from repro.traffic import CBRSource, FlowSink

#: Stream parameters shared by every scheme in E8.
DEFAULT_RATE_BPS = 200e3
DEFAULT_PACKET_SIZE = 500


def _stream_and_measure(
    sim: Simulator,
    send_fn,
    sink_node_hooks: list,
    src_address,
    dst_address,
    duration: float,
    rate_bps: float,
    packet_size: int,
) -> tuple[CBRSource, FlowSink]:
    """Start a CBR downlink stream and a sink attached via hooks."""
    sink = FlowSink()
    sink_node_hooks.append(sink.bind(sim))
    source = CBRSource(
        sim,
        send_fn,
        src=src_address,
        dst=dst_address,
        rate_bps=rate_bps,
        packet_size=packet_size,
        duration=duration,
    ).start()
    sink.flow_id = source.flow_id
    return source, sink


def _metrics(source: CBRSource, sink: FlowSink, handoffs: int) -> dict[str, float]:
    return {
        "loss_rate": sink.loss_rate(source.packets_sent),
        "lost": float(sink.lost(source.packets_sent)),
        "mean_delay": sink.mean_delay(),
        "jitter": sink.jitter(),
        "max_gap": sink.max_gap(),
        "duplicates": float(sink.duplicates),
        "received": float(sink.received),
        "sent": float(source.packets_sent),
        "handoff_count": float(handoffs),
    }


# ----------------------------------------------------------------------
# Scheme 1: pure Mobile IP
# ----------------------------------------------------------------------
def run_mobileip(
    seed: int = 0,
    handoffs: int = 6,
    handoff_interval: float = 2.0,
    duration: float = 16.0,
    home_delay: float = 0.025,
    rate_bps: float = DEFAULT_RATE_BPS,
    packet_size: int = DEFAULT_PACKET_SIZE,
) -> dict[str, float]:
    """One FA per cell; every cell change re-registers with the HA."""
    sim = Simulator()
    network = Network(sim)
    core = network.router("core")
    cn = network.host("cn")
    ha = HomeAgent(sim, "ha", network.allocator.allocate(), "10.99.0.0/16")
    agents = []
    for index in range(4):
        agent = ForeignAgent(sim, f"fa{index}", network.allocator.allocate())
        network.add(agent)
        network.connect(agent, core, delay=0.005)
        agents.append(agent)
    network.add(ha)
    network.connect(cn, core, delay=0.005)
    network.connect(ha, core, delay=home_delay)
    network.install_routes()
    install_home_prefix_routes(network, ha)

    mn = MobileIPNode(
        sim, "mn", home_address="10.99.0.5", home_agent_address=ha.address
    )
    agents[0].attach_mobile(mn)
    sim.run(until=1.0)

    hooks = []
    mn.on_protocol("data", lambda packet, link: _fire(hooks, packet))
    source, sink = _stream_and_measure(
        sim,
        lambda packet: core.receive(packet) or True,
        hooks,
        cn.address,
        mn.home_address,
        duration,
        rate_bps,
        packet_size,
    )

    def mover():
        for index in range(handoffs):
            yield sim.timeout(handoff_interval)
            old = agents[index % len(agents)]
            new = agents[(index + 1) % len(agents)]
            old.detach_mobile(mn)
            new.attach_mobile(mn)

    sim.process(mover())
    sim.run(until=1.0 + duration + 4.0)
    return _metrics(source, sink, handoffs)


def _fire(hooks: list, packet: Packet) -> None:
    for hook in hooks:
        hook(packet)


# ----------------------------------------------------------------------
# Schemes 2 & 3: flat Cellular IP (hard / semisoft)
# ----------------------------------------------------------------------
def build_cip_world(
    route_timeout: float = 5.0,
    semisoft_delay: float = 0.05,
    wired_delay: float = 0.005,
):
    """Gateway over two relays over four leaf base stations."""
    sim = Simulator()
    domain = CIPDomain(
        sim,
        route_timeout=route_timeout,
        semisoft_delay=semisoft_delay,
        wired_delay=wired_delay,
    )
    network = Network(sim)
    gw = CIPGateway(sim, "gw", network.allocator.allocate(), domain)
    relays = [
        CIPBaseStation(sim, f"m{index}", network.allocator.allocate(), domain)
        for index in range(2)
    ]
    leaves = [
        CIPBaseStation(sim, f"bs{index}", network.allocator.allocate(), domain)
        for index in range(4)
    ]
    for node in [gw, *relays, *leaves]:
        network.add(node)
    domain.link(gw, relays[0])
    domain.link(gw, relays[1])
    domain.link(relays[0], leaves[0])
    domain.link(relays[0], leaves[1])
    domain.link(relays[1], leaves[2])
    domain.link(relays[1], leaves[3])

    internet = Router(sim, "internet", network.allocator.allocate())
    cn = network.host("cn")
    network.add(internet)
    network.connect(cn, internet, delay=0.005)
    gw.connect_internet(internet, delay=0.005)
    internet.add_route("10.200.0.0/16", gw)
    internet.add_host_route(cn.address, cn)
    mn = CIPMobileHost(sim, "mn", ip("10.200.0.1"), domain)
    return sim, domain, gw, leaves, internet, cn, mn


def _run_cip(
    semisoft: bool,
    seed: int,
    handoffs: int,
    handoff_interval: float,
    duration: float,
    rate_bps: float,
    packet_size: int,
) -> dict[str, float]:
    sim, domain, gw, leaves, internet, cn, mn = build_cip_world()
    mn.attach_to(leaves[0])
    sim.run(until=1.0)

    source, sink = _stream_and_measure(
        sim,
        lambda packet: internet.receive(packet) or True,
        mn.on_data,
        cn.address,
        mn.address,
        duration,
        rate_bps,
        packet_size,
    )

    def mover():
        for index in range(handoffs):
            yield sim.timeout(handoff_interval)
            target = leaves[(index + 1) % len(leaves)]
            if semisoft:
                yield sim.process(mn.handoff_semisoft(target))
            else:
                mn.handoff_hard(target)

    sim.process(mover())
    sim.run(until=1.0 + duration + 4.0)
    return _metrics(source, sink, handoffs)


def run_cip_hard(
    seed: int = 0,
    handoffs: int = 6,
    handoff_interval: float = 2.0,
    duration: float = 16.0,
    rate_bps: float = DEFAULT_RATE_BPS,
    packet_size: int = DEFAULT_PACKET_SIZE,
) -> dict[str, float]:
    return _run_cip(
        False, seed, handoffs, handoff_interval, duration, rate_bps, packet_size
    )


def run_cip_semisoft(
    seed: int = 0,
    handoffs: int = 6,
    handoff_interval: float = 2.0,
    duration: float = 16.0,
    rate_bps: float = DEFAULT_RATE_BPS,
    packet_size: int = DEFAULT_PACKET_SIZE,
) -> dict[str, float]:
    return _run_cip(
        True, seed, handoffs, handoff_interval, duration, rate_bps, packet_size
    )


# ----------------------------------------------------------------------
# Scheme 4: the paper's multi-tier + RSMC
# ----------------------------------------------------------------------
def run_multitier_rsmc(
    seed: int = 0,
    handoffs: int = 6,
    handoff_interval: float = 2.0,
    duration: float = 16.0,
    home_delay: float = 0.025,
    rate_bps: float = DEFAULT_RATE_BPS,
    packet_size: int = DEFAULT_PACKET_SIZE,
    domain_kwargs: Optional[dict] = None,
) -> dict[str, float]:
    world = MultiTierWorld(
        home_delay=home_delay, domain_kwargs=dict(domain_kwargs or {})
    )
    sim = world.sim
    d1 = world.domain1
    cells = [d1["B"], d1["C"], d1["E"], d1["F"]]
    mn = world.add_mobile("mn")
    assert mn.initial_attach(cells[0])
    sim.run(until=1.0)

    source_box = {}

    def send(packet):
        # Route-optimizable send: honour the CN's RSMC binding.
        return world.cn.send_to_mobile(
            mn.home_address,
            size=packet.size,
            flow_id=packet.flow_id,
            seq=packet.seq,
            created_at=packet.created_at,
        )

    source, sink = _stream_and_measure(
        sim,
        send,
        mn.on_data,
        world.cn.address,
        mn.home_address,
        duration,
        rate_bps,
        packet_size,
    )
    source_box["source"] = source

    def mover():
        for index in range(handoffs):
            yield sim.timeout(handoff_interval)
            target = cells[(index + 1) % len(cells)]
            yield from mn.perform_handoff(target)

    sim.process(mover())
    sim.run(until=1.0 + duration + 4.0)
    metrics = _metrics(source, sink, handoffs)
    metrics["buffered"] = float(d1.rsmc.buffered_packets)
    metrics["handoff_latency"] = (
        sum(mn.handoff_latencies) / len(mn.handoff_latencies)
        if mn.handoff_latencies
        else float("nan")
    )
    return metrics


#: Registry used by E8 and the examples.
SCHEMES = {
    "mobile-ip": run_mobileip,
    "cip-hard": run_cip_hard,
    "cip-semisoft": run_cip_semisoft,
    "multitier-rsmc": run_multitier_rsmc,
}


def run_scheme(name: str, seed: int = 0, **kwargs) -> dict[str, float]:
    """Run one named scheme — the execution-engine job entry point used
    by E8's scheme-comparison grid."""
    try:
        runner = SCHEMES[name]
    except KeyError:
        raise ValueError(
            f"unknown scheme {name!r}; available: {', '.join(SCHEMES)}"
        ) from None
    return runner(seed, **kwargs)
