"""E11: multimedia QoS under background load (§4 capability d).

The paper's architecture promises "Multimedia Quality of Service".
This experiment loads one micro cell's *backhaul* (a 3 Mbit/s
era-appropriate E1-class link into the cell) with competing background
flows and measures the QoS-degradation curve of one foreground video
stream: queueing delay and jitter rise as the offered load approaches
the bottleneck, then drop-tail loss appears past saturation.

Note on scope: radio links in this substrate are per-mobile (no shared
air-interface model), so contention is created where the era's systems
actually concentrated it — the wired backhaul shared by every mobile in
the cell.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.experiments.exec import ExecutionBackend
from repro.experiments.runner import ExperimentResult, sweep
from repro.multitier.architecture import MultiTierWorld
from repro.sim.rng import RandomStreams
from repro.traffic import CBRSource, FlowSink, PoissonSource

#: Backhaul bottleneck: ~2x E1 (era-appropriate microwave/leased line).
BACKHAUL_BPS = 3e6


def experiment_e11(
    seeds: Iterable[int] = (1, 2, 3),
    background_flows=(0, 2, 4, 6, 8, 10),
    foreground_rate: float = 200e3,
    background_rate_pps: float = 40.0,
    duration: float = 10.0,
    backend: Optional[ExecutionBackend] = None,
) -> ExperimentResult:
    """E11: foreground video QoS vs background load on the cell backhaul."""

    def make_scenario(flows):
        def scenario(seed: int) -> dict[str, float]:
            # One named stream per background flow (sim/rng.py's
            # variance-reduction discipline): flow k's arrivals are the
            # same whether 2 or 10 flows are configured.
            streams = RandomStreams(seed)
            world = MultiTierWorld(
                domain_kwargs={"wired_bandwidth": BACKHAUL_BPS}
            )
            sim = world.sim
            d1 = world.domain1
            cell = d1["B"]

            viewer = world.add_mobile("viewer")
            assert viewer.initial_attach(cell)

            # Background: Poisson data to other mobiles in the same
            # cell; every flow shares the R1->A->B backhaul.
            for index in range(flows):
                other = world.add_mobile(f"bg{index}")
                assert other.initial_attach(cell)
                PoissonSource(
                    sim,
                    lambda p, mobile=other: world.cn.send_to_mobile(
                        mobile.home_address, size=p.size,
                        flow_id=p.flow_id, seq=p.seq, created_at=p.created_at,
                    ),
                    src=world.cn.address,
                    dst=other.home_address,
                    rng=streams.stream(f"background{index}.arrivals"),
                    mean_rate_pps=background_rate_pps,
                    packet_size=1000,
                    duration=duration + 2.0,
                ).start()
            sim.run(until=1.0)

            sink = FlowSink()
            viewer.on_data.append(sink.bind(sim))
            source = CBRSource(
                sim,
                lambda p: world.cn.send_to_mobile(
                    viewer.home_address, size=p.size,
                    flow_id=p.flow_id, seq=p.seq, created_at=p.created_at,
                ),
                src=world.cn.address,
                dst=viewer.home_address,
                rate_bps=foreground_rate,
                packet_size=500,
                duration=duration,
            ).start()
            sink.flow_id = source.flow_id
            sim.run(until=1.0 + duration + 3.0)
            offered = (
                foreground_rate + flows * background_rate_pps * 1000 * 8
            ) / BACKHAUL_BPS
            return {
                "offered_load": offered,
                "loss_rate": sink.loss_rate(source.packets_sent),
                "mean_delay": sink.mean_delay(),
                "jitter": sink.jitter(),
            }

        return scenario

    return sweep(
        "E11",
        "E11 (§4d): foreground video QoS vs background load "
        f"({BACKHAUL_BPS/1e6:g} Mbit/s backhaul, "
        f"{background_rate_pps:.0f} pkt/s x 1000 B per background flow)",
        "background_flows",
        list(background_flows),
        make_scenario,
        seeds,
        ["offered_load", "loss_rate", "mean_delay", "jitter"],
        notes="Queueing delay and jitter climb as offered load approaches "
        "the backhaul rate; once past ~1.0 the drop-tail queue sheds video "
        "packets — the QoS cliff the paper's admission control exists to "
        "stay clear of.",
        backend=backend,
    )
