"""One function per reproduced figure/table (E1-E10, T1, T2).

The paper has no quantitative evaluation section; every architecture
figure is reproduced as an executable scenario, and every qualitative
claim ("improve QoS", "reduce data packet loss", "overhead ...
decreased") becomes a measured comparison.  See DESIGN.md §4 for the
index and expected shapes.

All functions return :class:`repro.experiments.runner.ExperimentResult`
whose ``text`` is the printable table.
"""

from __future__ import annotations

import pathlib
from functools import partial
from typing import Iterable, Optional, Union

from repro.experiments import baselines
from repro.experiments.exec import ExecutionBackend
from repro.experiments.runner import ExperimentResult, replicate_grid, sweep
from repro.metrics.tables import format_ascii_plot, format_table
from repro.mobileip import ForeignAgent, HomeAgent, MobileIPNode, install_home_prefix_routes
from repro.multitier.architecture import MultiTierWorld
from repro.net import Network, Packet
from repro.sim import Simulator
from repro.traffic import CBRSource, FlowSink

DEFAULT_SEEDS = (1, 2, 3)


# ----------------------------------------------------------------------
# Figure emission (used by the scenario sweep CLI, available to any
# ExperimentResult consumer): a result can be rendered as an actual
# figure file, not just a table.
# ----------------------------------------------------------------------
def _have_matplotlib() -> bool:
    try:
        import matplotlib  # noqa: F401
    except ImportError:
        return False
    return True


def save_experiment_figure(
    result: ExperimentResult,
    directory: Union[str, pathlib.Path],
    stem: Optional[str] = None,
) -> pathlib.Path:
    """Write ``result`` as a figure file and return the written path.

    One line is drawn per entry of ``result.series`` against
    ``result.x_values``.  When matplotlib is importable the figure is a
    PNG rendered on the ``Agg`` backend; otherwise (matplotlib is an
    optional dependency) the same data is written as a deterministic
    ASCII chart with a ``.txt`` suffix via
    :func:`repro.metrics.tables.format_ascii_plot`.

    Parameters
    ----------
    result:
        Any :class:`~repro.experiments.runner.ExperimentResult` — the
        sweep engine and every reproduced experiment produce one.
    directory:
        Output directory, created if missing.
    stem:
        File name without suffix; defaults to a sanitized
        ``result.experiment_id``.

    Determinism: the rendering is a pure function of the result data,
    so figures produced from serial and ``--jobs N`` runs of the same
    sweep are identical (byte-identical in the ASCII fallback, which is
    what CI diffs).
    """
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if stem is None:
        stem = result.experiment_id.replace("/", "_").lower()

    numeric_x = all(isinstance(x, (int, float)) for x in result.x_values)
    if _have_matplotlib():
        # Object-oriented API on an explicit Agg canvas: no pyplot, no
        # matplotlib.use(), so a host application's interactive backend
        # and figure registry are left untouched.
        from matplotlib.backends.backend_agg import FigureCanvasAgg
        from matplotlib.figure import Figure

        xs = result.x_values if numeric_x else range(len(result.x_values))
        figure = Figure(figsize=(7.0, 4.5))
        FigureCanvasAgg(figure)
        axes = figure.add_subplot()
        for name, values in result.series.items():
            axes.plot(xs, values, marker="o", label=name)
        if not numeric_x:
            axes.set_xticks(list(xs))
            axes.set_xticklabels([str(x) for x in result.x_values])
        axes.set_xlabel(result.x_label)
        axes.set_title(result.title)
        axes.grid(True, alpha=0.3)
        axes.legend()
        path = directory / f"{stem}.png"
        # Fixed metadata: default PNG metadata embeds the matplotlib
        # version, which would break output-parity diffs across hosts.
        figure.savefig(path, dpi=120, metadata={"Software": "repro"})
        return path

    path = directory / f"{stem}.figure.txt"
    path.write_text(
        format_ascii_plot(
            result.x_label, result.x_values, result.series, title=result.title
        )
        + "\n"
    )
    return path


# ----------------------------------------------------------------------
# E1 — Fig 2.2: Mobile IP registration latency and triangle routing
# ----------------------------------------------------------------------
def experiment_e1(
    seeds: Iterable[int] = DEFAULT_SEEDS,
    backbone_delays=(0.005, 0.010, 0.025, 0.050, 0.100),
    backend: Optional[ExecutionBackend] = None,
) -> ExperimentResult:
    """Fig 2.2: Mobile IP registration latency & triangle routing vs HA distance."""
    def make_scenario(delay):
        def scenario(seed: int) -> dict[str, float]:
            sim = Simulator()
            network = Network(sim)
            core = network.router("core")
            cn = network.host("cn")
            ha = HomeAgent(sim, "ha", network.allocator.allocate(), "10.99.0.0/16")
            fa = ForeignAgent(sim, "fa", network.allocator.allocate())
            for agent in (ha, fa):
                network.add(agent)
            network.connect(cn, core, delay=0.002)
            network.connect(ha, core, delay=delay)
            network.connect(fa, core, delay=delay)
            network.install_routes()
            install_home_prefix_routes(network, ha)
            mn = MobileIPNode(
                sim, "mn", home_address="10.99.0.5", home_agent_address=ha.address
            )
            fa.attach_mobile(mn)
            sim.run(until=5.0)

            down_delay = []
            up_delay = []
            mn.on_protocol(
                "data", lambda p, l: down_delay.append(sim.now - p.created_at)
            )
            cn.on_protocol(
                "data", lambda p, l: up_delay.append(sim.now - p.created_at)
            )
            core.receive(
                Packet(src=cn.address, dst=mn.home_address, size=1000, created_at=sim.now)
            )
            mn.originate(
                Packet(src=mn.home_address, dst=cn.address, size=1000, created_at=sim.now)
            )
            sim.run(until=10.0)
            stretch = (
                down_delay[0] / up_delay[0] if down_delay and up_delay else float("nan")
            )
            return {
                "registration_latency": mn.registration_latencies[0],
                "downlink_delay": down_delay[0] if down_delay else float("nan"),
                "uplink_delay": up_delay[0] if up_delay else float("nan"),
                "triangle_stretch": stretch,
            }

        return scenario

    return sweep(
        "E1",
        "E1 (Fig 2.2): Mobile IP registration latency & triangle routing vs backbone delay",
        "backbone_delay_s",
        list(backbone_delays),
        make_scenario,
        seeds,
        ["registration_latency", "downlink_delay", "uplink_delay", "triangle_stretch"],
        notes="Registration latency and CN->MN delay grow with the HA distance; "
        "triangle stretch > 1 shows the downlink detour through the HA.",
        backend=backend,
    )


# ----------------------------------------------------------------------
# E2 — Fig 2.3: Cellular IP routing-cache maintenance
# ----------------------------------------------------------------------
def experiment_e2(
    seeds: Iterable[int] = DEFAULT_SEEDS,
    update_periods=(0.25, 0.5, 1.0, 2.0, 4.0),
    route_timeout: float = 1.5,
    duration: float = 30.0,
    backend: Optional[ExecutionBackend] = None,
) -> ExperimentResult:
    """Fig 2.3: Cellular IP signalling vs route-update period, and the cache-miss cliff."""
    def make_scenario(period):
        def scenario(seed: int) -> dict[str, float]:
            sim, domain, gw, leaves, internet, cn, mn = baselines.build_cip_world()
            domain.route_update_time = period
            domain.route_timeout = route_timeout
            domain.broadcast_paging = False
            for bs in domain.base_stations:
                bs.routing_cache.timeout = route_timeout
                bs.paging_cache.timeout = route_timeout  # isolate route caches
            mn.attach_to(leaves[0])
            # Keep the mobile nominally active but silent so only timed
            # route updates refresh the caches.
            mn._last_activity = float("inf")

            sink = FlowSink()
            mn.on_data.append(sink.bind(sim))
            # Fine-grained downlink probes, started after a warmup so the
            # startup transient does not pollute the miss rate.
            probe_interval = 0.3
            source = CBRSource(
                sim,
                lambda p: internet.receive(p) or True,
                cn.address,
                mn.address,
                rate_bps=500 * 8 / probe_interval,
                packet_size=500,
                duration=duration,
            )
            sim.schedule(1.0, source.start)
            sink.flow_id = source.flow_id
            sim.run(until=1.0 + duration + 2.0)
            control = domain.total_control_packets()
            return {
                "control_packets_per_s": control / duration,
                "miss_rate": sink.loss_rate(source.packets_sent),
                "cache_refreshes": float(gw.routing_cache.refreshes),
            }

        return scenario

    return sweep(
        "E2",
        "E2 (Fig 2.3): Cellular IP signalling vs route-update period "
        f"(route_timeout={route_timeout}s)",
        "route_update_period_s",
        list(update_periods),
        make_scenario,
        seeds,
        ["control_packets_per_s", "miss_rate", "cache_refreshes"],
        notes="Faster updates cost linearly more signalling; once the period "
        "exceeds the route timeout the downlink cache-miss rate jumps.",
        backend=backend,
    )


# ----------------------------------------------------------------------
# E3 — Fig 2.4: Cellular IP hard vs semisoft handoff
# ----------------------------------------------------------------------
def experiment_e3(
    seeds: Iterable[int] = DEFAULT_SEEDS,
    handoff_intervals=(0.5, 1.0, 2.0, 4.0),
    duration: float = 16.0,
    backend: Optional[ExecutionBackend] = None,
) -> ExperimentResult:
    """Fig 2.4: hard vs semisoft Cellular IP handoff loss across handoff rates."""
    def make_scenario(interval):
        def scenario(seed: int) -> dict[str, float]:
            hard = baselines.run_cip_hard(
                seed, handoffs=int(duration / interval) - 1,
                handoff_interval=interval, duration=duration,
            )
            semisoft = baselines.run_cip_semisoft(
                seed, handoffs=int(duration / interval) - 1,
                handoff_interval=interval, duration=duration,
            )
            return {
                "hard_loss_rate": hard["loss_rate"],
                "semisoft_loss_rate": semisoft["loss_rate"],
                "hard_lost_per_handoff": hard["lost"] / hard["handoff_count"],
                "semisoft_duplicates": semisoft["duplicates"],
            }

        return scenario

    return sweep(
        "E3",
        "E3 (Fig 2.4): hard vs semisoft Cellular IP handoff",
        "handoff_interval_s",
        list(handoff_intervals),
        make_scenario,
        seeds,
        [
            "hard_loss_rate",
            "semisoft_loss_rate",
            "hard_lost_per_handoff",
            "semisoft_duplicates",
        ],
        notes="Hard handoff loses packets proportional to handoff rate; "
        "semisoft trades losses for duplicated packets.",
        backend=backend,
    )


# ----------------------------------------------------------------------
# E4 — Fig 3.1: hierarchical location management
# ----------------------------------------------------------------------
def experiment_e4(
    seeds: Iterable[int] = DEFAULT_SEEDS,
    mobile_counts=(4, 8, 16, 32),
    duration: float = 20.0,
    backend: Optional[ExecutionBackend] = None,
) -> ExperimentResult:
    """Fig 3.1: hierarchical location-management load vs number of mobiles."""
    def make_scenario(count):
        def scenario(seed: int) -> dict[str, float]:
            world = MultiTierWorld()
            d1 = world.domain1
            leaves = [d1["B"], d1["C"], d1["E"], d1["F"]]
            for index in range(count):
                mn = world.add_mobile(f"mn{index}")
                mn.initial_attach(leaves[index % len(leaves)])
            world.sim.run(until=duration)
            domain = d1.domain
            messages_total = domain.total_location_messages()
            # Hierarchy: each refresh touches the stations on one branch
            # (depth 4-5).  Flat central: every refresh would cross the
            # wired Internet to one server; cost modelled as the same
            # message count but concentrated on a single node.
            root_load = d1.rsmc.location_messages_seen / duration
            max_load = max(
                bs.location_messages_seen for bs in domain.base_stations
            ) / duration
            return {
                "location_msgs_per_s": messages_total / duration,
                "root_load_per_s": root_load,
                "max_station_load_per_s": max_load,
                "table_records": float(domain.total_table_records()),
                "records_per_station": domain.total_table_records()
                / len(domain.base_stations),
            }

        return scenario

    return sweep(
        "E4",
        "E4 (Fig 3.1): location-management load vs number of mobiles",
        "mobiles",
        list(mobile_counts),
        make_scenario,
        seeds,
        [
            "location_msgs_per_s",
            "root_load_per_s",
            "max_station_load_per_s",
            "table_records",
            "records_per_station",
        ],
        notes="Total signalling grows linearly with N but is spread over the "
        "hierarchy: per-station load stays a small multiple of the root's.",
        backend=backend,
    )


# ----------------------------------------------------------------------
# E5 / E6 — Figs 3.2 / 3.3: inter-domain handoff latency
# ----------------------------------------------------------------------
def _interdomain_scenario(different_upper: bool, home_delay: float):
    def scenario(seed: int) -> dict[str, float]:
        world = MultiTierWorld(second_domain=True, home_delay=home_delay)
        sim = world.sim
        d1, d2 = world.domain1, world.domain2
        mn = world.add_mobile("mn")
        start = d1["C"] if not different_upper else d1["F"]
        target = d1["E"] if not different_upper else d2["G"]
        assert mn.initial_attach(start)
        sim.run(until=1.0)

        sink = FlowSink()
        mn.on_data.append(sink.bind(sim))
        source = CBRSource(
            sim,
            lambda p: world.cn.send_to_mobile(
                mn.home_address, size=p.size, flow_id=p.flow_id,
                seq=p.seq, created_at=p.created_at,
            ),
            world.cn.address,
            mn.home_address,
            rate_bps=200e3,
            packet_size=500,
            duration=6.0,
        ).start()
        sink.flow_id = source.flow_id

        def mover():
            yield sim.timeout(2.0)
            yield from mn.perform_handoff(target)

        sim.process(mover())
        sim.run(until=12.0)
        ha_involved = 1.0 if world.ha.registrations_accepted > 1 else 0.0
        return {
            "handoff_latency": mn.handoff_latencies[0]
            if mn.handoff_latencies
            else float("nan"),
            "interruption": sink.max_gap(),
            "loss_rate": sink.loss_rate(source.packets_sent),
            "ha_involved": ha_involved,
        }

    return scenario


def experiment_e5_e6(
    seeds: Iterable[int] = DEFAULT_SEEDS,
    home_delays=(0.010, 0.025, 0.050, 0.100),
    backend: Optional[ExecutionBackend] = None,
) -> ExperimentResult:
    """Figs 3.2/3.3: inter-domain handoff, same vs different upper BS."""
    scenarios = []
    for home_delay in home_delays:
        scenarios.append(_interdomain_scenario(False, home_delay))
        scenarios.append(_interdomain_scenario(True, home_delay))
    replications = replicate_grid(scenarios, seeds, backend=backend)
    rows = []
    for index, home_delay in enumerate(home_delays):
        same, diff = replications[2 * index], replications[2 * index + 1]
        rows.append(
            [
                home_delay,
                same.mean("handoff_latency"),
                diff.mean("handoff_latency"),
                same.mean("interruption"),
                diff.mean("interruption"),
                diff.mean("ha_involved"),
            ]
        )
    headers = [
        "home_delay_s",
        "same_upper_latency",
        "diff_upper_latency",
        "same_upper_gap",
        "diff_upper_gap",
        "diff_ha_involved",
    ]
    text = format_table(
        headers,
        rows,
        title="E5/E6 (Figs 3.2/3.3): inter-domain handoff, same vs different upper BS",
    )
    series = {
        header: [row[index] for row in rows]
        for index, header in enumerate(headers)
        if index > 0
    }
    return ExperimentResult(
        experiment_id="E5/E6",
        title="Inter-domain handoff: same vs different upper BS",
        x_label="home_delay_s",
        x_values=list(home_delays),
        series=series,
        text=text,
        notes="Same-upper handoffs never involve the home network, so their "
        "latency is flat; different-upper handoffs pay authentication plus "
        "the home registration and grow with home delay.",
    )


# ----------------------------------------------------------------------
# E7 — Fig 3.4: the three intra-domain handoff cases + overflow
# ----------------------------------------------------------------------
def experiment_e7(
    seeds: Iterable[int] = DEFAULT_SEEDS,
    backend: Optional[ExecutionBackend] = None,
) -> ExperimentResult:
    """Fig 3.4: the three intra-domain handoff cases (latency, interruption, loss)."""
    cases = {
        "micro->micro (F->E)": ("F", "E"),
        "macro->micro (R1->B)": ("R1", "B"),
        "micro->macro (E->R2)": ("E", "R2"),
    }

    def make_case_scenario(stations):
        start_name, target_name = stations

        def scenario(seed: int) -> dict[str, float]:
            world = MultiTierWorld()
            sim = world.sim
            d1 = world.domain1
            mn = world.add_mobile("mn")
            assert mn.initial_attach(d1[start_name])
            sim.run(until=1.0)
            sink = FlowSink()
            mn.on_data.append(sink.bind(sim))
            source = CBRSource(
                sim,
                lambda p: world.cn.send_to_mobile(
                    mn.home_address, size=p.size, flow_id=p.flow_id,
                    seq=p.seq, created_at=p.created_at,
                ),
                world.cn.address,
                mn.home_address,
                rate_bps=200e3,
                packet_size=500,
                duration=4.0,
            ).start()
            sink.flow_id = source.flow_id

            def mover():
                yield sim.timeout(1.5)
                yield from mn.perform_handoff(d1[target_name])

            sim.process(mover())
            sim.run(until=8.0)
            return {
                "latency": mn.handoff_latencies[0]
                if mn.handoff_latencies
                else float("nan"),
                "interruption": sink.max_gap(),
                "loss_rate": sink.loss_rate(source.packets_sent),
            }

        return scenario

    replications = replicate_grid(
        [make_case_scenario(stations) for stations in cases.values()],
        seeds,
        backend=backend,
    )
    rows = []
    for label, replication in zip(cases, replications):
        rows.append(
            [
                label,
                replication.mean("latency"),
                replication.mean("interruption"),
                replication.mean("loss_rate"),
            ]
        )
    text = format_table(
        ["case", "latency_s", "interruption_s", "loss_rate"],
        rows,
        title="E7 (Fig 3.4): intra-domain handoff cases",
    )
    return ExperimentResult(
        experiment_id="E7",
        title="Intra-domain handoff cases",
        x_label="case",
        x_values=list(cases),
        series={
            "latency_s": [row[1] for row in rows],
            "interruption_s": [row[2] for row in rows],
            "loss_rate": [row[3] for row in rows],
        },
        text=text,
        notes="All three §3.2 cases complete with sub-100ms interruption; "
        "crossing tiers costs no more than staying within one.",
    )


def experiment_e7_blocking(
    seeds: Iterable[int] = DEFAULT_SEEDS,
    offered_loads=(4, 8, 12, 16, 20),
    channels: int = 8,
    backend: Optional[ExecutionBackend] = None,
) -> ExperimentResult:
    """Channel overflow: handoffs into a small micro cell, with and
    without the paper's fallback to the macro tier."""

    def make_scenario(load):
        def scenario(seed: int) -> dict[str, float]:
            outcomes = {"with": 0, "without": 0}
            for overflow in (True, False):
                world = MultiTierWorld(
                    domain_kwargs={"guard_channels": 0}
                )
                sim = world.sim
                d1 = world.domain1
                target = d1["E"]
                target.channels._capacity = channels
                # Residents occupy the target cell up to its capacity.
                for index in range(load):
                    resident = world.add_mobile(f"res{index}")
                    resident.initial_attach(target)
                sim.run(until=0.5)
                mover = world.add_mobile("mover")
                assert mover.initial_attach(d1["F"])
                sim.run(until=1.0)

                completed = []

                def attempt():
                    ok = yield from mover.perform_handoff(target)
                    if not ok and overflow:
                        ok = yield from mover.perform_handoff(d1["R2"])
                    completed.append(ok)

                sim.process(attempt())
                sim.run(until=4.0)
                key = "with" if overflow else "without"
                outcomes[key] = 1 if (completed and completed[0]) else 0
            return {
                "success_with_overflow": float(outcomes["with"]),
                "success_without_overflow": float(outcomes["without"]),
            }

        return scenario

    return sweep(
        "E7b",
        f"E7b (Fig 3.4 case c): handoff success vs load ({channels} channels)",
        "resident_mobiles",
        list(offered_loads),
        make_scenario,
        seeds,
        ["success_with_overflow", "success_without_overflow"],
        notes="Once the micro cell fills, handoffs without macro overflow are "
        "blocked; the paper's fallback keeps success at 1.0.",
        backend=backend,
    )


# ----------------------------------------------------------------------
# E8 — Fig 4.1: the headline scheme comparison
# ----------------------------------------------------------------------
def experiment_e8(
    seeds: Iterable[int] = DEFAULT_SEEDS,
    handoffs: int = 6,
    handoff_interval: float = 2.0,
    duration: float = 16.0,
    backend: Optional[ExecutionBackend] = None,
) -> ExperimentResult:
    """Fig 4.1: headline scheme comparison (Mobile IP / CIP hard / semisoft / RSMC)."""
    rows = []
    series: dict[str, list[float]] = {
        "loss_rate": [], "mean_delay": [], "jitter": [],
        "max_gap": [], "duplicates": [],
    }
    replications = replicate_grid(
        [
            partial(
                baselines.run_scheme,
                name,
                handoffs=handoffs,
                handoff_interval=handoff_interval,
                duration=duration,
            )
            for name in baselines.SCHEMES
        ],
        seeds,
        backend=backend,
    )
    for name, replication in zip(baselines.SCHEMES, replications):
        row = [
            name,
            replication.mean("loss_rate"),
            replication.mean("mean_delay"),
            replication.mean("jitter"),
            replication.mean("max_gap"),
            replication.mean("duplicates"),
        ]
        rows.append(row)
        for index, key in enumerate(series):
            series[key].append(row[index + 1])
    text = format_table(
        ["scheme", "loss_rate", "mean_delay_s", "jitter_s", "max_gap_s", "duplicates"],
        rows,
        title=(
            "E8 (Fig 4.1): CBR video to a roaming MN, "
            f"{handoffs} handoffs @ {handoff_interval}s"
        ),
    )
    return ExperimentResult(
        experiment_id="E8",
        title="Scheme comparison: Mobile IP vs CIP hard vs CIP semisoft vs RSMC",
        x_label="scheme",
        x_values=list(baselines.SCHEMES),
        series=series,
        text=text,
        notes="Expected shape: loss(MobileIP) > loss(CIP hard) > "
        "loss(semisoft) ~= loss(RSMC) ~= 0; Mobile IP also pays triangle "
        "delay, semisoft pays duplicates, RSMC pays a small buffer-flush "
        "delay spike instead.",
    )


# ----------------------------------------------------------------------
# E10 — paging / idle efficiency (Cellular IP + §4 claim)
# ----------------------------------------------------------------------
def experiment_e10(
    seeds: Iterable[int] = DEFAULT_SEEDS,
    mobile_counts=(2, 4, 8, 16),
    duration: float = 30.0,
    backend: Optional[ExecutionBackend] = None,
) -> ExperimentResult:
    """Idle-mode economy: a population of idle mobiles maintained by slow
    paging-updates versus one forced to keep route caches alive at the
    route-update cadence (no paging support)."""

    def run_population(seed: int, count: int, with_paging: bool) -> dict[str, float]:
        sim, domain, gw, leaves, internet, cn, _mn = baselines.build_cip_world()
        domain.route_update_time = 0.5
        domain.active_state_timeout = 1.0
        # Without paging support, idle mobiles must refresh at the fast
        # route cadence to stay reachable.
        domain.paging_update_time = 5.0 if with_paging else 0.5
        from repro.cellularip import CIPMobileHost
        from repro.net import ip as make_ip

        hosts = []
        for index in range(count):
            host = CIPMobileHost(
                sim, f"mn{index}", make_ip(f"10.200.1.{index + 1}"), domain
            )
            host.attach_to(leaves[index % len(leaves)])
            hosts.append(host)
        sim.run(until=duration)
        control = domain.total_control_packets()

        # First-packet delay to one idle host (found via paging caches).
        target = hosts[-1]
        sink = FlowSink()
        target.on_data.append(sink.bind(sim))
        probe = Packet(
            src=cn.address, dst=target.address, size=300,
            created_at=sim.now, protocol="data", flow_id="probe", seq=0,
        )
        sink.flow_id = "probe"
        internet.receive(probe)
        sim.run(until=duration + 3.0)
        delay = sink.delays[0] if sink.delays else float("nan")
        return {"control_per_s": control / duration, "first_packet_delay": delay}

    def make_scenario(count):
        def scenario(seed: int) -> dict[str, float]:
            paging = run_population(seed, count, with_paging=True)
            forced = run_population(seed, count, with_paging=False)
            return {
                "paging_control_per_s": paging["control_per_s"],
                "no_paging_control_per_s": forced["control_per_s"],
                "paging_first_packet_delay": paging["first_packet_delay"],
                "savings_factor": forced["control_per_s"]
                / max(paging["control_per_s"], 1e-9),
            }

        return scenario

    return sweep(
        "E10",
        "E10: idle-mode paging economy (paging-update 5s vs forced route-update 0.5s)",
        "idle_mobiles",
        list(mobile_counts),
        make_scenario,
        seeds,
        [
            "paging_control_per_s",
            "no_paging_control_per_s",
            "paging_first_packet_delay",
            "savings_factor",
        ],
        notes="Paging cuts idle-mode control traffic by roughly the period "
        "ratio (~10x) while the first downlink packet still arrives (it "
        "follows the paging caches), paying only a small extra delay.",
        backend=backend,
    )
