"""Pluggable execution backends for replications and sweeps.

The paper's evaluation (E1-E11, T1/T2) is embarrassingly parallel: every
(seed, sweep-point) pair builds its own world and its own
:class:`~repro.sim.kernel.Simulator`, so scenario jobs share no state.
:func:`repro.experiments.runner.replicate` and
:func:`~repro.experiments.runner.sweep` flatten their work into a list
of zero-argument *jobs* and hand the list to an
:class:`ExecutionBackend`; the backend returns results **in job order**,
which makes aggregation deterministic regardless of how (or where) the
jobs actually ran.

Two backends ship:

* :class:`SerialBackend` — run jobs in order in the calling process.
  This is the default and produces bit-identical output to the historic
  serial code path.
* :class:`ProcessPoolBackend` — fan jobs out over forked worker
  processes.  Scenario functions are closures, which ordinary
  ``concurrent.futures`` pickling rejects, so the pool forks workers
  that inherit the closures and only pickles the *results* (plain
  metric dicts) back over a queue.  Jobs are claimed dynamically from a
  shared counter (work stealing), so heterogeneous batches — a ``mega``
  scenario next to a ``sparse-rural`` one — stay load-balanced.  The
  first job failure aborts the whole batch and the *original* exception
  type is re-raised in the parent with the worker traceback attached as
  its ``__cause__``.  On platforms without ``fork`` the backend warns
  on stderr and degrades to serial execution rather than failing.

Determinism guarantee
---------------------
A scenario derives all randomness from its seed (see
:mod:`repro.sim.rng`), builds a private simulator, and returns plain
floats.  Backends only change *where* jobs run, never their inputs or
the aggregation order, so for any job list::

    SerialBackend().run(jobs) == ProcessPoolBackend(n).run(jobs)

for every ``n`` — verified by ``tests/test_experiments_exec.py``.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue as queue_module
import sys
import traceback
from abc import ABC, abstractmethod
from typing import Callable, Sequence

#: A unit of work: builds its own world, returns a picklable result.
Job = Callable[[], object]


class RemoteTraceback(Exception):
    """Carries a worker-process traceback as the ``__cause__`` of the
    re-raised job exception, so the original failure site stays visible
    in the parent's traceback output."""

    def __init__(self, formatted: str) -> None:
        super().__init__(formatted)
        self.formatted = formatted

    def __str__(self) -> str:
        return f"\n\n--- worker traceback ---\n{self.formatted}"


class ExecutionBackend(ABC):
    """Strategy for running a batch of independent scenario jobs."""

    @abstractmethod
    def run(self, jobs: Sequence[Job]) -> list:
        """Run every job and return their results in job order."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__}>"


class SerialBackend(ExecutionBackend):
    """Run jobs one after another in the calling process."""

    def run(self, jobs: Sequence[Job]) -> list:
        return [job() for job in jobs]


def _claim_next_index(next_index) -> int:
    """Atomically claim the next unstarted job index (work stealing)."""
    with next_index.get_lock():
        index = next_index.value
        next_index.value = index + 1
    return index


def _pool_worker(results_queue, jobs, next_index) -> None:
    """Claim jobs off the shared counter and report each result.

    Runs in a forked child: ``jobs`` (closures included) arrive via the
    inherited address space, only ``(index, ok, payload)`` tuples cross
    back to the parent.  Claiming from ``next_index`` instead of a
    static round-robin split keeps heterogeneous batches balanced: a
    worker stuck on one long job stops claiming, and the others drain
    the rest.
    """
    while True:
        index = _claim_next_index(next_index)
        if index >= len(jobs):
            return
        try:
            payload = jobs[index]()
            # The queue pickles in a background feeder thread whose
            # errors vanish; pickling eagerly turns an unpicklable
            # result into an ordinary job failure instead of a lost
            # message (which would hang the parent).
            pickle.dumps(payload)
        except Exception as exc:
            # Exception only: KeyboardInterrupt/SystemExit must kill the
            # worker (the parent reports the missing results), not be
            # recorded as a job failure.
            try:
                # Full round trip: an exception can pickle fine but fail
                # to UNpickle (e.g. a multi-arg __init__), which would
                # crash the parent's queue reader instead of reporting.
                pickle.loads(pickle.dumps(exc))
                wire_exc = exc
            except Exception:
                wire_exc = None  # parent falls back to the traceback text
            results_queue.put(
                (index, False, (wire_exc, traceback.format_exc()))
            )
            # Fail fast: the batch is doomed, claim nothing further.
            return
        results_queue.put((index, True, payload))


class ProcessPoolBackend(ExecutionBackend):
    """Run jobs across ``jobs`` forked worker processes.

    Workers claim job indices dynamically from a shared counter (work
    stealing), so a batch mixing long and short jobs stays balanced.
    Results are re-ordered by job index before being returned, so
    callers observe exactly the serial ordering regardless of which
    worker ran what.

    Failure semantics: the first failing job aborts the batch — the
    remaining workers are terminated rather than allowed to finish —
    and the job's original exception is re-raised in the parent with
    the worker traceback attached as its ``__cause__``.

    Parameters
    ----------
    jobs:
        Worker process count.  ``None`` uses ``os.cpu_count()``.
    """

    def __init__(self, jobs: int | None = None) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be at least 1, got {jobs}")
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        self._can_fork = "fork" in multiprocessing.get_all_start_methods()
        self._warned_degrade = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ProcessPoolBackend jobs={self.jobs}>"

    def _warn_serial_degrade(self) -> None:
        """Tell the user once that their --jobs request is not honoured."""
        if self._warned_degrade:
            return
        self._warned_degrade = True
        print(
            f"repro: warning: --jobs {self.jobs} requested but this "
            "platform lacks the 'fork' start method; running jobs "
            "serially (results are identical, just slower)",
            file=sys.stderr,
        )

    def run(self, jobs: Sequence[Job]) -> list:
        """Run ``jobs`` across the worker pool; results in job order.

        Deterministic: workers only change *where* a job runs, never
        its inputs, and results are re-ordered by job index, so the
        returned list equals ``SerialBackend().run(jobs)`` for any
        worker count.  Degrades to in-process serial execution (with a
        one-time stderr warning) on platforms without ``fork``.
        """
        jobs = list(jobs)
        worker_count = min(self.jobs, len(jobs))
        if not self._can_fork:
            if worker_count > 1:
                # A real degrade: parallelism was requested and possible
                # for this batch, but the platform cannot deliver it.
                self._warn_serial_degrade()
            return [job() for job in jobs]
        if worker_count <= 1:
            # One worker: the serial path is already correct.
            return [job() for job in jobs]

        context = multiprocessing.get_context("fork")
        results_queue = context.Queue()
        next_index = context.Value("l", 0)
        workers = [
            context.Process(
                target=_pool_worker,
                args=(results_queue, jobs, next_index),
                daemon=True,
            )
            for _ in range(worker_count)
        ]
        for worker in workers:
            worker.start()

        results: list = [None] * len(jobs)
        failure: tuple[int, Exception | None, str] | None = None
        received = 0

        def record(index: int, ok: bool, payload) -> None:
            """Store one worker message; sets ``failure`` on a bad one."""
            nonlocal received, failure
            received += 1
            if ok:
                results[index] = payload
            else:
                failure = (index, *payload)

        try:
            while received < len(jobs) and failure is None:
                try:
                    record(*results_queue.get(timeout=1.0))
                except queue_module.Empty:
                    if any(w.is_alive() for w in workers):
                        continue
                    # Every worker has exited.  Drain results that raced
                    # the liveness check, then fail loudly if any are
                    # still missing — a clean exit (code 0) with lost
                    # results must error, not hang.
                    while received < len(jobs) and failure is None:
                        try:
                            record(*results_queue.get_nowait())
                        except queue_module.Empty:
                            break
                    if failure is not None:
                        break
                    if received < len(jobs):
                        codes = sorted({w.exitcode for w in workers})
                        raise RuntimeError(
                            f"worker processes exited (exit codes {codes}) "
                            f"with {len(jobs) - received} result(s) missing"
                        )
                # Fail fast: the loop condition aborts the batch on the
                # first failure instead of letting the rest complete.
        finally:
            if failure is not None:
                for worker in workers:
                    worker.terminate()
            for worker in workers:
                worker.join(timeout=5.0)
                if worker.is_alive():  # pragma: no cover - defensive
                    worker.terminate()

        if failure is not None:
            index, exc, formatted = failure
            if exc is not None:
                # Re-raise the original exception type; the remote
                # traceback rides along as the cause.
                raise exc from RemoteTraceback(formatted)
            raise RuntimeError(
                f"job {index} failed with an unpicklable exception:\n"
                f"{formatted}"
            )
        return results


# ----------------------------------------------------------------------
# Process-wide default (set by the CLI's --jobs flag)
# ----------------------------------------------------------------------
_default_backend: ExecutionBackend = SerialBackend()


def get_default_backend() -> ExecutionBackend:
    """The backend used when a caller does not pass one explicitly."""
    return _default_backend


def set_default_backend(backend: ExecutionBackend) -> ExecutionBackend:
    """Replace the process-wide default backend; returns the old one."""
    global _default_backend
    previous = _default_backend
    _default_backend = backend
    return previous


def backend_for_jobs(jobs: int | None) -> ExecutionBackend:
    """The natural backend for a ``--jobs N`` request."""
    if jobs is None or jobs <= 1:
        return SerialBackend()
    return ProcessPoolBackend(jobs)


__all__ = [
    "ExecutionBackend",
    "Job",
    "ProcessPoolBackend",
    "RemoteTraceback",
    "SerialBackend",
    "backend_for_jobs",
    "get_default_backend",
    "set_default_backend",
]
