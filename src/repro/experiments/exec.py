"""Pluggable execution backends for replications and sweeps.

The paper's evaluation (E1-E11, T1/T2) is embarrassingly parallel: every
(seed, sweep-point) pair builds its own world and its own
:class:`~repro.sim.kernel.Simulator`, so scenario jobs share no state.
:func:`repro.experiments.runner.replicate` and
:func:`~repro.experiments.runner.sweep` flatten their work into a list
of zero-argument *jobs* and hand the list to an
:class:`ExecutionBackend`; the backend returns results **in job order**,
which makes aggregation deterministic regardless of how (or where) the
jobs actually ran.

Two backends ship:

* :class:`SerialBackend` — run jobs in order in the calling process.
  This is the default and produces bit-identical output to the historic
  serial code path.
* :class:`ProcessPoolBackend` — fan jobs out over forked worker
  processes.  Scenario functions are closures, which ordinary
  ``concurrent.futures`` pickling rejects, so the pool forks workers
  that inherit the closures and only pickles the *results* (plain
  metric dicts) back over a queue.  On platforms without ``fork`` the
  backend degrades to serial execution rather than failing.

Determinism guarantee
---------------------
A scenario derives all randomness from its seed (see
:mod:`repro.sim.rng`), builds a private simulator, and returns plain
floats.  Backends only change *where* jobs run, never their inputs or
the aggregation order, so for any job list::

    SerialBackend().run(jobs) == ProcessPoolBackend(n).run(jobs)

for every ``n`` — verified by ``tests/test_experiments_exec.py``.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue as queue_module
import traceback
from abc import ABC, abstractmethod
from typing import Callable, Sequence

#: A unit of work: builds its own world, returns a picklable result.
Job = Callable[[], object]


class ExecutionBackend(ABC):
    """Strategy for running a batch of independent scenario jobs."""

    @abstractmethod
    def run(self, jobs: Sequence[Job]) -> list:
        """Run every job and return their results in job order."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__}>"


class SerialBackend(ExecutionBackend):
    """Run jobs one after another in the calling process."""

    def run(self, jobs: Sequence[Job]) -> list:
        return [job() for job in jobs]


def _pool_worker(results_queue, jobs, worker_index, worker_count) -> None:
    """Run ``jobs[worker_index::worker_count]`` and report each result.

    Runs in a forked child: ``jobs`` (closures included) arrive via the
    inherited address space, only ``(index, ok, payload)`` tuples cross
    back to the parent.
    """
    for index in range(worker_index, len(jobs), worker_count):
        try:
            payload = jobs[index]()
            # The queue pickles in a background feeder thread whose
            # errors vanish; pickling eagerly turns an unpicklable
            # result into an ordinary job failure instead of a lost
            # message (which would hang the parent).
            pickle.dumps(payload)
        except Exception:
            # Exception only: KeyboardInterrupt/SystemExit must kill the
            # worker (the parent reports the missing results), not be
            # recorded as a job failure while remaining jobs keep running.
            results_queue.put((index, False, traceback.format_exc()))
            continue
        results_queue.put((index, True, payload))


class ProcessPoolBackend(ExecutionBackend):
    """Run jobs across ``jobs`` forked worker processes.

    Work is split round-robin (job ``i`` runs on worker ``i % n``), a
    deterministic static assignment.  Results are re-ordered by job
    index before being returned, so callers observe exactly the serial
    ordering.

    Parameters
    ----------
    jobs:
        Worker process count.  ``None`` uses ``os.cpu_count()``.
    """

    def __init__(self, jobs: int | None = None) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be at least 1, got {jobs}")
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        self._can_fork = "fork" in multiprocessing.get_all_start_methods()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ProcessPoolBackend jobs={self.jobs}>"

    def run(self, jobs: Sequence[Job]) -> list:
        jobs = list(jobs)
        worker_count = min(self.jobs, len(jobs))
        if worker_count <= 1 or not self._can_fork:
            # One worker (or no fork support, e.g. some macOS/Windows
            # configurations): the serial path is already correct.
            return [job() for job in jobs]

        context = multiprocessing.get_context("fork")
        results_queue = context.Queue()
        workers = [
            context.Process(
                target=_pool_worker,
                args=(results_queue, jobs, index, worker_count),
                daemon=True,
            )
            for index in range(worker_count)
        ]
        for worker in workers:
            worker.start()

        results: list = [None] * len(jobs)
        failures: list[tuple[int, str]] = []
        received = 0

        def record(index: int, ok: bool, payload) -> None:
            nonlocal received
            received += 1
            if ok:
                results[index] = payload
            else:
                failures.append((index, payload))

        try:
            while received < len(jobs):
                try:
                    record(*results_queue.get(timeout=1.0))
                except queue_module.Empty:
                    if any(w.is_alive() for w in workers):
                        continue
                    # Every worker has exited.  Drain results that raced
                    # the liveness check, then fail loudly if any are
                    # still missing — a clean exit (code 0) with lost
                    # results must error, not hang.
                    while received < len(jobs):
                        try:
                            record(*results_queue.get_nowait())
                        except queue_module.Empty:
                            break
                    if received < len(jobs):
                        codes = sorted({w.exitcode for w in workers})
                        raise RuntimeError(
                            f"worker processes exited (exit codes {codes}) "
                            f"with {len(jobs) - received} result(s) missing"
                        )
        finally:
            for worker in workers:
                worker.join(timeout=5.0)
                if worker.is_alive():  # pragma: no cover - defensive
                    worker.terminate()

        if failures:
            index, formatted = failures[0]
            raise RuntimeError(
                f"{len(failures)} job(s) failed; first failure (job {index}):\n"
                f"{formatted}"
            )
        return results


# ----------------------------------------------------------------------
# Process-wide default (set by the CLI's --jobs flag)
# ----------------------------------------------------------------------
_default_backend: ExecutionBackend = SerialBackend()


def get_default_backend() -> ExecutionBackend:
    """The backend used when a caller does not pass one explicitly."""
    return _default_backend


def set_default_backend(backend: ExecutionBackend) -> ExecutionBackend:
    """Replace the process-wide default backend; returns the old one."""
    global _default_backend
    previous = _default_backend
    _default_backend = backend
    return previous


def backend_for_jobs(jobs: int | None) -> ExecutionBackend:
    """The natural backend for a ``--jobs N`` request."""
    if jobs is None or jobs <= 1:
        return SerialBackend()
    return ProcessPoolBackend(jobs)


__all__ = [
    "ExecutionBackend",
    "Job",
    "ProcessPoolBackend",
    "SerialBackend",
    "backend_for_jobs",
    "get_default_backend",
    "set_default_backend",
]
