"""The declarative fluid-background block of a scenario spec.

A :class:`FluidBackground` describes an *untracked* population that
exists only as analytic load: how many mobiles it has, how fast they
drift, how active they are and how much air they burn when active.
Pure data, validated eagerly — the spec layer coerces a plain mapping
into this class exactly like it does for the policy block, so catalog
entries and sweep axes stay plain dictionaries.  Deterministic: the
block holds no state and draws nothing; two equal blocks always
induce identical background claims.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Bytes of over-the-air signalling one background handoff costs the
#: cell (registration request + reply, §3.2 scale); converted to a
#: bit-rate via the fluid-flow crossing rate.
HANDOFF_SIGNALLING_BYTES = 96

#: A background claim never eats more than this fraction of a cell's
#: budget: the discrete foreground must always retain some airtime,
#: otherwise its packets would take unbounded (or negative) airtime.
MAX_BACKGROUND_FRACTION = 0.95


@dataclass(frozen=True)
class FluidBackground:
    """The analytic background population of a hybrid scenario.

    Parameters
    ----------
    population:
        Number of untracked background mobiles spread uniformly over
        the roam rectangle.  ``0`` disables the layer entirely — the
        builder then wires nothing, byte-identical to ``fluid=None``.
    mean_speed:
        Mean background speed (m/s) for the fluid-flow crossing-rate
        model (``2 v / (pi r)`` per mobile in a cell of radius ``r``).
    activity:
        Fraction of background mobiles holding an active session at any
        instant; a cell's offered load in Erlangs is
        ``occupants * activity``.
    per_mobile_bps:
        Downlink air-interface demand (bit/s) of one *active*
        background session.
    uplink_fraction:
        Uplink background demand as a fraction of the downlink demand.
    update_period:
        Seconds between background-claim refreshes; also the time
        resolution of the drift below.
    drift:
        ``(vx, vy)`` m/s bulk drift of the background density (e.g. a
        commute wave moving across town).  The claims become
        time-varying: each refresh evaluates the density rectangle
        displaced by ``drift * now``.
    max_cell_load:
        Cap on the fraction of a cell's budget the background may
        claim, clamped to :data:`MAX_BACKGROUND_FRACTION`.
    """

    population: int
    mean_speed: float = 1.5
    activity: float = 0.1
    per_mobile_bps: float = 16e3
    uplink_fraction: float = 0.5
    update_period: float = 1.0
    drift: tuple[float, float] = (0.0, 0.0)
    max_cell_load: float = 0.9

    def __post_init__(self) -> None:
        if self.population < 0:
            raise ValueError(
                f"fluid population must be non-negative, got {self.population}"
            )
        object.__setattr__(self, "population", int(self.population))
        if self.mean_speed <= 0:
            raise ValueError(f"mean_speed must be positive, got {self.mean_speed}")
        if not 0.0 <= self.activity <= 1.0:
            raise ValueError(f"activity must be in [0, 1], got {self.activity}")
        if self.per_mobile_bps <= 0:
            raise ValueError(
                f"per_mobile_bps must be positive, got {self.per_mobile_bps}"
            )
        if not 0.0 <= self.uplink_fraction <= 1.0:
            raise ValueError(
                f"uplink_fraction must be in [0, 1], got {self.uplink_fraction}"
            )
        if self.update_period <= 0:
            raise ValueError(
                f"update_period must be positive, got {self.update_period}"
            )
        drift = tuple(float(v) for v in self.drift)
        if len(drift) != 2:
            raise ValueError(f"drift must be (vx, vy), got {self.drift!r}")
        object.__setattr__(self, "drift", drift)
        if not 0.0 < self.max_cell_load <= MAX_BACKGROUND_FRACTION:
            raise ValueError(
                f"max_cell_load must be in (0, {MAX_BACKGROUND_FRACTION}], "
                f"got {self.max_cell_load}"
            )

    @property
    def enabled(self) -> bool:
        """True when there is any background population to model."""
        return self.population > 0


__all__ = [
    "FluidBackground",
    "HANDOFF_SIGNALLING_BYTES",
    "MAX_BACKGROUND_FRACTION",
]
