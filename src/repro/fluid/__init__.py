"""Hybrid fluid/discrete scale layer.

City-scale populations are far beyond what per-packet simulation can
carry, but their *aggregate* load on each cell is exactly what the
classic teletraffic models predict.  This package computes that load
analytically — fluid-flow boundary-crossing rates for mobility
(:mod:`repro.analysis.fluidflow`) and Erlang occupancy for sessions
(:mod:`repro.analysis.erlang`) — and feeds it into each cell's
:class:`~repro.radio.channel.SharedChannel` as a time-varying
*background claim*, while a small discrete foreground cohort keeps
full packet-level metrics.

Deterministic by construction: the layer draws no random streams —
every claim is closed-form arithmetic over the spec — so hybrid runs
keep the repo's byte-reproducibility guarantee, and a disabled block
(``fluid=None`` or ``population=0``) wires nothing at all, leaving
legacy runs byte-identical.  See ``docs/HYBRID.md`` for the model, its
assumptions and when hybrid results are comparable to all-discrete
runs.
"""

from repro.fluid.config import FluidBackground
from repro.fluid.driver import (
    FluidDriver,
    fluid_channel_pairs,
    install_fluid_background,
)
from repro.fluid.model import (
    CellBackgroundState,
    cell_background_state,
    disc_rect_overlap_fraction,
)

__all__ = [
    "CellBackgroundState",
    "FluidBackground",
    "FluidDriver",
    "cell_background_state",
    "disc_rect_overlap_fraction",
    "fluid_channel_pairs",
    "install_fluid_background",
]
