"""The analytic core of the hybrid layer: per-cell background load.

Composes the repo's existing closed forms — fluid-flow boundary
crossing rates (:mod:`repro.analysis.fluidflow`) and Erlang-B blocking
(:mod:`repro.analysis.erlang`) — into one per-cell answer: *how many
bits per second of air does an N-mobile background population burn in
this cell right now?*

Everything here is deterministic arithmetic: no simulator, no random
streams.  The only numeric approximation is the disc-rectangle overlap
integral, evaluated by a fixed midpoint grid so every process on every
platform gets the same value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.analysis.erlang import erlang_b
from repro.analysis.fluidflow import circular_cell_crossing_rate
from repro.fluid.config import (
    HANDOFF_SIGNALLING_BYTES,
    FluidBackground,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.radio.cells import Cell
    from repro.radio.geometry import Point, Rectangle

#: Midpoint-grid resolution (per axis) of the overlap quadrature.
OVERLAP_GRID = 64


def disc_rect_overlap_fraction(
    center: "Point",
    radius: float,
    rect: "Rectangle",
    resolution: int = OVERLAP_GRID,
) -> float:
    """Fraction of ``rect``'s area covered by the disc.

    Fixed midpoint quadrature on a ``resolution x resolution`` grid —
    deterministic (same value in every process) and accurate to well
    under a percent at the default resolution, which is far tighter
    than the fluid model's own assumptions.
    """
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    xs = rect.x_min + (np.arange(resolution) + 0.5) * (rect.width / resolution)
    ys = rect.y_min + (np.arange(resolution) + 0.5) * (rect.height / resolution)
    dx = xs[:, None] - center.x
    dy = ys[None, :] - center.y
    inside = (dx * dx + dy * dy) <= radius * radius
    return float(np.count_nonzero(inside)) / (resolution * resolution)


@dataclass(frozen=True)
class CellBackgroundState:
    """One cell's analytic background load at one instant."""

    #: Expected background mobiles inside the cell's coverage disc.
    occupants: float
    #: Offered session load in Erlangs (``occupants * activity``).
    offered_erlangs: float
    #: Erlang-B blocking probability at the cell's channel count.
    blocking: float
    #: Carried load in Erlangs (offered load thinned by blocking).
    carried_erlangs: float
    #: Aggregate background handoffs/s across the cell boundary.
    crossing_rate: float
    #: Background downlink claim in bit/s (sessions + signalling).
    downlink_bps: float
    #: Background uplink claim in bit/s.
    uplink_bps: float


def cell_background_state(
    cell: "Cell",
    config: FluidBackground,
    rect: "Rectangle",
    offset: tuple[float, float] = (0.0, 0.0),
) -> CellBackgroundState:
    """The background load ``config`` imposes on ``cell``.

    ``rect`` is the rectangle the background density is uniform over
    (the scenario's roam area) and ``offset`` displaces the *cell*
    relative to it — the driver passes ``drift * now`` so a drifting
    population is just a moving frame.  The chain is:

    1. occupancy — uniform density times the disc/rect overlap;
    2. sessions — ``occupants * activity`` Erlangs offered, thinned by
       Erlang-B blocking at the cell's channel count, each carried
       session burning ``per_mobile_bps``;
    3. mobility — the fluid-flow crossing rate ``2 v / (pi r)`` per
       occupant, each crossing costing
       :data:`~repro.fluid.config.HANDOFF_SIGNALLING_BYTES` on the air.

    Pure function: no clamping to the cell's actual budget here (the
    channel applies its own cap on :meth:`~repro.radio.channel.SharedChannel.set_background`).
    """
    from repro.radio.geometry import Point

    center = Point(cell.center.x - offset[0], cell.center.y - offset[1])
    overlap = disc_rect_overlap_fraction(center, cell.radius, rect)
    occupants = config.population * overlap
    offered = occupants * config.activity
    blocking = erlang_b(cell.channels, offered)
    carried = offered * (1.0 - blocking)
    crossing_rate = occupants * circular_cell_crossing_rate(
        config.mean_speed, cell.radius
    )
    signalling_bps = crossing_rate * HANDOFF_SIGNALLING_BYTES * 8.0
    downlink_bps = carried * config.per_mobile_bps + signalling_bps
    uplink_bps = (
        carried * config.per_mobile_bps * config.uplink_fraction + signalling_bps
    )
    return CellBackgroundState(
        occupants=occupants,
        offered_erlangs=offered,
        blocking=blocking,
        carried_erlangs=carried,
        crossing_rate=crossing_rate,
        downlink_bps=downlink_bps,
        uplink_bps=uplink_bps,
    )


__all__ = [
    "OVERLAP_GRID",
    "CellBackgroundState",
    "cell_background_state",
    "disc_rect_overlap_fraction",
]
