"""The live half of the hybrid layer: feeding claims into channels.

A :class:`FluidDriver` is a simulation process that periodically
re-evaluates the analytic per-cell background load
(:func:`repro.fluid.model.cell_background_state`) and pushes it into
each cell's :class:`~repro.radio.channel.SharedChannel` via
:meth:`~repro.radio.channel.SharedChannel.set_background`.  The
discrete foreground cohort then contends for the *residual* budget —
its airtimes stretch and its admission headroom shrinks exactly as if
the background mobiles were simulated, at O(cells) cost per refresh
instead of O(population) events.

Determinism: the driver consumes no random streams and schedules one
process with a fixed period, so a hybrid run is as byte-reproducible
as a legacy one — and a driver with ``population=0`` is never built
at all, keeping fluid-off runs byte-identical to pre-fluid builds.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from repro.fluid.config import FluidBackground
from repro.fluid.model import CellBackgroundState, cell_background_state
from repro.radio.channel import DOWNLINK, UPLINK

if TYPE_CHECKING:  # pragma: no cover
    from repro.radio.cells import Cell
    from repro.radio.channel import SharedChannel
    from repro.radio.geometry import Rectangle
    from repro.sim.kernel import Simulator


def fluid_channel_pairs(stations: Iterable) -> list[tuple["Cell", "SharedChannel"]]:
    """Extract ``(cell, shared_channel)`` pairs from station-likes.

    Accepts any iterable of objects carrying ``.cell`` and
    ``.shared_channel`` (every stack's base-station/agent types do);
    stations without a channel (legacy radio links) are skipped.
    """
    return [
        (station.cell, station.shared_channel)
        for station in stations
        if getattr(station, "shared_channel", None) is not None
    ]


class FluidDriver:
    """Applies a :class:`FluidBackground` to a set of cell channels.

    Parameters
    ----------
    sim:
        The run's simulator; the driver schedules its refresh process
        here (``fluid-driver``).
    config:
        The background block (must have ``population > 0`` — builders
        skip construction entirely for empty backgrounds).
    pairs:
        ``(cell, channel)`` for every contended cell in the world
        (see :func:`fluid_channel_pairs`).
    rect:
        The rectangle the background density is uniform over — the
        scenario's roam area.
    """

    def __init__(
        self,
        sim: "Simulator",
        config: FluidBackground,
        pairs: list[tuple["Cell", "SharedChannel"]],
        rect: "Rectangle",
    ) -> None:
        if not config.enabled:
            raise ValueError("FluidDriver requires a positive background population")
        if not pairs:
            raise ValueError(
                "FluidDriver needs at least one (cell, channel) pair; "
                "hybrid scenarios require shared channels"
            )
        self.sim = sim
        self.config = config
        self.pairs = pairs
        self.rect = rect
        #: Static background (no drift) is evaluated once and re-used.
        self._static_states: Optional[list[CellBackgroundState]] = None
        # Run summary accumulators (reported via metrics()).
        self.updates = 0
        self.peak_cell_load = 0.0
        self._blocking_weight = 0.0
        self._blocking_sum = 0.0
        self._crossing_sum = 0.0
        #: The driver's refresh process (shard runs neuter this when the
        #: radio part lives in another shard).
        self.process = sim.process(self._run(), name="fluid-driver")

    # ------------------------------------------------------------------
    def _states(self, now: float) -> list[CellBackgroundState]:
        drifting = self.config.drift != (0.0, 0.0)
        if not drifting and self._static_states is not None:
            return self._static_states
        offset = (self.config.drift[0] * now, self.config.drift[1] * now)
        states = [
            cell_background_state(cell, self.config, self.rect, offset)
            for cell, _channel in self.pairs
        ]
        if not drifting:
            self._static_states = states
        return states

    def refresh(self) -> None:
        """Evaluate the model at ``sim.now`` and push claims."""
        states = self._states(self.sim.now)
        for (_cell, channel), state in zip(self.pairs, states):
            cap = self.config.max_cell_load
            down = channel.set_background(
                DOWNLINK, state.downlink_bps, max_fraction=cap
            )
            channel.set_background(UPLINK, state.uplink_bps, max_fraction=cap)
            load = down / channel.rates[DOWNLINK]
            if load > self.peak_cell_load:
                self.peak_cell_load = load
            self._blocking_sum += state.blocking * state.occupants
            self._blocking_weight += state.occupants
            self._crossing_sum += state.crossing_rate
        self.updates += 1

    def _run(self):
        while True:
            self.refresh()
            yield self.sim.timeout(self.config.update_period)

    # ------------------------------------------------------------------
    def metrics(self) -> dict[str, float]:
        """The gated ``fluid.*`` metric family for hybrid runs.

        Plain floats, never NaN — the same table contract every other
        metric family honors.  Only hybrid runs carry these keys, so
        fluid-off tables keep their legacy shape.
        """
        updates = max(self.updates, 1)
        return {
            "fluid.background_population": float(self.config.population),
            "fluid.updates": float(self.updates),
            "fluid.peak_cell_load": self.peak_cell_load,
            "fluid.mean_blocking": (
                self._blocking_sum / self._blocking_weight
                if self._blocking_weight > 0
                else 0.0
            ),
            "fluid.handoff_rate": self._crossing_sum / updates,
        }


def install_fluid_background(
    sim: "Simulator",
    spec,
    stations: Iterable,
    rect: "Rectangle",
) -> Optional[FluidDriver]:
    """Build and start the scenario's fluid driver, if any.

    The one call every stack adapter makes after assembling its
    stations: returns ``None`` (and touches nothing) unless the spec
    declares a non-empty ``fluid`` block, so legacy builds stay
    byte-identical.
    """
    config = getattr(spec, "fluid", None)
    if config is None or not config.enabled:
        return None
    return FluidDriver(sim, config, fluid_channel_pairs(stations), rect)


__all__ = ["FluidDriver", "fluid_channel_pairs", "install_fluid_background"]
