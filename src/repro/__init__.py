"""repro — reproduction of "Mobility Management of IP-Based Multi-tier
Network Supporting Mobile Multimedia Communication Services"
(Wang, Tsai, Huang — ICDCS Workshops 2002).

Subpackages
-----------
``repro.sim``
    Discrete-event simulation kernel.
``repro.net``
    Packet-level IPv4 substrate (links, routers, tunnels).
``repro.radio``
    Cells, tiers, propagation and signal-driven handoff triggers.
``repro.mobility``
    Movement models from pedestrian to vehicular.
``repro.mobileip`` / ``repro.cellularip``
    The two protocol substrates the paper builds on.
``repro.multitier``
    The paper's contribution: hierarchical location management, the
    three-factor handoff strategy, and the RSMC.
``repro.traffic`` / ``repro.metrics``
    Workload generation and QoS measurement.
``repro.experiments``
    The reproduction harness: baselines and one function per figure.
"""

__version__ = "1.0.0"
