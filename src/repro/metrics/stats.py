"""Statistical reduction for simulation outputs.

Replicated runs produce per-seed samples; these helpers compute means
with Student-t confidence intervals (scipy) and render compact ASCII
tables/series for the benchmark harness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np
from scipy import stats as scipy_stats


@dataclass(frozen=True)
class Estimate:
    """A mean with its confidence half-width."""

    mean: float
    half_width: float
    n: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:
        if math.isnan(self.mean):
            return "nan"
        if self.half_width == 0.0 or math.isnan(self.half_width):
            return f"{self.mean:.4g}"
        return f"{self.mean:.4g} ±{self.half_width:.2g}"


def mean_confidence(samples: Sequence[float], confidence: float = 0.95) -> Estimate:
    """Student-t confidence interval for the mean of ``samples``."""
    values = np.asarray([s for s in samples if not math.isnan(s)], dtype=float)
    n = len(values)
    if n == 0:
        return Estimate(float("nan"), float("nan"), 0)
    mean = float(np.mean(values))
    if n == 1:
        return Estimate(mean, 0.0, 1)
    sem = float(np.std(values, ddof=1)) / math.sqrt(n)
    if sem == 0.0:
        return Estimate(mean, 0.0, n)
    t_crit = float(scipy_stats.t.ppf(0.5 + confidence / 2.0, df=n - 1))
    return Estimate(mean, t_crit * sem, n)


def geometric_mean(samples: Iterable[float]) -> float:
    values = np.asarray(list(samples), dtype=float)
    if len(values) == 0 or np.any(values <= 0):
        return float("nan")
    return float(np.exp(np.mean(np.log(values))))


def ratio(numerator: float, denominator: float) -> float:
    """A safe ratio, nan when the denominator vanishes."""
    if denominator == 0:
        return float("nan")
    return numerator / denominator
