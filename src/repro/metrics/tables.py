"""ASCII rendering of result tables and series.

Every benchmark prints its figure/table through these helpers so the
output format is uniform and diffable (EXPERIMENTS.md records it).
"""

from __future__ import annotations

from typing import Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """A fixed-width table with a rule under the header."""
    texts = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in texts:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("  ".join("-" * width for width in widths))
    for row in texts:
        lines.append(render_row(row))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """A figure as a table: one x column plus one column per line."""
    headers = [x_label] + list(series)
    rows = []
    for index, x in enumerate(x_values):
        row = [x] + [values[index] for values in series.values()]
        rows.append(row)
    return format_table(headers, rows, title=title)


def diff_counts(
    before: dict[str, int],
    after: dict[str, int],
    keys: Optional[Sequence[str]] = None,
) -> dict[str, int]:
    """Per-key difference of two counter snapshots (``after - before``).

    ``keys`` fixes the output order and forces a 0 entry for counters
    absent from both snapshots — the shape the T1 signalling table
    needs when differencing hop totals around a handoff.
    """
    if keys is None:
        keys = list(dict.fromkeys([*before, *after]))
    return {key: after.get(key, 0) - before.get(key, 0) for key in keys}


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # nan
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)
