"""ASCII rendering of result tables and series.

Every benchmark prints its figure/table through these helpers so the
output format is uniform and diffable (EXPERIMENTS.md records it).
"""

from __future__ import annotations

from typing import Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """A fixed-width table with a rule under the header."""
    texts = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in texts:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("  ".join("-" * width for width in widths))
    for row in texts:
        lines.append(render_row(row))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """A figure as a table: one x column plus one column per line."""
    headers = [x_label] + list(series)
    rows = []
    for index, x in enumerate(x_values):
        row = [x] + [values[index] for values in series.values()]
        rows.append(row)
    return format_table(headers, rows, title=title)


def diff_counts(
    before: dict[str, int],
    after: dict[str, int],
    keys: Optional[Sequence[str]] = None,
) -> dict[str, int]:
    """Per-key difference of two counter snapshots (``after - before``).

    ``keys`` fixes the output order and forces a 0 entry for counters
    absent from both snapshots — the shape the T1 signalling table
    needs when differencing hop totals around a handoff.
    """
    if keys is None:
        keys = list(dict.fromkeys([*before, *after]))
    return {key: after.get(key, 0) - before.get(key, 0) for key in keys}


def format_ascii_plot(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    title: Optional[str] = None,
    width: int = 64,
    height: int = 16,
) -> str:
    """A figure as a deterministic ASCII chart: one letter per series.

    Used as the figure fallback when matplotlib is unavailable (see
    :func:`repro.experiments.figures.save_experiment_figure`).  Pure
    function of its inputs — same data, same bytes — so sweep figure
    files stay byte-identical across backends and repeats.

    Parameters
    ----------
    x_label / x_values:
        The shared x axis.  Non-numeric x values are plotted at their
        index positions.
    series:
        ``name -> y values`` (parallel to ``x_values``); NaNs are
        skipped.  Each series is drawn with the letter A, B, C, ... in
        iteration order; overlapping points render as ``*``.
    title / width / height:
        Chart caption and plot-area size in characters.

    Returns
    -------
    str
        The rendered chart, including a legend and axis ranges.
    """
    numeric_x = all(isinstance(x, (int, float)) for x in x_values)
    xs = [float(x) if numeric_x else float(i) for i, x in enumerate(x_values)]
    points = []  # (column, row-from-bottom, series index)
    ys = [
        y
        for values in series.values()
        for y in values
        if isinstance(y, (int, float)) and y == y
    ]
    if not xs or not ys:
        return (title or "") + "\n(no data to plot)"
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    for index, values in enumerate(series.values()):
        for x, y in zip(xs, values):
            if not isinstance(y, (int, float)) or y != y:
                continue
            column = round((x - x_lo) / x_span * (width - 1))
            row = round((y - y_lo) / y_span * (height - 1))
            points.append((column, row, index))

    grid = [[" "] * width for _ in range(height)]
    for column, row, index in points:
        cell = grid[height - 1 - row][column]
        letter = chr(ord("A") + index % 26)
        grid[height - 1 - row][column] = "*" if cell not in (" ", letter) else letter

    lines = []
    if title:
        lines.append(title)
    lines.append(f"y: {_cell(float(y_lo))} .. {_cell(float(y_hi))}")
    lines.append("+" + "-" * width + "+")
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * width + "+")
    x_left = _cell(x_values[0]) if not numeric_x else _cell(float(x_lo))
    x_right = _cell(x_values[-1]) if not numeric_x else _cell(float(x_hi))
    lines.append(f"x: {x_label} = {x_left} .. {x_right}")
    for index, name in enumerate(series):
        lines.append(f"  {chr(ord('A') + index % 26)} = {name}")
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # nan
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)
