"""Statistics and result rendering."""

from repro.metrics.stats import Estimate, geometric_mean, mean_confidence, ratio
from repro.metrics.tables import (
    diff_counts,
    format_ascii_plot,
    format_series,
    format_table,
)

__all__ = [
    "Estimate",
    "diff_counts",
    "format_ascii_plot",
    "format_series",
    "format_table",
    "geometric_mean",
    "mean_confidence",
    "ratio",
]
