"""The config-driven tier decider (the paper's §3.2 brain, explained).

"When MN demands a handoff request, three kinds of factor are
considered to decide the suitable tier that MN should hop.  The first
is the speed of MN, the power of signal from BS is considered also,
and the last is the resources of BS."

:class:`TierDecider` turns a :class:`~repro.policy.config.PolicyConfig`
into that decision: speed and bandwidth demand pick the *preferred
tier*, signal strength ranks candidates inside a tier, and the
resources factor is applied downstream by trying the returned
candidates in order until one admits (rejections become
:class:`~repro.policy.types.FallbackDecision`\\ s).  Unlike the
historical threshold-only class it is *explainable*: :meth:`decide`
returns a :class:`~repro.policy.types.TierDecision` whose ``reasons``
name, in machine-readable tokens, why the candidates are ordered the
way they are.

The compatibility subclasses in :mod:`repro.multitier.policy`
(``TierSelectionPolicy`` and the E9 ablation baselines) are thin
wrappers over this class; with the default config the ordering is
byte-identical to the pre-refactor behavior (pinned by the 16 golden
tables and ``results/scenarios_smoke/``).

Determinism: pure functions of the candidate list and factors — no
randomness, no simulation state — so identical inputs order
identically in any process, on any execution backend.
"""

from __future__ import annotations

from repro.policy.config import PolicyConfig
from repro.policy.types import Candidate, HandoffFactors, TierDecision
from repro.radio.cells import Tier


class TierDecider:
    """Order handoff candidates by tier preference, then signal.

    * Fast mobiles prefer the macro tier: micro cells would hand off
      every few seconds ("the speed of MN").
    * Slow mobiles with high bandwidth demand prefer the smallest
      cells, whose shared budgets offer more per-user bandwidth (§3.2
      case a: "MN needs more bandwidth ... system will switch MN to
      micro-cell").
    * Within a tier, stronger signal wins ("the power of signal").

    The admission (resources) factor is applied by trying candidates
    in the returned order until one accepts.  ``mode`` selects the
    paper's ``speed-aware`` policy or one of the E9 ablation
    baselines (``always-strongest`` chases signal across tiers;
    ``always-micro`` / ``always-macro`` pin the preferred tier).
    """

    #: True for policies that ignore tiers entirely (signal chasing):
    #: the controller then applies hysteresis across all tiers instead
    #: of preferring one.
    tier_agnostic = False

    def __init__(
        self,
        speed_threshold: float = 15.0,
        demand_threshold: float = 200e3,
        mode: str = "speed-aware",
    ) -> None:
        # Reuse the config validation so thresholds reject the same
        # inputs (non-positive, NaN) with the same ValueError shape
        # whether they arrive here or through a ScenarioSpec.
        config = PolicyConfig(
            mode=mode,
            speed_threshold=speed_threshold,
            demand_threshold=demand_threshold,
        )
        self.mode = config.mode
        self.speed_threshold = config.speed_threshold
        self.demand_threshold = config.demand_threshold
        if self.mode == "always-strongest":
            self.tier_agnostic = True

    @classmethod
    def from_config(
        cls, config: PolicyConfig, contention: bool = False
    ) -> "TierDecider":
        """Build the decider one validated config block describes.

        ``contention`` resolves a ``demand_threshold=None`` config to
        the stack's historical default (see
        :meth:`PolicyConfig.resolved_demand_threshold`), so the
        default block reproduces pre-refactor behavior byte-for-byte
        in both legacy and shared-channel worlds.
        """
        return cls(
            speed_threshold=config.speed_threshold,
            demand_threshold=config.resolved_demand_threshold(contention),
            mode=config.mode,
        )

    # ------------------------------------------------------------------
    def preferred_tier(self, factors: HandoffFactors) -> Tier:
        """The single best tier for these factors (preference head)."""
        return self.tier_preference(factors)[0]

    def tier_preference(self, factors: HandoffFactors) -> list[Tier]:
        """Tiers best-first for these factors.

        Fast mobiles: macro first (fewest handoffs).  Slow mobiles with
        high bandwidth demand: smallest cell first (pico offers the most
        per-user bandwidth, then micro).  Everyone else: micro first,
        pico as a local bonus, macro as overflow.  The ablation modes
        pin the order regardless of factors.
        """
        if self.mode == "always-micro":
            return [Tier.MICRO, Tier.PICO, Tier.MACRO]
        if self.mode == "always-macro":
            return [Tier.MACRO, Tier.MICRO, Tier.PICO]
        if factors.speed >= self.speed_threshold:
            return [Tier.MACRO, Tier.MICRO, Tier.PICO]
        if factors.bandwidth_demand >= self.demand_threshold:
            return [Tier.PICO, Tier.MICRO, Tier.MACRO]
        return [Tier.MICRO, Tier.PICO, Tier.MACRO]

    def preference_reasons(self, factors: HandoffFactors) -> list[str]:
        """Machine-readable tokens naming why the preference holds.

        One mode token for the ablation baselines; for the paper's
        policy, the threshold comparison that fired plus the resulting
        tier preference (vocabulary: ``docs/POLICY.md``).  Always
        non-empty.
        """
        if self.mode == "always-strongest":
            return ["mode-always-strongest", "strongest-signal-first"]
        if self.mode == "always-micro":
            return ["mode-always-micro", "prefer-micro"]
        if self.mode == "always-macro":
            return ["mode-always-macro", "prefer-macro"]
        if factors.speed >= self.speed_threshold:
            return ["speed-at-or-above-threshold", "prefer-macro"]
        if factors.bandwidth_demand >= self.demand_threshold:
            return ["demand-at-or-above-threshold", "prefer-pico"]
        return ["speed-and-demand-below-thresholds", "prefer-micro"]

    def order_candidates(
        self, candidates: list[Candidate], factors: HandoffFactors
    ) -> list[Candidate]:
        """Best-first list of stations to ask, never empty-handed: the
        non-preferred tiers follow as overflow (tier-agnostic modes
        sort purely by signal strength)."""
        if self.tier_agnostic:
            return sorted(candidates, key=lambda c: -c.rss_dbm)
        preference = self.tier_preference(factors)
        return sorted(
            candidates,
            key=lambda c: (preference.index(c.tier), -c.rss_dbm),
        )

    def decide(
        self, candidates: list[Candidate], factors: HandoffFactors
    ) -> TierDecision:
        """The explainable decision for one candidate survey.

        Returns a :class:`~repro.policy.types.TierDecision` whose
        ``targets`` are :meth:`order_candidates` of the inputs and
        whose ``reasons`` are :meth:`preference_reasons` — every
        decision carries at least one reason, with the factors
        snapshot attached for the trace log.
        """
        return TierDecision(
            targets=self.order_candidates(candidates, factors),
            reasons=self.preference_reasons(factors),
            factors=factors,
        )


__all__ = ["TierDecider"]
