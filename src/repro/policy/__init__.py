"""The explainable, config-driven tier-selection policy engine.

This package is the §3.2 decision layer of the reproduction, rebuilt
so that every decision is *explainable*:

* :mod:`repro.policy.config` — :class:`PolicyConfig`, the validated
  knob block (mode, thresholds, admission factor, weighted airtime)
  embedded in :class:`~repro.scenarios.spec.ScenarioSpec` and
  sweepable like any other spec field;
* :mod:`repro.policy.decider` — :class:`TierDecider`, which orders
  handoff candidates from the three §3.2 factors and returns
  machine-readable reasons;
* :mod:`repro.policy.types` — the decision values
  (:class:`TierDecision`, :class:`FallbackDecision`,
  :class:`HandoffFactors`, :class:`Candidate`, :class:`NextAction`);
* :mod:`repro.policy.trace` — :class:`DecisionTrace`, the per-world
  ring-buffer log whose counters become the ``policy.*`` scenario
  metrics and whose tail renders under ``--trace-decisions``.

The historical classes in :mod:`repro.multitier.policy` are thin
compatibility wrappers over this package; the default config
reproduces their behavior byte-identically.

Determinism: everything here is pure data or pure functions of it —
no randomness, no wall-clock — so decisions and traces from a
deterministic simulation are byte-identical across processes and
execution backends.
"""

from repro.policy.config import (
    CONTENTION_DEMAND_THRESHOLD,
    LEGACY_DEMAND_THRESHOLD,
    POLICY_MODES,
    PRESETS,
    PolicyConfig,
)
from repro.policy.decider import TierDecider
from repro.policy.trace import (
    POLICY_METRIC_KEYS,
    TRACE_RING_SIZE,
    DecisionRecord,
    DecisionTrace,
)
from repro.policy.types import (
    Candidate,
    FallbackDecision,
    HandoffFactors,
    NextAction,
    TierDecision,
)

__all__ = [
    "CONTENTION_DEMAND_THRESHOLD",
    "LEGACY_DEMAND_THRESHOLD",
    "POLICY_METRIC_KEYS",
    "POLICY_MODES",
    "PRESETS",
    "TRACE_RING_SIZE",
    "Candidate",
    "DecisionRecord",
    "DecisionTrace",
    "FallbackDecision",
    "HandoffFactors",
    "NextAction",
    "PolicyConfig",
    "TierDecider",
]
