"""Validated configuration of the tier-selection policy engine.

A :class:`PolicyConfig` is the declarative knob block behind the
§3.2 three-factor decision: which decision *mode* runs (the paper's
speed-aware policy or one of the E9 ablation baselines), the speed and
bandwidth-demand thresholds, and the air-interface resource controls
(admission factor, weighted airtime shares).  It is pure data — the
:class:`~repro.policy.decider.TierDecider` consumes it, and
:class:`~repro.scenarios.spec.ScenarioSpec` embeds it as its
``policy`` field, which makes every numeric field sweepable like any
other spec field (``policy.<field>`` sweep axes).

The default ``PolicyConfig()`` reproduces the historical hardcoded
behavior byte-identically: speed threshold 15 m/s, the stack-dependent
demand threshold (200 kbit/s legacy, 1 bit/s contention), no air
admission control, FIFO airtime.  Scenario metrics only grow
``policy.*`` keys when the block differs from this default, so the
committed golden tables never change shape.

Determinism: pure validated data; equality and hashing are value-based
(frozen dataclass), so derived sweep specs compare and pickle
deterministically across processes and execution backends.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

#: Decision modes: the paper's policy plus the E9 ablation baselines.
POLICY_MODES: tuple[str, ...] = (
    "speed-aware",
    "always-strongest",
    "always-micro",
    "always-macro",
)

#: Demand threshold (bit/s) the legacy builder used with dedicated
#: per-mobile radios: only heavy elastic users preferred the pico tier.
LEGACY_DEMAND_THRESHOLD = 200e3

#: Demand threshold (bit/s) under a shared air interface: any
#: traffic-bearing mobile benefits from a covering pico's fat shared
#: budget, so the pico preference applies to every positive demand.
CONTENTION_DEMAND_THRESHOLD = 1.0


def _positive(label: str, value: float) -> float:
    """Validate one threshold: finite and strictly positive."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ValueError(f"{label} must be positive")
    value = float(value)
    if math.isnan(value) or not value > 0:
        raise ValueError(f"{label} must be positive")
    return value


@dataclass(frozen=True)
class PolicyConfig:
    """The validated knob block of the tier-selection policy engine.

    Parameters
    ----------
    mode:
        Decision mode, one of :data:`POLICY_MODES`.  ``"speed-aware"``
        (default) is the paper's three-factor policy; the others are
        the E9 ablation baselines re-expressed as config presets.
    speed_threshold:
        Speed (m/s) at or above which a mobile prefers the macro tier.
        Must be finite and strictly positive.
    demand_threshold:
        Bandwidth demand (bit/s) at or above which a slow mobile
        prefers the pico tier.  ``None`` (default) resolves to the
        stack's historical default — :data:`LEGACY_DEMAND_THRESHOLD`
        with dedicated radios, :data:`CONTENTION_DEMAND_THRESHOLD`
        under a shared air interface (see
        :meth:`resolved_demand_threshold`).  Must be finite and
        strictly positive when set.
    admission_factor:
        Air-interface admission control: a cell accepts a new claim
        only while the sum of claimed demands stays within
        ``admission_factor * downlink budget``.  ``None`` (default)
        disables admission control entirely (the historical
        never-reject behavior).  Requires shared channels; validated
        at the spec layer.
    weighted_airtime:
        ``True`` replaces the FIFO airtime arbiter with weighted fair
        shares, weighting each mobile by its declared bandwidth
        demand.  Requires shared channels; validated at the spec
        layer.
    """

    mode: str = "speed-aware"
    speed_threshold: float = 15.0
    demand_threshold: Optional[float] = None
    admission_factor: Optional[float] = None
    weighted_airtime: bool = False

    def __post_init__(self) -> None:
        if self.mode not in POLICY_MODES:
            raise ValueError(
                f"unknown policy mode {self.mode!r}; "
                f"known: {', '.join(POLICY_MODES)}"
            )
        object.__setattr__(
            self,
            "speed_threshold",
            _positive("speed_threshold", self.speed_threshold),
        )
        if self.demand_threshold is not None:
            object.__setattr__(
                self,
                "demand_threshold",
                _positive("demand_threshold", self.demand_threshold),
            )
        if self.admission_factor is not None:
            factor = _positive("admission_factor", self.admission_factor)
            object.__setattr__(self, "admission_factor", factor)
        if not isinstance(self.weighted_airtime, bool):
            raise ValueError(
                f"weighted_airtime must be a bool, "
                f"got {self.weighted_airtime!r}"
            )

    # ------------------------------------------------------------------
    def is_default(self) -> bool:
        """True when this block equals ``PolicyConfig()`` — the gate
        deciding whether a scenario run emits ``policy.*`` metrics."""
        return self == PolicyConfig()

    def resolved_demand_threshold(self, contention: bool) -> float:
        """The effective demand threshold (bit/s) for one stack mode.

        An explicit :attr:`demand_threshold` wins; ``None`` resolves
        to the historical stack default —
        :data:`CONTENTION_DEMAND_THRESHOLD` under a shared air
        interface, :data:`LEGACY_DEMAND_THRESHOLD` otherwise — so the
        default config reproduces pre-refactor behavior byte-for-byte.
        """
        if self.demand_threshold is not None:
            return self.demand_threshold
        return (
            CONTENTION_DEMAND_THRESHOLD
            if contention
            else LEGACY_DEMAND_THRESHOLD
        )


#: The E9 ablation policies as config presets: byte-identical to the
#: historical ``TierSelectionPolicy`` / ``Always*Policy`` classes.
PRESETS: dict[str, PolicyConfig] = {
    "speed-aware": PolicyConfig(mode="speed-aware"),
    "always-strongest": PolicyConfig(mode="always-strongest"),
    "always-micro": PolicyConfig(mode="always-micro"),
    "always-macro": PolicyConfig(mode="always-macro"),
}


__all__ = [
    "CONTENTION_DEMAND_THRESHOLD",
    "LEGACY_DEMAND_THRESHOLD",
    "POLICY_MODES",
    "PRESETS",
    "PolicyConfig",
]
