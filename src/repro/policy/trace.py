"""The decision-trace log: every policy decision, recorded and counted.

One :class:`DecisionTrace` lives on each multi-tier world.  The
mobility controllers append a :class:`DecisionRecord` for every
:class:`~repro.policy.types.TierDecision` they act on and every
:class:`~repro.policy.types.FallbackDecision` a rejected or timed-out
handoff produces.  Two views come out of it:

* **metrics** — :meth:`DecisionTrace.metric_counts` aggregates the
  records into the fixed ``policy.*`` key set
  (:data:`POLICY_METRIC_KEYS`), which the multi-tier stack adapter
  merges into scenario metrics whenever the spec's policy block is
  non-default, making policy A/B sweeps analyzable in comparison
  tables;
* **narrative** — :meth:`DecisionTrace.render` prints the reason
  counters plus the tail of the ring buffer, which is what
  ``repro scenario run --trace-decisions`` shows.

The ring buffer is bounded (:data:`TRACE_RING_SIZE` most recent
records) so long runs keep constant memory; the counters are exact
over the whole run.

Determinism: records are appended in simulation event order by a
deterministic simulation, so the counters — and the rendered tail —
are byte-identical for one ``(spec, seed)`` on any execution backend.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass

#: Capacity of the per-world ring buffer of recent decision records.
TRACE_RING_SIZE = 512

#: The fixed ``policy.*`` metric key set.  Fixed so that every
#: non-default-policy run emits exactly these keys (zero-filled),
#: keeping comparison tables rectangular across sweep points.
POLICY_METRIC_KEYS: tuple[str, ...] = (
    "policy.decisions",
    "policy.out_of_coverage",
    "policy.airtime_relief",
    "policy.better_tier",
    "policy.signal_hysteresis",
    "policy.retry_same_tier",
    "policy.escalate_tier",
    "policy.admission_reject",
    "policy.handoff_reject",
    "policy.handoff_timeout",
)

#: Reason tokens on ``kind="decision"`` records that have their own
#: metric key (why the controller acted at all).
_DECISION_REASON_KEYS = {
    "out-of-coverage": "policy.out_of_coverage",
    "airtime-relief": "policy.airtime_relief",
    "better-tier": "policy.better_tier",
    "signal-hysteresis": "policy.signal_hysteresis",
}

#: Reason tokens on ``kind="fallback"`` records that have their own
#: metric key (why the attempt failed).
_FALLBACK_REASON_KEYS = {
    "air-budget-exceeded": "policy.admission_reject",
    "channel-pool-full": "policy.handoff_reject",
    "handoff-timeout": "policy.handoff_timeout",
}

#: Fallback actions (``NextAction.value``) that have their own metric
#: key (what the mobile did next).
_ACTION_KEYS = {
    "retry_same_tier": "policy.retry_same_tier",
    "escalate_tier": "policy.escalate_tier",
}


@dataclass
class DecisionRecord:
    """One traced policy event.

    ``kind`` is ``"decision"`` (a :class:`TierDecision` the controller
    acted on) or ``"fallback"`` (the follow-up to one failed attempt);
    ``action`` is empty for decisions and the
    :class:`~repro.policy.types.NextAction` value for fallbacks;
    ``reasons`` is the machine-readable token list (never empty);
    ``target`` names the station asked (or the next station for
    fallbacks, empty when stopping).
    """

    time: float
    mobile: str
    kind: str
    action: str
    reasons: tuple[str, ...]
    target: str = ""


class DecisionTrace:
    """Bounded ring of decision records plus exact reason counters."""

    def __init__(self, ring_size: int = TRACE_RING_SIZE) -> None:
        self.records: deque[DecisionRecord] = deque(maxlen=int(ring_size))
        self.counts: Counter[str] = Counter()

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------
    def record(
        self,
        time: float,
        mobile: str,
        kind: str,
        reasons: list[str],
        action: str = "",
        target: str = "",
    ) -> None:
        """Append one record and bump the matching ``policy.*`` counters.

        ``kind="decision"`` bumps ``policy.decisions`` plus a key per
        recognized cause token; ``kind="fallback"`` bumps the key of
        its ``action`` plus a key per recognized failure token.
        Unrecognized tokens still land in the record (and the render)
        — they just have no dedicated metric key.
        """
        self.records.append(DecisionRecord(
            time=float(time),
            mobile=str(mobile),
            kind=str(kind),
            action=str(action),
            reasons=tuple(reasons),
            target=str(target),
        ))
        if kind == "decision":
            self.counts["policy.decisions"] += 1
            reason_keys = _DECISION_REASON_KEYS
        else:
            key = _ACTION_KEYS.get(action)
            if key is not None:
                self.counts[key] += 1
            reason_keys = _FALLBACK_REASON_KEYS
        for reason in reasons:
            key = reason_keys.get(reason)
            if key is not None:
                self.counts[key] += 1

    # ------------------------------------------------------------------
    def metric_counts(self) -> dict[str, float]:
        """The fixed ``policy.*`` metric dict (all keys, zero-filled)."""
        return {
            key: float(self.counts.get(key, 0)) for key in POLICY_METRIC_KEYS
        }

    def render(self, title: str = "decision trace", limit: int = 20) -> str:
        """Human-readable summary: counters, then the last records.

        ``limit`` caps the number of tail records shown (the ring
        itself holds up to its capacity).
        """
        lines = [f"{title}:"]
        for key in POLICY_METRIC_KEYS:
            lines.append(f"  {key:<28}{self.counts.get(key, 0)}")
        tail = list(self.records)[-int(limit):]
        shown = len(tail)
        lines.append(
            f"  last {shown} of {len(self.records)} buffered records "
            f"(ring size {self.records.maxlen}):"
        )
        for record in tail:
            action = f" -> {record.action}" if record.action else ""
            target = f" target={record.target}" if record.target else ""
            lines.append(
                f"    t={record.time:9.3f}  {record.mobile:<6} "
                f"{record.kind}{action}{target} "
                f"[{', '.join(record.reasons)}]"
            )
        return "\n".join(lines)


__all__ = [
    "POLICY_METRIC_KEYS",
    "TRACE_RING_SIZE",
    "DecisionRecord",
    "DecisionTrace",
]
