"""Decision types of the explainable policy engine.

The paper's §3.2 handoff strategy weighs three factors — the speed of
the MN, the power of the signal from the BS, and the resources of the
BS — and acts on them: pick a tier, rank the candidates, and when a
base station refuses admission "turn to ask" the next tier.  This
module gives each of those acts a typed, *explainable* value:

* :class:`HandoffFactors` — the locally observable inputs (one
  snapshot per decision, embedded in the emitted record);
* :class:`Candidate` — one admissible target base station;
* :class:`TierDecision` — an ordered target list plus the
  machine-readable reasons that produced it;
* :class:`NextAction` / :class:`FallbackDecision` — what the mobile
  does after a rejection or timeout (retry the same tier, escalate to
  the next tier, or stop).

Reason strings are drawn from the fixed vocabulary documented in
``docs/POLICY.md`` (kebab-case tokens such as ``better-tier`` or
``air-budget-exceeded``); the decision-trace log aggregates them into
the ``policy.*`` scenario metrics.

Determinism: pure data containers — construction and comparison have
no side effects and no randomness, so records built from a
deterministic simulation are byte-identical across processes and
execution backends.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.radio.cells import Tier


@dataclass
class HandoffFactors:
    """Inputs the mobile can observe locally (the §3.2 factors)."""

    speed: float
    bandwidth_demand: float = 0.0
    serving_tier: Optional[Tier] = None


@dataclass
class Candidate:
    """One admissible target: a base station heard at some signal level."""

    station: object  # MultiTierBaseStation (untyped to avoid an import cycle)
    rss_dbm: float
    tier: Tier = field(init=False)

    def __post_init__(self) -> None:
        self.tier = self.station.tier


@dataclass
class TierDecision:
    """An explainable handoff decision: where to go, and why.

    ``targets`` is the best-first list of candidates the mobile will
    ask (tier overflow tries them in order until one admits);
    ``reasons`` is a non-empty list of machine-readable tokens from the
    vocabulary in ``docs/POLICY.md``; ``factors`` snapshots the
    :class:`HandoffFactors` the decision was made from.
    """

    targets: list[Candidate]
    reasons: list[str]
    factors: HandoffFactors

    @property
    def target(self) -> Optional[Candidate]:
        """The preferred (first) candidate, or ``None`` when empty."""
        return self.targets[0] if self.targets else None


class NextAction(str, enum.Enum):
    """What the mobile does after a rejected or timed-out attempt."""

    #: Ask the next candidate of the same tier.
    RETRY_SAME_TIER = "retry_same_tier"
    #: "Turn to ask" a different tier (§3.2's overflow).
    ESCALATE_TIER = "escalate_tier"
    #: No further candidates: stay with the serving base station.
    STOP = "stop"


@dataclass
class FallbackDecision:
    """The explainable follow-up to one failed handoff attempt.

    Emitted by the mobility controller each time a candidate rejects
    (admission, §3.2's "resources of BS") or times out: ``action``
    says what happens next, ``next_tier`` names the tier of the next
    candidate (``None`` when stopping), and ``reason`` carries the
    rejection cause reported by the base station (e.g.
    ``air-budget-exceeded``, ``channel-pool-full``,
    ``handoff-timeout``).
    """

    action: NextAction
    next_tier: Optional[Tier]
    reason: str


__all__ = [
    "Candidate",
    "FallbackDecision",
    "HandoffFactors",
    "NextAction",
    "TierDecision",
]
