"""Command-line experiment and scenario runner.

Usage::

    python -m repro list                # show available experiments
    python -m repro run E8              # run one experiment, print its table
    python -m repro run all             # run everything (takes a minute)
    python -m repro run all --jobs 8    # same, on 8 worker processes
    python -m repro run E3 E8 -o out/   # also write rendered tables to files

    python -m repro scenario list                 # catalog + sweep registry
    python -m repro scenario describe mega        # one spec in full
    python -m repro scenario run city-rush-hour   # run with default seeds
    python -m repro scenario run all --jobs 4     # whole catalog, 4 workers
    python -m repro scenario run mega --seeds 1 2 # override the seed list

    python -m repro scenario run city-rush-hour --stack all         # 4 stacks,
                                                # side-by-side comparison table
    python -m repro scenario run campus-dense --stack mobileip      # 1 baseline

    python -m repro scenario sweep sparse-rural/population          # one curve
    python -m repro scenario sweep all --jobs 4 -o out/             # + figures
    python -m repro scenario sweep campus-dense/backhaul --smoke    # CI variant
    python -m repro scenario sweep flash-crowd/hotspot-fraction --stack all

    python -m repro campaign new night --scenarios all --stacks all
    python -m repro campaign run night --jobs 8     # durable; Ctrl-C safe
    python -m repro campaign resume night --jobs 8  # skips completed items
    python -m repro campaign status night --tables
    python -m repro campaign diff night-before night-after  # CI regressions

``--jobs N`` fans the per-seed scenario jobs out over N forked worker
processes; results are identical to a serial run for the same seeds
(see :mod:`repro.experiments.exec`).  ``scenario sweep`` submits the
union of every requested sweep's (point, seed) grid as one backend
batch, so ``sweep all --jobs N`` overlaps small sweeps with big ones.
``--stack <name|all>`` reruns the same scenarios under another
registered protocol stack (see :mod:`repro.stacks`); ``--stack all``
dispatches the whole (stack, scenario, seed) grid as ONE batch and,
for ``scenario run``, renders a side-by-side comparison table.
``--shards N`` (on ``scenario run``, ``scenario sweep`` and
``campaign run``) decomposes each individual run spatially over N
processes synchronized conservatively at wired backhaul cuts — metric
output is byte-identical for any N (see ``docs/SHARDING.md``).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.experiments import ALL_EXPERIMENTS, backend_for_jobs, set_default_backend


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the ICDCSW'02 multi-tier mobility experiments.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list experiment ids")

    run = commands.add_parser("run", help="run experiments and print tables")
    run.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (e.g. E8 T1), or 'all'",
    )
    run.add_argument(
        "-o",
        "--output-dir",
        type=pathlib.Path,
        default=None,
        help="also write each rendered table to <dir>/<id>.txt",
    )
    run.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for scenario jobs (default 1 = serial; "
        "results are identical for any N)",
    )

    scenario = commands.add_parser(
        "scenario", help="list, describe and run catalog scenarios"
    )
    verbs = scenario.add_subparsers(dest="scenario_command", required=True)

    verbs.add_parser("list", help="list the scenario catalog")

    describe = verbs.add_parser("describe", help="show one scenario spec")
    describe.add_argument("name", help="scenario name (see 'scenario list')")

    scenario_run = verbs.add_parser(
        "run", help="replicate scenarios over seeds and print metric tables"
    )
    scenario_run.add_argument(
        "names",
        nargs="+",
        help="scenario names (see 'scenario list'), or 'all'",
    )
    scenario_run.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for per-seed jobs (default 1 = serial; "
        "results are identical for any N)",
    )
    scenario_run.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="spatial domain shards per run (default 1 = monolithic; "
        "metrics are byte-identical for any N, see docs/SHARDING.md)",
    )
    scenario_run.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=None,
        metavar="SEED",
        help="override the spec's default seed list",
    )
    scenario_run.add_argument(
        "--smoke",
        action="store_true",
        help="run the shrunken CI smoke variant of each scenario",
    )
    scenario_run.add_argument(
        "--stack",
        default=None,
        metavar="STACK",
        help="protocol stack to run under (a registered stack name, or "
        "'all' for a side-by-side comparison of every registered "
        "stack); default: each spec's own stack",
    )
    scenario_run.add_argument(
        "--trace-decisions",
        action="store_true",
        help="after each table, replay the first seed in-process and "
        "print its decision trace (per-reason counts + last recorded "
        "tier decisions and fallbacks; multi-tier stack only)",
    )
    scenario_run.add_argument(
        "-o",
        "--output-dir",
        type=pathlib.Path,
        default=None,
        help="also write each rendered table to <dir>/scenario_<name>.txt",
    )

    scenario_sweep = verbs.add_parser(
        "sweep",
        help="run registered scenario sweeps: per-point CI tables + figures",
    )
    scenario_sweep.add_argument(
        "names",
        nargs="+",
        help="sweep names (see 'scenario list'), or 'all'",
    )
    scenario_sweep.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the (point, seed) grid (default 1 = "
        "serial; results are identical for any N)",
    )
    scenario_sweep.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="spatial domain shards per grid-point run (default 1 = "
        "monolithic; metrics are byte-identical for any N)",
    )
    scenario_sweep.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=None,
        metavar="SEED",
        help="override the seeds replicated at every axis point",
    )
    scenario_sweep.add_argument(
        "--smoke",
        action="store_true",
        help="run the shrunken CI smoke variant (2 points, 1 seed)",
    )
    scenario_sweep.add_argument(
        "--stack",
        default=None,
        metavar="STACK",
        help="protocol stack to sweep under (a registered stack name, "
        "or 'all' to run every sweep once per stack); default: each "
        "base spec's own stack",
    )
    scenario_sweep.add_argument(
        "-o",
        "--output-dir",
        type=pathlib.Path,
        default=None,
        help="write each table to <dir>/sweep_<name>.txt and its figure "
        "to <dir>/sweep_<name>.png (.figure.txt without matplotlib)",
    )

    campaign = commands.add_parser(
        "campaign",
        help="durable resumable runs over (scenario, stack, sweep, seed) "
        "grids, with cross-run regression diffs",
    )
    campaign_verbs = campaign.add_subparsers(
        dest="campaign_command", required=True
    )

    campaign_new = campaign_verbs.add_parser(
        "new", help="expand a grid into a durable campaign directory"
    )
    campaign_new.add_argument(
        "directory", type=pathlib.Path, help="campaign directory to create"
    )
    campaign_new.add_argument(
        "--scenarios",
        nargs="+",
        default=[],
        metavar="NAME",
        help="catalog scenarios to queue (names, or 'all')",
    )
    campaign_new.add_argument(
        "--sweeps",
        nargs="+",
        default=[],
        metavar="NAME",
        help="registered sweeps to queue (names, or 'all')",
    )
    campaign_new.add_argument(
        "--stacks",
        nargs="+",
        default=None,
        metavar="STACK",
        help="protocol stacks to cross every entry with (names, or "
        "'all'); default: each spec's own stack",
    )
    campaign_new.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=None,
        metavar="SEED",
        help="override every entry's default seed list",
    )
    campaign_new.add_argument(
        "--smoke",
        action="store_true",
        help="queue the shrunken CI smoke variant of every entry",
    )
    campaign_new.add_argument(
        "--name",
        default=None,
        help="campaign name recorded in the manifest (default: the "
        "directory name)",
    )

    for verb, help_text in (
        ("run", "drain the campaign's pending items"),
        ("resume", "synonym of run: skip completed items, run the rest"),
    ):
        campaign_run = campaign_verbs.add_parser(verb, help=help_text)
        campaign_run.add_argument(
            "directory", type=pathlib.Path, help="campaign directory"
        )
        campaign_run.add_argument(
            "-j",
            "--jobs",
            type=int,
            default=1,
            metavar="N",
            help="worker processes per batch (default 1 = serial; the "
            "final store is byte-identical for any N)",
        )
        campaign_run.add_argument(
            "--shards",
            type=int,
            default=1,
            metavar="N",
            help="spatial domain shards per item run (default 1 = "
            "monolithic; the store is byte-identical for any N)",
        )
        campaign_run.add_argument(
            "--batch-size",
            type=int,
            default=None,
            metavar="K",
            help="items dispatched per backend batch (default 8): "
            "smaller = finer crash granularity, larger = less dispatch "
            "overhead",
        )
        campaign_run.add_argument(
            "--max-items",
            type=int,
            default=None,
            metavar="M",
            help="stop after M items (deterministic partial run; resume "
            "later)",
        )

    campaign_status = campaign_verbs.add_parser(
        "status", help="show per-group completion counts"
    )
    campaign_status.add_argument(
        "directory", type=pathlib.Path, help="campaign directory"
    )
    campaign_status.add_argument(
        "--tables",
        action="store_true",
        help="for a completed campaign, also render the cross-stack "
        "comparison tables from the merged store",
    )

    campaign_diff = campaign_verbs.add_parser(
        "diff", help="per-metric CI regression report between two runs"
    )
    campaign_diff.add_argument(
        "run_a", type=pathlib.Path, help="first campaign dir or results.json"
    )
    campaign_diff.add_argument(
        "run_b", type=pathlib.Path, help="second campaign dir or results.json"
    )
    campaign_diff.add_argument(
        "--all",
        action="store_true",
        dest="show_all",
        help="also list the metrics whose intervals overlap (no change)",
    )
    campaign_diff.add_argument(
        "--strict",
        action="store_true",
        help="exit 3 when the report contains at least one regression",
    )
    return parser


def _expand_names(names: list[str], available: list[str], kind: str):
    """Expand 'all' and validate ``names`` against ``available``.

    Returns the concrete name list, or ``None`` after printing the
    unknown-name error (the caller exits 2).
    """
    if len(names) == 1 and names[0].lower() == "all":
        return list(available)
    known = set(available)
    unknown = [name for name in names if name not in known]
    if unknown:
        print(f"unknown {kind}(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(available)}", file=sys.stderr)
        return None
    return list(names)


def _jobs_ok(jobs: int) -> bool:
    """Validate a --jobs value, printing the error on failure."""
    if jobs < 1:
        print(f"--jobs must be at least 1, got {jobs}", file=sys.stderr)
        return False
    return True


def _shards_ok(shards: int) -> bool:
    """Validate a --shards value eagerly, printing the error on failure."""
    if shards < 1:
        print(f"--shards must be at least 1, got {shards}", file=sys.stderr)
        return False
    return True


def _stack_ok(stack: str | None) -> bool:
    """Validate a --stack value eagerly, printing the error on failure.

    Accepts ``None`` (spec default), a registered stack name, or
    ``'all'``; anything else fails before any simulation runs, with
    the registered names listed.
    """
    if stack is None or stack == "all":
        return True
    from repro.stacks import get_stack

    try:
        get_stack(stack)
    except KeyError as error:
        # Reuse the registry's own message (single source of truth for
        # the registered-names listing), adding the CLI-only sentinel.
        print(f"{error.args[0]} (or 'all')", file=sys.stderr)
        return False
    return True


def _scenario_main(args: argparse.Namespace) -> int:
    from repro import scenarios

    if args.scenario_command == "list":
        for spec in scenarios.iter_scenarios():
            print(
                f"{spec.name:22s} pop={spec.population:<4d} "
                f"dur={spec.duration:<5g} domains={spec.domains}  "
                f"{spec.description}"
            )
        print()
        print("sweeps:")
        for sweep in scenarios.iter_sweeps():
            values = ", ".join(f"{v:g}" for v in sweep.values)
            print(
                f"{sweep.name:34s} {sweep.axis_label()}=({values})  "
                f"{sweep.description}"
            )
        return 0

    if args.scenario_command == "describe":
        # Scenario names first, then sweep names (disjoint by the
        # <scenario>/<axis> convention, but be permissive).
        try:
            print(scenarios.describe_scenario(args.name))
            return 0
        except KeyError:
            pass
        try:
            print(scenarios.describe_sweep(args.name))
        except KeyError:
            print(
                f"unknown scenario or sweep {args.name!r}; available "
                f"scenarios: {', '.join(scenarios.scenario_names())}; "
                f"sweeps: {', '.join(scenarios.sweep_names())}",
                file=sys.stderr,
            )
            return 2
        return 0

    if args.scenario_command == "sweep":
        return _scenario_sweep_main(args)

    # scenario run ------------------------------------------------------
    wanted = _expand_names(args.names, scenarios.scenario_names(), "scenario")
    if (
        wanted is None
        or not _jobs_ok(args.jobs)
        or not _shards_ok(args.shards)
        or not _stack_ok(args.stack)
    ):
        return 2

    specs = [scenarios.get_scenario(name) for name in wanted]
    if args.smoke:
        specs = [spec.smoke() for spec in specs]

    if args.stack == "all":
        if args.trace_decisions:
            print(
                "[--trace-decisions applies to single-stack runs; "
                "ignored with --stack all]"
            )
        # Cross-stack mode: the whole (scenario, stack, seed) grid is
        # ONE backend batch; each scenario renders a side-by-side
        # comparison table across every registered stack.
        started = time.perf_counter()
        comparisons = scenarios.compare_scenario_stacks(
            specs,
            seeds=args.seeds,
            backend=backend_for_jobs(args.jobs),
            shards=args.shards,
        )
        elapsed = time.perf_counter() - started
        for comparison in comparisons:
            text = scenarios.format_stack_comparison(comparison)
            print(text)
            print()
            if args.output_dir is not None:
                args.output_dir.mkdir(parents=True, exist_ok=True)
                safe = comparison.spec.name.replace("/", "_").lower()
                (args.output_dir / f"scenario_{safe}_stacks.txt").write_text(
                    text + "\n"
                )
        label = (
            "stack comparison"
            if len(comparisons) == 1
            else "stack comparisons"
        )
        print(f"[{len(comparisons)} {label} completed in {elapsed:.1f}s]")
        return 0

    # One batch for the whole (scenario, seed) grid: the pool's
    # work-stealing queue balances across scenarios, so a single-seed
    # heavyweight (mega) still overlaps its neighbours under --jobs N.
    started = time.perf_counter()
    batch = scenarios.replicate_scenarios(
        specs,
        seeds=args.seeds,
        backend=backend_for_jobs(args.jobs),
        stack=args.stack,
        shards=args.shards,
    )
    elapsed = time.perf_counter() - started
    for spec, seeds, replication in batch:
        text = scenarios.format_scenario_result(spec, replication, seeds)
        print(text)
        print()
        if args.trace_decisions:
            # Replay the first seed in-process (byte-identical run; the
            # trace is observation, not behavior) and show its ring.
            _metrics, trace = scenarios.run_scenario_trace(spec, seeds[0])
            if trace is None:
                print(
                    f"[no decision trace: stack {spec.stack!r} makes "
                    f"no tier decisions]"
                )
            else:
                print(trace.render(
                    title=f"decision trace: {spec.name} seed {seeds[0]}"
                ))
            print()
        if args.output_dir is not None:
            args.output_dir.mkdir(parents=True, exist_ok=True)
            safe = spec.name.replace("/", "_").lower()
            suffix = _stack_suffix(spec.stack)
            (args.output_dir / f"scenario_{safe}{suffix}.txt").write_text(
                text + "\n"
            )
    label = "scenario" if len(batch) == 1 else "scenarios"
    print(f"[{len(batch)} {label} completed in {elapsed:.1f}s]")
    return 0


def _stack_suffix(stack: str) -> str:
    """Output-file suffix for a non-default stack ("" for the default).

    Keeps default-stack filenames identical to pre-stacks output so the
    CI parity gates (``diff -r`` serial vs ``--jobs N``) and historical
    tooling keep working unchanged.
    """
    from repro.stacks import DEFAULT_STACK

    return "" if stack == DEFAULT_STACK else f"--{stack}"


def _scenario_sweep_main(args: argparse.Namespace) -> int:
    from repro import scenarios
    from repro.experiments.figures import save_experiment_figure

    wanted = _expand_names(args.names, scenarios.sweep_names(), "sweep")
    if (
        wanted is None
        or not _jobs_ok(args.jobs)
        or not _shards_ok(args.shards)
        or not _stack_ok(args.stack)
    ):
        return 2

    if args.stack is None:
        stack_list = None  # each base spec's own stack; legacy output
    elif args.stack == "all":
        from repro.stacks import stack_names

        stack_list = list(stack_names())
    else:
        stack_list = [args.stack]

    backend = backend_for_jobs(args.jobs)
    started = time.perf_counter()
    # ONE backend batch for the union of every requested (sweep, stack)
    # pair's (point, seed) grid: under --jobs N the pool's
    # work-stealing queue overlaps small sweeps with big ones instead
    # of serializing the sweeps behind each other.  Labels and grids
    # both come from the same effective_sweep() resolution inside
    # sweep_scenarios, and each returned entry carries the rebound
    # base spec that ran — its stack field names the output files.
    batch = scenarios.sweep_scenarios(
        wanted,
        seeds=args.seeds,
        smoke=args.smoke,
        backend=backend,
        stacks=stack_list,
        shards=args.shards,
    )
    for effective, base, seeds, result in batch:
        text = scenarios.format_sweep_result(effective, result, seeds)
        print(text)
        if result.notes:
            print(f"Notes: {result.notes}")
        if args.output_dir is not None:
            args.output_dir.mkdir(parents=True, exist_ok=True)
            safe = effective.name.replace("/", "_").lower()
            safe += _stack_suffix(base.stack)
            (args.output_dir / f"sweep_{safe}.txt").write_text(text + "\n")
            figure_path = save_experiment_figure(
                result, args.output_dir, stem=f"sweep_{safe}"
            )
            print(f"figure written to {figure_path}")
        print()
    elapsed = time.perf_counter() - started
    label = "sweep" if len(batch) == 1 else "sweeps"
    print(f"[{len(batch)} {label} completed in {elapsed:.1f}s]")
    return 0


def _campaign_main(args: argparse.Namespace) -> int:
    from repro.campaign import (
        Campaign,
        CampaignError,
        diff_stores,
        format_campaign_diff,
        load_store,
        run_campaign,
        store_stack_comparisons,
    )

    try:
        if args.campaign_command == "new":
            from repro import scenarios

            wanted_scenarios = args.scenarios
            if wanted_scenarios:
                wanted_scenarios = _expand_names(
                    wanted_scenarios, scenarios.scenario_names(), "scenario"
                )
                if wanted_scenarios is None:
                    return 2
            wanted_sweeps = args.sweeps
            if wanted_sweeps:
                wanted_sweeps = _expand_names(
                    wanted_sweeps, scenarios.sweep_names(), "sweep"
                )
                if wanted_sweeps is None:
                    return 2
            stacks = args.stacks
            if stacks is not None:
                from repro.stacks import stack_names

                stacks = _expand_names(stacks, stack_names(), "stack")
                if stacks is None:
                    return 2
            campaign = Campaign.create(
                args.directory,
                scenarios=wanted_scenarios,
                sweeps=wanted_sweeps,
                stacks=stacks,
                seeds=args.seeds,
                smoke=args.smoke,
                name=args.name,
            )
            print(
                f"campaign {campaign.manifest.name!r} created at "
                f"{args.directory}: {len(campaign.manifest.items)} work "
                f"item(s) queued"
            )
            print(f"run it with: repro campaign run {args.directory}")
            return 0

        if args.campaign_command in ("run", "resume"):
            if not _jobs_ok(args.jobs) or not _shards_ok(args.shards):
                return 2
            campaign = Campaign.load(args.directory)
            started = time.perf_counter()
            kwargs = {}
            if args.batch_size is not None:
                kwargs["batch_size"] = args.batch_size
            summary = run_campaign(
                campaign,
                backend=backend_for_jobs(args.jobs),
                max_items=args.max_items,
                log=print,
                shards=args.shards,
                **kwargs,
            )
            elapsed = time.perf_counter() - started
            print(
                f"[{summary.ran} item(s) run, {summary.skipped} skipped "
                f"in {elapsed:.1f}s]"
            )
            if not summary.done:
                remaining = summary.total - summary.skipped - summary.ran
                print(
                    f"{remaining} item(s) still pending; continue with: "
                    f"repro campaign resume {args.directory}"
                )
            return 0

        if args.campaign_command == "status":
            campaign = Campaign.load(args.directory)
            status = campaign.status()
            print(
                f"campaign {status.name!r}: {status.completed}/"
                f"{status.total} item(s) completed "
                f"({status.pending} pending)"
            )
            for group, (done, total) in status.groups.items():
                print(f"  {group:44s} {done}/{total}")
            if status.done:
                print(f"merged store: {campaign.store_path}")
            if args.tables:
                if not status.done:
                    print(
                        "[--tables needs a completed campaign; "
                        "finish it with 'repro campaign resume']"
                    )
                else:
                    from repro.scenarios import format_stack_comparison

                    store = load_store(campaign.store_path)
                    for comparison in store_stack_comparisons(store):
                        print()
                        print(format_stack_comparison(comparison))
            return 0

        # campaign diff --------------------------------------------------
        store_a = load_store(args.run_a)
        store_b = load_store(args.run_b)
        diff = diff_stores(
            store_a,
            store_b,
            label_a=str(args.run_a),
            label_b=str(args.run_b),
        )
        print(format_campaign_diff(diff, show_all=args.show_all))
        if args.strict and diff.regressions():
            return 3
        return 0
    except CampaignError as error:
        print(f"campaign error: {error}", file=sys.stderr)
        return 2


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "scenario":
        return _scenario_main(args)

    if args.command == "campaign":
        return _campaign_main(args)

    if args.command == "list":
        for experiment_id, fn in ALL_EXPERIMENTS.items():
            first_line = (fn.__doc__ or "").strip().splitlines()
            summary = first_line[0] if first_line else ""
            print(f"{experiment_id:6s} {summary}")
        return 0

    wanted = _expand_names(args.experiments, list(ALL_EXPERIMENTS), "experiment")
    if wanted is None or not _jobs_ok(args.jobs):
        return 2
    # Experiments pick the backend up via get_default_backend(), so the
    # flag covers every replicate()/sweep() call they make.
    previous_backend = set_default_backend(backend_for_jobs(args.jobs))
    try:
        for experiment_id in wanted:
            started = time.perf_counter()
            result = ALL_EXPERIMENTS[experiment_id]()
            elapsed = time.perf_counter() - started
            print(result.text)
            if result.notes:
                print(f"Notes: {result.notes}")
            print(f"[{experiment_id} completed in {elapsed:.1f}s]\n")
            if args.output_dir is not None:
                args.output_dir.mkdir(parents=True, exist_ok=True)
                safe_id = experiment_id.replace("/", "_").lower()
                body = result.text + (
                    f"\n\nNotes: {result.notes}\n" if result.notes else ""
                )
                (args.output_dir / f"{safe_id}.txt").write_text(body)
    finally:
        set_default_backend(previous_backend)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
