"""Command-line experiment and scenario runner.

Usage::

    python -m repro list                # show available experiments
    python -m repro run E8              # run one experiment, print its table
    python -m repro run all             # run everything (takes a minute)
    python -m repro run all --jobs 8    # same, on 8 worker processes
    python -m repro run E3 E8 -o out/   # also write rendered tables to files

    python -m repro scenario list                 # the scenario catalog
    python -m repro scenario describe mega        # one spec in full
    python -m repro scenario run city-rush-hour   # run with default seeds
    python -m repro scenario run all --jobs 4     # whole catalog, 4 workers
    python -m repro scenario run mega --seeds 1 2 # override the seed list

``--jobs N`` fans the per-seed scenario jobs out over N forked worker
processes; results are identical to a serial run for the same seeds
(see :mod:`repro.experiments.exec`).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.experiments import ALL_EXPERIMENTS, backend_for_jobs, set_default_backend


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the ICDCSW'02 multi-tier mobility experiments.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list experiment ids")

    run = commands.add_parser("run", help="run experiments and print tables")
    run.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (e.g. E8 T1), or 'all'",
    )
    run.add_argument(
        "-o",
        "--output-dir",
        type=pathlib.Path,
        default=None,
        help="also write each rendered table to <dir>/<id>.txt",
    )
    run.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for scenario jobs (default 1 = serial; "
        "results are identical for any N)",
    )

    scenario = commands.add_parser(
        "scenario", help="list, describe and run catalog scenarios"
    )
    verbs = scenario.add_subparsers(dest="scenario_command", required=True)

    verbs.add_parser("list", help="list the scenario catalog")

    describe = verbs.add_parser("describe", help="show one scenario spec")
    describe.add_argument("name", help="scenario name (see 'scenario list')")

    scenario_run = verbs.add_parser(
        "run", help="replicate scenarios over seeds and print metric tables"
    )
    scenario_run.add_argument(
        "names",
        nargs="+",
        help="scenario names (see 'scenario list'), or 'all'",
    )
    scenario_run.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for per-seed jobs (default 1 = serial; "
        "results are identical for any N)",
    )
    scenario_run.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=None,
        metavar="SEED",
        help="override the spec's default seed list",
    )
    scenario_run.add_argument(
        "--smoke",
        action="store_true",
        help="run the shrunken CI smoke variant of each scenario",
    )
    scenario_run.add_argument(
        "-o",
        "--output-dir",
        type=pathlib.Path,
        default=None,
        help="also write each rendered table to <dir>/scenario_<name>.txt",
    )
    return parser


def _scenario_main(args: argparse.Namespace) -> int:
    from repro import scenarios

    if args.scenario_command == "list":
        for spec in scenarios.iter_scenarios():
            print(
                f"{spec.name:22s} pop={spec.population:<4d} "
                f"dur={spec.duration:<5g} domains={spec.domains}  "
                f"{spec.description}"
            )
        return 0

    if args.scenario_command == "describe":
        try:
            print(scenarios.describe_scenario(args.name))
        except KeyError as error:
            print(error.args[0], file=sys.stderr)
            return 2
        return 0

    # scenario run ------------------------------------------------------
    wanted = args.names
    if len(wanted) == 1 and wanted[0].lower() == "all":
        wanted = scenarios.scenario_names()
    unknown = [name for name in wanted if name not in scenarios.scenario_names()]
    if unknown:
        print(f"unknown scenario(s): {', '.join(unknown)}", file=sys.stderr)
        print(
            f"available: {', '.join(scenarios.scenario_names())}",
            file=sys.stderr,
        )
        return 2
    if args.jobs < 1:
        print(f"--jobs must be at least 1, got {args.jobs}", file=sys.stderr)
        return 2

    specs = [scenarios.get_scenario(name) for name in wanted]
    if args.smoke:
        specs = [spec.smoke() for spec in specs]
    # One batch for the whole (scenario, seed) grid: the pool's
    # work-stealing queue balances across scenarios, so a single-seed
    # heavyweight (mega) still overlaps its neighbours under --jobs N.
    started = time.perf_counter()
    batch = scenarios.replicate_scenarios(
        specs, seeds=args.seeds, backend=backend_for_jobs(args.jobs)
    )
    elapsed = time.perf_counter() - started
    for spec, seeds, replication in batch:
        text = scenarios.format_scenario_result(spec, replication, seeds)
        print(text)
        print()
        if args.output_dir is not None:
            args.output_dir.mkdir(parents=True, exist_ok=True)
            safe = spec.name.replace("/", "_").lower()
            (args.output_dir / f"scenario_{safe}.txt").write_text(text + "\n")
    label = "scenario" if len(batch) == 1 else "scenarios"
    print(f"[{len(batch)} {label} completed in {elapsed:.1f}s]")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "scenario":
        return _scenario_main(args)

    if args.command == "list":
        for experiment_id, fn in ALL_EXPERIMENTS.items():
            first_line = (fn.__doc__ or "").strip().splitlines()
            summary = first_line[0] if first_line else ""
            print(f"{experiment_id:6s} {summary}")
        return 0

    wanted = args.experiments
    if len(wanted) == 1 and wanted[0].lower() == "all":
        wanted = list(ALL_EXPERIMENTS)
    unknown = [e for e in wanted if e not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2

    if args.jobs < 1:
        print(f"--jobs must be at least 1, got {args.jobs}", file=sys.stderr)
        return 2
    # Experiments pick the backend up via get_default_backend(), so the
    # flag covers every replicate()/sweep() call they make.
    previous_backend = set_default_backend(backend_for_jobs(args.jobs))
    try:
        for experiment_id in wanted:
            started = time.perf_counter()
            result = ALL_EXPERIMENTS[experiment_id]()
            elapsed = time.perf_counter() - started
            print(result.text)
            if result.notes:
                print(f"Notes: {result.notes}")
            print(f"[{experiment_id} completed in {elapsed:.1f}s]\n")
            if args.output_dir is not None:
                args.output_dir.mkdir(parents=True, exist_ok=True)
                safe_id = experiment_id.replace("/", "_").lower()
                body = result.text + (
                    f"\n\nNotes: {result.notes}\n" if result.notes else ""
                )
                (args.output_dir / f"{safe_id}.txt").write_text(body)
    finally:
        set_default_backend(previous_backend)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
