"""Declarative scenario specifications.

A :class:`ScenarioSpec` names a complete, reproducible workload for the
multi-tier architecture: how many domains to assemble, how many mobiles
roam them, which mobility models and traffic sources the population is
split across, and for how long.  The spec is pure data — the builder in
:mod:`repro.scenarios.builder` turns it into a ready-to-run world and
every random draw it induces is derived from the run seed through named
:class:`~repro.sim.rng.RandomStreams`, so one ``(spec, seed)`` pair is
deterministic: byte-identical metrics, on any execution backend.

The mobility-management literature the paper sits in (Helmy's multicast
mobility study, the M&M micro-mobility work) evaluates protocols over
*families* of scenarios — varied domain sizes, speeds and traffic mixes
— rather than one hand-built topology.  This module is that family
generator for our reproduction.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.fluid.config import FluidBackground
from repro.policy.config import PolicyConfig

#: Mobility model keys a spec may apportion the population across.
MOBILITY_MODELS: dict[str, str] = {
    "stationary": "parked/idle hosts that never move",
    "waypoint": "random-waypoint pedestrians (0.8-2.0 m/s, pauses)",
    "manhattan": "street-grid pedestrians/cyclists with turns (8 m/s)",
    "highway": "constant-speed vehicles along the corridor (22-33 m/s)",
    "gauss-markov": "temporally correlated wanderers (mean 5 m/s)",
    "random-direction": "fluid-flow travellers, uniform density (10 m/s)",
}

#: Traffic source keys a spec may apportion the population across.
TRAFFIC_KINDS: dict[str, str] = {
    "idle": "attached but silent (location management load only)",
    "cbr-voice": "64 kbit/s constant-bit-rate voice downlink",
    "onoff-voice": "64 kbit/s exponential on/off talkspurt voice",
    "vbr-video": "VBR video, AR(1) frame sizes, ~128 kbit/s mean",
    "poisson-data": "Poisson packet data, 20 pkt/s x 500 B",
    "elastic-data": "greedy AIMD (TCP-like) download with real acks",
}

_MIX_TOLERANCE = 1e-6


def _validate_mix(label: str, mix: Mapping[str, float], known: Mapping[str, str]):
    if not mix:
        raise ValueError(f"{label} must not be empty")
    unknown = [key for key in mix if key not in known]
    if unknown:
        raise ValueError(
            f"{label} names unknown entries {unknown}; "
            f"known: {', '.join(known)}"
        )
    if any(fraction < 0 for fraction in mix.values()):
        raise ValueError(f"{label} fractions must be non-negative")
    total = sum(mix.values())
    if abs(total - 1.0) > _MIX_TOLERANCE:
        raise ValueError(f"{label} fractions must sum to 1, got {total}")


def apportion(mix: Mapping[str, float], count: int) -> dict[str, int]:
    """Split ``count`` individuals across ``mix`` by largest remainder.

    Deterministic (ties broken by mix insertion order) and exact: the
    returned counts sum to ``count``, and every key with a positive
    fraction gets at least its floored share.  Keys that end up with
    zero individuals are dropped.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    entries = [(name, fraction) for name, fraction in mix.items() if fraction > 0]
    order = {name: position for position, (name, _) in enumerate(entries)}
    quotas = [(name, fraction * count) for name, fraction in entries]
    counts = {name: int(math.floor(quota)) for name, quota in quotas}
    leftover = count - sum(counts.values())
    by_remainder = sorted(
        quotas,
        key=lambda item: (-(item[1] - math.floor(item[1])), order[item[0]]),
    )
    for name, _ in by_remainder[:leftover]:
        counts[name] += 1
    return {name: n for name, n in counts.items() if n > 0}


@dataclass(frozen=True)
class ScenarioSpec:
    """A named, reproducible workload for the multi-tier world.

    Parameters
    ----------
    name:
        Registry key; also the prefix of every flow id in the run.
    description:
        One line shown by ``repro scenario list``.
    population:
        Number of mobile nodes.
    duration:
        Seconds of traffic (measurement window); mobility continues
        through warmup and drain as well.
    mobility_mix:
        ``model -> fraction`` over :data:`MOBILITY_MODELS`; fractions
        sum to 1 and are apportioned exactly (largest remainder).
    traffic_mix:
        ``kind -> fraction`` over :data:`TRAFFIC_KINDS`, same rules.
    seeds:
        Default seeds ``repro scenario run`` replicates over.
    domains:
        1 = Fig 3.1 only; 2 = add the overlapping second domain
        (Fig 3.3), making inter-domain handoff reachable.
    pico_cells:
        Extra in-building pico cells placed under the micro leaves.
    macro_channel_bandwidth / pico_channel_bandwidth:
        Shared air-interface (downlink) budgets in bit/s for the macro
        and pico tiers.  Both ``None`` (the default) is **legacy
        mode**: every mobile keeps its own unconstrained radio link,
        byte-identical to the pre-channel builder.  Setting either
        enables per-cell contention for *all* tiers (the unset tier
        and the micro tier fall back to the
        :data:`repro.radio.cells.TIER_DEFAULTS` budgets); uplink
        budgets are half the downlink ones.
    roam:
        ``(x_min, y_min, x_max, y_max)`` roaming area override; ``None``
        picks a sensible area for the domain count.
    hotspot_fraction:
        Fraction of the population that is a correspondent hotspot:
        each such mobile receives ``hotspot_flows`` additional
        simultaneous downlink flows (flash-crowd behaviour).
    hotspot_flows:
        Extra flows per hotspot mobile.
    sample_period:
        Mobility controller sampling period (s).
    warmup / drain:
        Seconds simulated before sources start / after they stop.
    domain_overrides:
        Keyword overrides forwarded to every
        :class:`~repro.multitier.domain.MultiTierDomain` (e.g.
        ``{"wired_bandwidth": 6e6}`` to choke the backhaul).  Baseline
        stacks map the keys they share (wired/wireless link knobs) and
        ignore the multi-tier-specific rest.
    stack:
        The protocol stack the scenario runs under: the name of a
        registered :class:`~repro.stacks.base.StackAdapter`
        (``"multitier"``, the default and byte-identity-pinned legacy
        path; ``"cellularip"``; ``"cellularip-hard"``; ``"mobileip"``).
        Validated against the registry at construction, so a typo
        fails eagerly with the registered names listed.
    fluid:
        The hybrid background block, a
        :class:`~repro.fluid.config.FluidBackground` (a plain mapping
        is coerced).  ``None`` (default) or ``population=0`` is the
        all-discrete legacy path, byte-identical to pre-fluid builds.
        A positive background population is modelled analytically
        (fluid-flow crossing rates + Erlang occupancy) and fed into
        each cell's shared channel as time-varying background claims,
        so a non-empty block requires :meth:`channels_enabled`.  The
        discrete ``population`` above becomes the tracked foreground
        cohort.  See ``docs/HYBRID.md``.
    policy:
        The tier-selection policy block, a
        :class:`~repro.policy.config.PolicyConfig` (a plain mapping is
        coerced).  The default block reproduces the historical
        hardcoded thresholds byte-identically and emits no ``policy.*``
        metrics; any non-default block makes the multi-tier stack
        record its decision trace into the metrics.  The air-interface
        knobs (``admission_factor``, ``weighted_airtime``) require
        shared channels (:meth:`channels_enabled`).  Numeric fields are
        sweepable as ``policy.<field>`` axes.
    notes:
        Free text shown by ``repro scenario describe``.
    """

    name: str
    description: str
    population: int
    duration: float
    mobility_mix: Mapping[str, float]
    traffic_mix: Mapping[str, float]
    seeds: tuple[int, ...] = (1, 2, 3)
    domains: int = 1
    pico_cells: int = 0
    macro_channel_bandwidth: Optional[float] = None
    pico_channel_bandwidth: Optional[float] = None
    roam: Optional[tuple[float, float, float, float]] = None
    hotspot_fraction: float = 0.0
    hotspot_flows: int = 3
    sample_period: float = 0.5
    warmup: float = 2.0
    drain: float = 3.0
    domain_overrides: Mapping[str, object] = field(default_factory=dict)
    stack: str = "multitier"
    policy: PolicyConfig = field(default_factory=PolicyConfig)
    fluid: Optional[FluidBackground] = None
    notes: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must not be empty")
        if self.population < 1:
            raise ValueError(f"population must be >= 1, got {self.population}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if self.domains not in (1, 2):
            raise ValueError(f"domains must be 1 or 2, got {self.domains}")
        if self.pico_cells < 0:
            raise ValueError("pico_cells must be non-negative")
        for label in ("macro_channel_bandwidth", "pico_channel_bandwidth"):
            value = getattr(self, label)
            if value is not None:
                if not isinstance(value, (int, float)) or value <= 0:
                    raise ValueError(
                        f"{label} must be a positive number or None, "
                        f"got {value!r}"
                    )
                object.__setattr__(self, label, float(value))
        if not 0.0 <= self.hotspot_fraction <= 1.0:
            raise ValueError("hotspot_fraction must be in [0, 1]")
        if self.hotspot_flows < 1:
            raise ValueError("hotspot_flows must be >= 1")
        if self.sample_period <= 0 or self.warmup < 0 or self.drain < 0:
            raise ValueError("bad timing parameters")
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        if not self.seeds:
            raise ValueError("seeds must not be empty")
        if self.roam is not None:
            roam = tuple(float(v) for v in self.roam)
            if len(roam) != 4 or roam[0] >= roam[2] or roam[1] >= roam[3]:
                raise ValueError(f"bad roam rectangle {self.roam}")
            object.__setattr__(self, "roam", roam)
        _validate_mix(
            f"{self.name}: mobility_mix", self.mobility_mix, MOBILITY_MODELS
        )
        _validate_mix(
            f"{self.name}: traffic_mix", self.traffic_mix, TRAFFIC_KINDS
        )
        if not isinstance(self.stack, str) or not self.stack:
            raise ValueError(
                f"{self.name}: stack must be a non-empty string, "
                f"got {self.stack!r}"
            )
        # Late import: the stack adapters themselves import this module
        # (no spec is ever instantiated during that import, so the
        # registry is always populated by the time validation runs).
        from repro.stacks.registry import is_registered, stack_names

        if not is_registered(self.stack):
            raise ValueError(
                f"{self.name}: unknown stack {self.stack!r}; "
                f"registered: {', '.join(stack_names())}"
            )
        if isinstance(self.policy, Mapping):
            object.__setattr__(self, "policy", PolicyConfig(**dict(self.policy)))
        if not isinstance(self.policy, PolicyConfig):
            raise ValueError(
                f"{self.name}: policy must be a PolicyConfig or mapping, "
                f"got {self.policy!r}"
            )
        if isinstance(self.fluid, Mapping):
            object.__setattr__(self, "fluid", FluidBackground(**dict(self.fluid)))
        if self.fluid is not None and not isinstance(self.fluid, FluidBackground):
            raise ValueError(
                f"{self.name}: fluid must be a FluidBackground, mapping or "
                f"None, got {self.fluid!r}"
            )
        if (
            self.fluid is not None
            and self.fluid.enabled
            and not self.channels_enabled()
        ):
            raise ValueError(
                f"{self.name}: a fluid background population requires shared "
                f"channels (set a channel bandwidth) — background claims "
                f"have nothing to claim on legacy unconstrained radios"
            )
        if not self.channels_enabled():
            if self.policy.admission_factor is not None:
                raise ValueError(
                    f"{self.name}: policy.admission_factor requires shared "
                    f"channels (set a channel bandwidth)"
                )
            if self.policy.weighted_airtime:
                raise ValueError(
                    f"{self.name}: policy.weighted_airtime requires shared "
                    f"channels (set a channel bandwidth)"
                )

    # ------------------------------------------------------------------
    def mobility_counts(self) -> dict[str, int]:
        """Exact per-model population counts (largest remainder).

        Deterministic: depends only on the spec, never on the seed.
        """
        return apportion(self.mobility_mix, self.population)

    def traffic_counts(self) -> dict[str, int]:
        """Exact per-kind population counts (largest remainder).

        Deterministic: depends only on the spec, never on the seed.
        """
        return apportion(self.traffic_mix, self.population)

    def hotspot_count(self) -> int:
        """Number of hotspot mobiles: ``ceil(fraction * population)``."""
        return int(math.ceil(self.hotspot_fraction * self.population))

    def channels_enabled(self) -> bool:
        """True when the shared air interface contends (either channel
        bandwidth field is set); False = legacy unconstrained radio."""
        return (
            self.macro_channel_bandwidth is not None
            or self.pico_channel_bandwidth is not None
        )

    def total_flows(self) -> int:
        """Number of measured downlink flows the spec induces."""
        streaming = self.population - self.traffic_counts().get("idle", 0)
        return streaming + self.hotspot_count() * self.hotspot_flows

    # ------------------------------------------------------------------
    def replace(self, **changes) -> "ScenarioSpec":
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    def scaled(self, factor: float) -> "ScenarioSpec":
        """A copy with the population scaled by ``factor``."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return self.replace(population=max(1, round(self.population * factor)))

    def smoke(self) -> "ScenarioSpec":
        """A shrunken copy for CI smoke runs and determinism tests.

        Same code path, same mixes, same topology — just a small
        population, short duration and a single seed.
        """
        return self.replace(
            population=min(self.population, 6),
            duration=min(self.duration, 8.0),
            seeds=self.seeds[:1],
            hotspot_flows=min(self.hotspot_flows, 2),
        )


__all__ = [
    "MOBILITY_MODELS",
    "TRAFFIC_KINDS",
    "ScenarioSpec",
    "apportion",
]
