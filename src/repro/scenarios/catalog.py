"""The scenario registry and the shipped scenario catalog.

Scenarios are registered by name; ``repro scenario list|describe|run``
and :func:`replicate_scenario` look them up here.  Registering a new
workload is one call::

    from repro.scenarios import ScenarioSpec, register

    register(ScenarioSpec(
        name="stadium-exit",
        description="20k fans leave one micro cell at walking speed",
        population=40,
        duration=30.0,
        mobility_mix={"waypoint": 0.8, "stationary": 0.2},
        traffic_mix={"cbr-voice": 0.5, "poisson-data": 0.3, "idle": 0.2},
    ))

Determinism: every shipped scenario derives all randomness from the
run seed, so ``repro scenario run <name>`` is byte-identical serial vs
``--jobs N`` and across repeats — the same guarantee the experiment
suite has.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

from repro.experiments.exec import ExecutionBackend, get_default_backend
from repro.experiments.runner import Replication, aggregate, replicate
from repro.scenarios.builder import run_scenario_spec, scenario_job
from repro.scenarios.spec import ScenarioSpec

_REGISTRY: dict[str, ScenarioSpec] = {}


def register(spec: ScenarioSpec, replace: bool = False) -> ScenarioSpec:
    """Add ``spec`` to the catalog under ``spec.name``.

    ``replace=False`` (the default) raises :class:`ValueError` on a
    duplicate name so two workloads can never silently shadow each
    other.  Returns the registered spec for chaining.
    """
    if not replace and spec.name in _REGISTRY:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a registered spec by name; :class:`KeyError` if absent."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(_REGISTRY)}"
        ) from None


def scenario_names() -> list[str]:
    """The registered scenario names, in registration order."""
    return list(_REGISTRY)


def iter_scenarios() -> list[ScenarioSpec]:
    """The registered specs, in registration order."""
    return list(_REGISTRY.values())


def _resolve(scenario: Union[str, ScenarioSpec]) -> ScenarioSpec:
    if isinstance(scenario, ScenarioSpec):
        return scenario
    return get_scenario(scenario)


def run_scenario(
    scenario: Union[str, ScenarioSpec], seed: int = 1
) -> dict[str, float]:
    """One ``(scenario, seed)`` run — the execution-backend job entry."""
    return run_scenario_spec(_resolve(scenario), seed)


def replicate_scenario(
    scenario: Union[str, ScenarioSpec],
    seeds: Optional[Iterable[int]] = None,
    confidence: float = 0.95,
    backend: Optional[ExecutionBackend] = None,
) -> Replication:
    """Replicate a scenario across seeds on an execution backend.

    ``seeds=None`` uses the spec's own default seed list.  Jobs dispatch
    through :func:`repro.experiments.runner.replicate`, inheriting the
    PR 1 ordered-deterministic aggregation guarantee: any backend, any
    ``--jobs N``, same output.
    """
    spec = _resolve(scenario)
    if seeds is None:
        seeds = spec.seeds

    def job(seed: int) -> dict[str, float]:
        return run_scenario_spec(spec, seed)

    return replicate(job, seeds, confidence=confidence, backend=backend)


def replicate_scenarios(
    scenarios: Sequence[Union[str, ScenarioSpec]],
    seeds: Optional[Iterable[int]] = None,
    confidence: float = 0.95,
    backend: Optional[ExecutionBackend] = None,
    stack: Optional[str] = None,
    shards: int = 1,
) -> list[tuple[ScenarioSpec, list[int], Replication]]:
    """Replicate several scenarios as ONE backend batch.

    Submitting the whole (scenario, seed) grid at once lets a parallel
    backend's work-stealing queue balance heterogeneous scenarios — a
    ``mega`` seed next to a ``sparse-rural`` one — instead of the
    per-scenario seed lists (often a single seed) capping parallelism.
    ``seeds=None`` uses each spec's own default list.  ``stack``
    rebinds every spec onto one protocol stack (``None`` keeps each
    spec's own ``stack`` field; an unknown name fails eagerly via spec
    validation, listing the registered stacks).  ``shards > 1``
    decomposes every run spatially over that many processes (see
    :mod:`repro.shard`); metrics are byte-identical for any value.
    Results come back in job order and are chunked per scenario, so
    the output is identical to calling :func:`replicate_scenario` one
    name at a time.
    """
    if backend is None:
        backend = get_default_backend()
    specs = [_resolve(scenario) for scenario in scenarios]
    if stack is not None:
        specs = [spec.replace(stack=stack) for spec in specs]
    # Materialize once: a one-shot iterator must not be drained by the
    # first scenario and leave the rest with empty seed lists.
    shared_seeds = list(seeds) if seeds is not None else None
    seed_lists = [
        shared_seeds if shared_seeds is not None else list(spec.seeds)
        for spec in specs
    ]
    jobs = [
        scenario_job(spec, seed, shards)
        for spec, seed_list in zip(specs, seed_lists)
        for seed in seed_list
    ]
    results = backend.run(jobs)
    out: list[tuple[ScenarioSpec, list[int], Replication]] = []
    offset = 0
    for spec, seed_list in zip(specs, seed_lists):
        chunk = results[offset:offset + len(seed_list)]
        offset += len(seed_list)
        out.append((spec, seed_list, aggregate(chunk, confidence)))
    return out


# ----------------------------------------------------------------------
# Rendering (used by the CLI and by output-equality tests)
# ----------------------------------------------------------------------
def describe_scenario(scenario: Union[str, ScenarioSpec]) -> str:
    """A full, human-readable description of one spec."""
    spec = _resolve(scenario)
    lines = [
        f"{spec.name}: {spec.description}",
        "",
        f"  population       {spec.population} mobiles "
        f"({spec.total_flows()} measured flows)",
        f"  duration         {spec.duration:g} s "
        f"(+{spec.warmup:g} s warmup, +{spec.drain:g} s drain)",
        f"  domains          {spec.domains}"
        + ("  (inter-domain handoff reachable)" if spec.domains == 2 else ""),
        f"  pico cells       {spec.pico_cells}",
        f"  default seeds    {', '.join(str(s) for s in spec.seeds)}",
    ]
    if spec.roam is not None:
        lines.append(f"  roam             {spec.roam}")
    if spec.channels_enabled():
        budgets = []
        if spec.macro_channel_bandwidth is not None:
            budgets.append(f"macro={spec.macro_channel_bandwidth:g}")
        if spec.pico_channel_bandwidth is not None:
            budgets.append(f"pico={spec.pico_channel_bandwidth:g}")
        lines.append(
            f"  air interface    shared per-cell channels "
            f"({', '.join(budgets)} bit/s downlink; unset tiers at "
            f"TIER_DEFAULTS)"
        )
    if spec.hotspot_fraction > 0:
        lines.append(
            f"  hotspots         {spec.hotspot_count()} mobiles x "
            f"{spec.hotspot_flows} extra flows"
        )
    if spec.domain_overrides:
        overrides = ", ".join(
            f"{key}={value!r}" for key, value in spec.domain_overrides.items()
        )
        lines.append(f"  domain overrides {overrides}")
    if spec.fluid is not None and spec.fluid.enabled:
        fluid = spec.fluid
        drift = (
            f", drift=({fluid.drift[0]:g}, {fluid.drift[1]:g}) m/s"
            if fluid.drift != (0.0, 0.0)
            else ""
        )
        lines.append(
            f"  fluid background {fluid.population} analytic mobiles "
            f"(speed {fluid.mean_speed:g} m/s, activity "
            f"{fluid.activity:.0%}, {fluid.per_mobile_bps:g} bit/s "
            f"per session, refresh {fluid.update_period:g} s{drift})"
        )
    if not spec.policy.is_default():
        knobs = [f"mode={spec.policy.mode}"]
        knobs.append(f"speed_threshold={spec.policy.speed_threshold:g}")
        if spec.policy.demand_threshold is not None:
            knobs.append(f"demand_threshold={spec.policy.demand_threshold:g}")
        if spec.policy.admission_factor is not None:
            knobs.append(f"admission_factor={spec.policy.admission_factor:g}")
        if spec.policy.weighted_airtime:
            knobs.append("weighted_airtime=on")
        lines.append(f"  policy           {', '.join(knobs)}")
    # Protocol stacks: every registered adapter can run any catalog
    # scenario; list which adapter surface this spec exercises under
    # each, so `--stack <name|all>` choices are discoverable here.
    from repro.stacks.registry import iter_stacks

    lines.append("  stacks (select with --stack <name|all>):")
    for adapter in iter_stacks():
        marker = " [spec default]" if adapter.name == spec.stack else ""
        lines.append(f"    {adapter.name}{marker}: {adapter.description}")
        lines.append(f"      exercises: {'; '.join(adapter.exercised(spec))}")
    # Show the apportionment actually used (post largest-remainder),
    # not the raw spec fractions: for small populations they differ,
    # and the builder instantiates the counts, never the fractions.
    mobility_counts = spec.mobility_counts()
    lines.append("  mobility mix (apportioned):")
    for model in spec.mobility_mix:
        count = mobility_counts.get(model, 0)
        lines.append(
            f"    {model:18s} {count / spec.population:5.0%}  "
            f"({count} mobiles; spec {spec.mobility_mix[model]:.0%})"
        )
    traffic_counts = spec.traffic_counts()
    lines.append("  traffic mix (apportioned):")
    for kind in spec.traffic_mix:
        count = traffic_counts.get(kind, 0)
        lines.append(
            f"    {kind:18s} {count / spec.population:5.0%}  "
            f"({count} mobiles; spec {spec.traffic_mix[kind]:.0%})"
        )
    if spec.notes:
        lines.extend(["", f"  {spec.notes}"])
    return "\n".join(lines)


def format_scenario_result(
    scenario: Union[str, ScenarioSpec],
    replication: Replication,
    seeds: Iterable[int],
) -> str:
    """Render one replicated scenario run as a metric table."""
    from repro.metrics.tables import format_table

    from repro.stacks.registry import DEFAULT_STACK

    spec = _resolve(scenario)
    seeds = list(seeds)
    rows = [
        [name, estimate.mean, estimate.half_width]
        for name, estimate in replication.metrics.items()
    ]
    # Non-default stacks are named in the title; the default stays
    # un-suffixed so legacy output (and `--stack multitier`) is
    # byte-identical to pre-stacks rendering.
    stack_label = (
        f" [stack={spec.stack}]" if spec.stack != DEFAULT_STACK else ""
    )
    return format_table(
        ["metric", "mean", "ci95_half_width"],
        rows,
        title=(
            f"scenario {spec.name}{stack_label} "
            f"({len(seeds)} seed{'s' if len(seeds) != 1 else ''}: "
            f"{', '.join(str(s) for s in seeds)})"
        ),
    )


# ----------------------------------------------------------------------
# Shipped catalog
# ----------------------------------------------------------------------
#: The paper's own evaluation drives at most a handful of mobiles; the
#: catalog spans pedestrian-only micro saturation up to a 10-25x
#: population stress mix, so every future workload PR has a named,
#: reproducible starting point.

register(ScenarioSpec(
    name="city-rush-hour",
    description="Commute peak: highway vehicles over a manhattan core, "
    "voice-heavy traffic",
    population=18,
    duration=40.0,
    mobility_mix={"highway": 0.45, "manhattan": 0.35, "waypoint": 0.20},
    traffic_mix={
        "cbr-voice": 0.35,
        "onoff-voice": 0.20,
        "poisson-data": 0.25,
        "idle": 0.20,
    },
    notes="The speed factor at work: vehicles should settle on the macro "
    "tier while the street grid population churns across micro cells.",
))

register(ScenarioSpec(
    name="campus-dense",
    description="Micro-cell saturation: dense pedestrian campus on a "
    "choked backhaul, with in-building picos",
    population=22,
    duration=30.0,
    mobility_mix={"waypoint": 0.55, "manhattan": 0.25, "stationary": 0.20},
    traffic_mix={
        "vbr-video": 0.25,
        "cbr-voice": 0.25,
        "poisson-data": 0.25,
        "idle": 0.25,
    },
    roam=(-3100.0, -450.0, -900.0, 450.0),  # the A/B/C micro cluster
    pico_cells=2,
    domain_overrides={"wired_bandwidth": 2.5e6},
    notes="Everyone lives under the western micro cluster; the 2.5 "
    "Mbit/s backhaul override pushes the shared rsmc1-R3-R1-A chain "
    "toward saturation, so queueing shows up in mean_delay/jitter.",
))

register(ScenarioSpec(
    name="campus-air",
    description="campus-dense population on a contended shared air "
    "interface: per-cell channels bind, not the backhaul",
    population=22,
    duration=30.0,
    mobility_mix={"waypoint": 0.55, "manhattan": 0.25, "stationary": 0.20},
    traffic_mix={
        "vbr-video": 0.25,
        "cbr-voice": 0.25,
        "poisson-data": 0.25,
        "idle": 0.25,
    },
    roam=(-3100.0, -450.0, -900.0, 450.0),  # the A/B/C micro cluster
    pico_cells=2,
    macro_channel_bandwidth=384e3,
    pico_channel_bandwidth=4e6,
    notes="The only shipped scenario with air-interface contention "
    "enabled by default: the wired backhaul stays at the uncongested "
    "100 Mbit/s default while every cell's shared channel (macro 384 "
    "kbit/s, micro 2 Mbit/s, pico 4 Mbit/s downlink) arbitrates "
    "airtime FIFO with mobile-index tie-breaks — queueing now shows "
    "up over the air, where the paper's pico-overlay argument lives.",
))

register(ScenarioSpec(
    name="sparse-rural",
    description="Macro-only coverage band: few, fast, spread-out users",
    population=5,
    duration=30.0,
    mobility_mix={"random-direction": 0.6, "gauss-markov": 0.4},
    traffic_mix={"onoff-voice": 0.4, "poisson-data": 0.2, "idle": 0.4},
    roam=(-4200.0, 500.0, 4200.0, 1200.0),  # above every micro cell
    notes="The roam band sits outside all 400 m micro cells, so the "
    "macro umbrella carries everything — zero micro handoffs expected.",
))

register(ScenarioSpec(
    name="flash-crowd",
    description="Correspondent hotspots: a quarter of the crowd draws "
    "several simultaneous downlink flows",
    population=14,
    duration=20.0,
    mobility_mix={"stationary": 0.5, "waypoint": 0.5},
    traffic_mix={"poisson-data": 0.5, "cbr-voice": 0.25, "idle": 0.25},
    roam=(-3100.0, -450.0, -900.0, 450.0),
    hotspot_fraction=0.25,
    hotspot_flows=4,
    notes="Models a flash crowd around an event: hotspot mobiles each "
    "receive extra correspondent flows on top of their own traffic.",
))

register(ScenarioSpec(
    name="commuter-corridor",
    description="Two-domain highway commute with elastic downloads "
    "riding through inter-domain handoffs",
    population=12,
    duration=35.0,
    domains=2,
    mobility_mix={"highway": 0.7, "gauss-markov": 0.3},
    traffic_mix={"cbr-voice": 0.5, "elastic-data": 0.25, "idle": 0.25},
    roam=(-4200.0, -600.0, 7000.0, 600.0),
    notes="Wrapping vehicles cross from domain 1 into domain 2 (R4/G) "
    "and back: inter-domain handoff under live elastic + voice load — "
    "a combination no fixed experiment exercises.",
))

register(ScenarioSpec(
    name="downtown-multimedia",
    description="Street-grid multimedia: VBR video and elastic data "
    "over the micro tier",
    population=12,
    duration=40.0,
    mobility_mix={"manhattan": 0.7, "waypoint": 0.3},
    traffic_mix={
        "vbr-video": 0.4,
        "cbr-voice": 0.3,
        "elastic-data": 0.2,
        "idle": 0.1,
    },
    roam=(-3200.0, -500.0, 3200.0, 500.0),
    notes="The paper's multimedia pitch on the street grid: bursty VBR "
    "frames and AIMD downloads while the crowd hops micro cells.",
))

register(ScenarioSpec(
    name="mega",
    description="Scale stress: 120 mobiles (20-100x the paper's runs), "
    "both domains, every model and traffic kind",
    population=120,
    duration=40.0,
    domains=2,
    pico_cells=4,
    mobility_mix={
        "highway": 0.20,
        "manhattan": 0.20,
        "waypoint": 0.20,
        "gauss-markov": 0.15,
        "random-direction": 0.15,
        "stationary": 0.10,
    },
    traffic_mix={
        "cbr-voice": 0.20,
        "onoff-voice": 0.15,
        "vbr-video": 0.15,
        "poisson-data": 0.20,
        "elastic-data": 0.10,
        "idle": 0.20,
    },
    hotspot_fraction=0.10,
    hotspot_flows=3,
    seeds=(1,),
    notes="The catalog's load-imbalance probe: schedule it next to "
    "sparse-rural on a pool backend and the work-stealing queue earns "
    "its keep.  Expect tens of seconds of wall clock per seed.",
))


register(ScenarioSpec(
    name="metro-100k",
    description="Hybrid city scale: 100k analytic background mobiles "
    "over every cell, a tracked discrete cohort keeping full metrics",
    population=24,
    duration=30.0,
    domains=2,
    pico_cells=4,
    mobility_mix={
        "waypoint": 0.35,
        "manhattan": 0.25,
        "highway": 0.20,
        "gauss-markov": 0.20,
    },
    traffic_mix={
        "cbr-voice": 0.25,
        "onoff-voice": 0.20,
        "vbr-video": 0.15,
        "poisson-data": 0.25,
        "idle": 0.15,
    },
    macro_channel_bandwidth=384e3,
    pico_channel_bandwidth=4e6,
    fluid={
        "population": 100_000,
        "mean_speed": 1.5,
        "activity": 0.02,
        "per_mobile_bps": 16e3,
        "update_period": 1.0,
        "drift": (0.4, 0.0),
    },
    seeds=(1,),
    notes="The ROADMAP's million-mobile direction made runnable on a "
    "laptop: the 100k untracked mobiles exist only as fluid-flow "
    "crossing rates and Erlang occupancy, claiming each cell's shared "
    "airtime as a slow eastward commute wave, while the 24-mobile "
    "discrete cohort pays full per-packet cost and reports the usual "
    "metric table plus the fluid.* family.  Smoke variant: same 100k "
    "background, 6 tracked mobiles, 8 s window.",
))


__all__ = [
    "describe_scenario",
    "format_scenario_result",
    "get_scenario",
    "iter_scenarios",
    "register",
    "replicate_scenario",
    "replicate_scenarios",
    "run_scenario",
    "scenario_names",
]
