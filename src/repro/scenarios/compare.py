"""Cross-stack scenario comparison: the paper's Table-1 argument at
catalog scale.

:func:`compare_scenario_stacks` runs each requested scenario under
several protocol stacks (default: every registered stack) and returns
per-scenario :class:`StackComparison` results;
:func:`format_stack_comparison` renders the side-by-side table — one
row per common metric, one mean + CI column pair per stack — that
``repro scenario run <name> --stack all`` prints.

The whole (stack, scenario, seed) grid is dispatched through ONE
:meth:`ExecutionBackend.run <repro.experiments.exec.ExecutionBackend.run>`
batch (via :func:`repro.scenarios.catalog.replicate_scenarios`), so
``--jobs N`` overlaps stacks, scenarios and seeds alike.

Determinism: each (stack, spec, seed) job is deterministic (see
:mod:`repro.stacks`), results aggregate in job order, and rendering is
pure — the comparison table is byte-identical between serial and
``--jobs N`` execution and across repeats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Union

from repro.experiments.exec import ExecutionBackend
from repro.experiments.runner import Replication
from repro.metrics.tables import format_table
from repro.scenarios.catalog import _resolve, replicate_scenarios
from repro.scenarios.spec import ScenarioSpec
from repro.stacks.base import COMMON_METRICS
from repro.stacks.registry import get_stack, stack_names


@dataclass
class StackComparison:
    """One scenario replicated under several stacks, side by side."""

    spec: ScenarioSpec
    stacks: list[str]
    seeds: list[int]
    #: stack name -> aggregated per-seed metrics for that stack.
    replications: dict[str, Replication]
    #: Confidence level of the replications' intervals.
    confidence: float = 0.95

    def metric_rows(self) -> list[str]:
        """The metric names the comparison table shows, in order.

        The common cross-stack metrics first, then any extra keys
        present under *every* compared stack (e.g. the ``air_*``
        contention metrics), sorted by name so the order is canonical
        — independent of metric emission order, which keeps live
        tables byte-identical to ones rebuilt from a campaign results
        store.  Stack-specific namespaced extras are excluded here and
        rendered separately.
        """
        rows = list(COMMON_METRICS)
        shared = set.intersection(
            *(set(rep.metrics) for rep in self.replications.values())
        )
        rows.extend(sorted(shared - set(rows)))
        return rows

    def extras(self, stack: str) -> dict[str, float]:
        """``stack``'s namespaced extra metrics (means), e.g. ``cip.*``.

        Keys that are not shared by every compared stack — the
        stack-specific tail the side-by-side table cannot align —
        sorted by name (canonical order, matching store rebuilds).
        """
        shared = set(self.metric_rows())
        replication = self.replications[stack]
        return {
            name: replication.metrics[name].mean
            for name in sorted(replication.metrics)
            if name not in shared
        }


def build_stack_comparison(
    spec: ScenarioSpec,
    replications: dict[str, Replication],
    seeds: Sequence[int],
    confidence: float = 0.95,
) -> StackComparison:
    """Assemble a :class:`StackComparison` from per-stack replications.

    The construction seam shared by :func:`compare_scenario_stacks`
    (which runs the grid live) and the campaign results store
    (:mod:`repro.campaign.store`, which re-aggregates persisted
    per-item records) — both render through
    :func:`format_stack_comparison`, so a resumed campaign's
    comparison table is byte-identical to a live ``--stack all`` run
    of the same grid.  Stack order follows the ``replications``
    mapping's insertion order.  Deterministic: pure data assembly.
    """
    if not replications:
        raise ValueError("replications must not be empty")
    return StackComparison(
        spec=spec,
        stacks=list(replications),
        seeds=list(seeds),
        replications=dict(replications),
        confidence=confidence,
    )


def compare_scenario_stacks(
    scenarios: Sequence[Union[str, ScenarioSpec]],
    stacks: Optional[Sequence[str]] = None,
    seeds: Optional[Iterable[int]] = None,
    confidence: float = 0.95,
    backend: Optional[ExecutionBackend] = None,
    shards: int = 1,
) -> list[StackComparison]:
    """Run scenarios under several stacks as ONE backend batch.

    ``stacks=None`` compares every registered stack (registration
    order); unknown names fail eagerly with the registered list.
    ``seeds=None`` uses each spec's own default seed list (identical
    across that spec's stacks, so columns are paired by seed).  The
    whole (scenario, stack, seed) grid goes through a single
    :meth:`ExecutionBackend.run` call, so a pool's work-stealing queue
    balances heavyweight stacks against light ones.  ``shards > 1``
    decomposes every run spatially (see :mod:`repro.shard`) with
    byte-identical metrics.  Deterministic: same inputs, same
    backend-independent output.
    """
    names = list(stacks) if stacks is not None else stack_names()
    if not names:
        raise ValueError("stacks must not be empty")
    for name in names:
        get_stack(name)  # eager: unknown --stack fails before any run
    specs = [_resolve(scenario) for scenario in scenarios]
    derived = [
        spec.replace(stack=name) for spec in specs for name in names
    ]
    batch = replicate_scenarios(
        derived,
        seeds=seeds,
        confidence=confidence,
        backend=backend,
        shards=shards,
    )
    comparisons: list[StackComparison] = []
    offset = 0
    for spec in specs:
        replications: dict[str, Replication] = {}
        seed_list: list[int] = []
        for name in names:
            _, seed_list, replication = batch[offset]
            offset += 1
            replications[name] = replication
        comparisons.append(build_stack_comparison(
            spec, replications, seed_list, confidence
        ))
    return comparisons


def format_stack_comparison(comparison: StackComparison) -> str:
    """Render one :class:`StackComparison` as a side-by-side table.

    One row per cross-stack metric; per stack, a mean column and a
    CI-half-width column labelled from the confidence level the
    intervals were computed at.  Stack-specific namespaced extras
    (``cip.*``, ``mip.*``) follow as one line per stack.
    Deterministic: pure rendering of the comparison data.
    """
    spec = comparison.spec
    level = f"ci{int(round(comparison.confidence * 100))}"
    headers = ["metric"]
    for name in comparison.stacks:
        headers += [name, f"{name}_{level}"]
    rows: list[list[object]] = []
    for metric in comparison.metric_rows():
        row: list[object] = [metric]
        for name in comparison.stacks:
            estimate = comparison.replications[name].metrics.get(metric)
            if estimate is None:
                row += [float("nan"), float("nan")]
            else:
                row += [estimate.mean, estimate.half_width]
        rows.append(row)
    seeds = [str(seed) for seed in comparison.seeds]
    title = (
        f"scenario {spec.name} — stack comparison "
        f"({len(seeds)} seed{'s' if len(seeds) != 1 else ''}: "
        f"{', '.join(seeds)})"
    )
    lines = [format_table(headers, rows, title=title)]
    for name in comparison.stacks:
        extras = comparison.extras(name)
        if extras:
            rendered = "  ".join(
                f"{key}={value:g}" for key, value in extras.items()
            )
            lines.append(f"{name} extras: {rendered}")
    return "\n".join(lines)


__all__ = [
    "StackComparison",
    "build_stack_comparison",
    "compare_scenario_stacks",
    "format_stack_comparison",
]
