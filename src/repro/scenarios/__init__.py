"""Declarative scenario catalog: named, reproducible workloads.

A scenario composes topology (domains, pico cells), a mobility mix, a
traffic mix and a protocol stack into one named workload:

* :class:`~repro.scenarios.spec.ScenarioSpec` — the declarative spec;
* :mod:`repro.scenarios.builder` — spec + seed -> ready-to-run world;
* :mod:`repro.scenarios.catalog` — the registry and shipped scenarios,
  plus :func:`~repro.scenarios.catalog.replicate_scenario`, which
  dispatches runs through the execution backends with the same
  ordered-deterministic aggregation guarantee as the experiments;
* :mod:`repro.scenarios.sweep` — named axes over spec fields
  (:class:`~repro.scenarios.sweep.ScenarioSweep`), turning catalog
  entries into paper-style figures with per-point confidence
  intervals;
* :mod:`repro.scenarios.compare` — cross-stack comparison
  (:func:`~repro.scenarios.compare.compare_scenario_stacks`): any
  scenario under every registered protocol stack (multi-tier,
  Cellular IP, Mobile IP — see :mod:`repro.stacks`) as one backend
  batch, rendered side by side.

CLI: ``repro scenario list | describe <name> | run <name> --jobs N
[--stack <name|all>] | sweep <name> --jobs N [--stack <name|all>]``.
"""

from repro.scenarios.builder import (
    BuiltScenario,
    build_scenario,
    roam_rectangle,
    run_scenario_spec,
    run_scenario_trace,
)
from repro.scenarios.catalog import (
    describe_scenario,
    format_scenario_result,
    get_scenario,
    iter_scenarios,
    register,
    replicate_scenario,
    replicate_scenarios,
    run_scenario,
    scenario_names,
)
from repro.scenarios.compare import (
    StackComparison,
    build_stack_comparison,
    compare_scenario_stacks,
    format_stack_comparison,
)
from repro.scenarios.spec import (
    MOBILITY_MODELS,
    TRAFFIC_KINDS,
    ScenarioSpec,
    apportion,
)
from repro.scenarios.sweep import (
    ScenarioSweep,
    describe_sweep,
    effective_sweep,
    format_sweep_result,
    get_sweep,
    iter_sweeps,
    register_sweep,
    sweep_names,
    sweep_points,
    sweep_scenario,
    sweep_scenarios,
)

__all__ = [
    "MOBILITY_MODELS",
    "TRAFFIC_KINDS",
    "BuiltScenario",
    "ScenarioSpec",
    "ScenarioSweep",
    "StackComparison",
    "apportion",
    "build_scenario",
    "build_stack_comparison",
    "compare_scenario_stacks",
    "describe_scenario",
    "describe_sweep",
    "effective_sweep",
    "format_scenario_result",
    "format_stack_comparison",
    "format_sweep_result",
    "get_scenario",
    "get_sweep",
    "iter_scenarios",
    "iter_sweeps",
    "register",
    "register_sweep",
    "replicate_scenario",
    "replicate_scenarios",
    "roam_rectangle",
    "run_scenario",
    "run_scenario_spec",
    "run_scenario_trace",
    "scenario_names",
    "sweep_names",
    "sweep_points",
    "sweep_scenario",
    "sweep_scenarios",
]
