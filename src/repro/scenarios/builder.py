"""Instantiate a :class:`~repro.scenarios.spec.ScenarioSpec` into a
ready-to-run world under its protocol stack, and execute it.

Since the stacks refactor this module is a thin dispatcher: the
world-assembly logic lives in the stack adapters under
:mod:`repro.stacks` (the multi-tier code moved verbatim to
:mod:`repro.stacks.multitier`), and :func:`build_scenario` routes a
spec to the adapter named by its ``stack`` field (default
``"multitier"``).  Every adapter instantiates the *same* seeded
population and traffic plan (:mod:`repro.stacks.population`), so runs
of different stacks at one seed are directly comparable.

:func:`run_scenario_spec` is the execution-engine job entry point: it
builds, runs warmup → traffic → drain, and returns a plain-float metric
dict, which is exactly what the PR 1 backends require for their
ordered-deterministic aggregation guarantee.

Determinism: dispatch is pure table lookup; each adapter derives all
randomness from the run seed through named
:class:`~repro.sim.rng.RandomStreams`, so one ``(spec, seed)`` pair —
stack field included — returns byte-identical metrics in any process,
on any execution backend.  ``stack="multitier"`` output is pinned
byte-for-byte to the pre-refactor builder by the
``results/scenarios_smoke/`` goldens.
"""

from __future__ import annotations

from repro.scenarios.spec import ScenarioSpec
from repro.stacks.multitier import BuiltScenario
from repro.stacks.population import roam_rectangle
from repro.stacks.registry import get_stack


def build_scenario(spec: ScenarioSpec, seed: int):
    """Assemble the world, population and traffic plan for one run.

    Parameters
    ----------
    spec:
        The declarative workload (validated at construction); its
        ``stack`` field names the registered adapter that builds the
        world (``multitier`` | ``cellularip`` | ``mobileip`` | any
        stack registered via
        :func:`repro.stacks.registry.register_stack`).
    seed:
        Run seed; all randomness flows through
        :class:`~repro.sim.rng.RandomStreams` named per mobile index,
        so the same ``(spec, seed)`` pair always builds an identical
        world — the root of the catalog's determinism guarantee.

    Returns
    -------
    StackRun
        The assembled (not yet run) world — a
        :class:`~repro.stacks.multitier.BuiltScenario` for the default
        stack — with an ``execute()`` method returning the metric dict.
    """
    return get_stack(spec.stack).build(spec, seed)


def run_scenario_spec(spec: ScenarioSpec, seed: int) -> dict[str, float]:
    """Build and execute one ``(spec, seed)`` run — the backend job.

    Returns the plain-float metric dict from the stack run's
    ``execute()`` (never NaN), which is what the execution backends
    require for their ordered-deterministic aggregation guarantee: the
    same ``(spec, seed)`` pair returns byte-identical metrics in any
    process, on any backend.
    """
    return build_scenario(spec, seed).execute()


def scenario_job(spec: ScenarioSpec, seed: int, shards: int = 1):
    """The zero-argument backend job for one ``(spec, seed)`` run.

    ``shards <= 1`` returns the plain serial :func:`run_scenario_spec`
    partial; larger values return a
    :func:`repro.shard.runner.run_scenario_spec_sharded` partial, which
    decomposes the run spatially over ``shards`` processes and — by the
    shard determinism contract (see :mod:`repro.shard`) — produces the
    byte-identical metric dict.  One seam so every dispatcher
    (replicate, sweep, campaign) threads ``--shards`` identically.
    """
    from functools import partial

    if shards <= 1:
        return partial(run_scenario_spec, spec, seed)
    # Lazy: repro.shard.runner imports this module at load time.
    from repro.shard.runner import run_scenario_spec_sharded

    return partial(run_scenario_spec_sharded, spec, seed, shards)


def run_scenario_trace(spec: ScenarioSpec, seed: int):
    """Run one ``(spec, seed)`` pair and keep its decision trace.

    Returns ``(metrics, trace)`` where ``trace`` is the world's
    :class:`~repro.policy.trace.DecisionTrace` (the per-world ring
    buffer every tier decision and fallback is recorded into) for
    stacks whose world carries one — the multi-tier stack — and
    ``None`` for flat baselines, which make no tier decisions.  The
    metric dict is byte-identical to :func:`run_scenario_spec` for the
    same pair; tracing is observation, not behavior.  Deterministic:
    the trace replays identically for one ``(spec, seed)``.
    """
    built = build_scenario(spec, seed)
    metrics = built.execute()
    world = getattr(built, "world", None)
    return metrics, getattr(world, "decision_trace", None)


__all__ = [
    "BuiltScenario",
    "build_scenario",
    "roam_rectangle",
    "run_scenario_spec",
    "run_scenario_trace",
    "scenario_job",
]
