"""Instantiate a :class:`~repro.scenarios.spec.ScenarioSpec` into a
ready-to-run world and execute it.

The builder is the bridge between the declarative catalog and the
simulation substrate: it assembles a
:class:`~repro.multitier.architecture.MultiTierWorld` (one or two
domains, optional pico cells), spawns the mobile population with
mobility models and per-mobile controllers, and plans the traffic mix.
All randomness — start positions, model dynamics, population
assignments — flows through named :class:`~repro.sim.rng.RandomStreams`
keyed by mobile index, so a ``(spec, seed)`` pair is fully reproducible
and adding one mobile never perturbs another's trajectory.

:func:`run_scenario_spec` is the execution-engine job entry point: it
builds, runs warmup → traffic → drain, and returns a plain-float metric
dict, which is exactly what the PR 1 backends require for their
ordered-deterministic aggregation guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.mobility import (
    GaussMarkov,
    Highway,
    ManhattanGrid,
    MobilityModel,
    RandomDirection,
    RandomWaypoint,
    Stationary,
)
from repro.multitier.architecture import MobilityController, MultiTierWorld
from repro.multitier.mobile import MultiTierMobileNode
from repro.multitier.policy import TierSelectionPolicy
from repro.net.packet import Packet
from repro.radio.channel import ChannelPlan
from repro.radio.geometry import Point, Rectangle
from repro.scenarios.spec import ScenarioSpec
from repro.sim.rng import RandomStreams
from repro.traffic import (
    CBRSource,
    ElasticSource,
    FlowSink,
    OnOffSource,
    PoissonSource,
    TrafficSource,
    VBRVideoSource,
    make_ack_hook,
)

#: Default roaming areas: stay just inside continuous radio coverage.
_ROAM_ONE_DOMAIN = (-4200.0, -1200.0, 4200.0, 1200.0)
_ROAM_TWO_DOMAINS = (-4200.0, -1200.0, 7000.0, 1200.0)

#: Nominal downlink demand (bit/s) per traffic kind — the bandwidth
#: factor of the paper's three-factor handoff decision (§3.2).
_BANDWIDTH_DEMAND = {
    "idle": 0.0,
    "cbr-voice": 64e3,
    "onoff-voice": 64e3,
    "vbr-video": 128e3,
    "poisson-data": 80e3,
    "elastic-data": 256e3,
}

def roam_rectangle(spec: ScenarioSpec) -> Rectangle:
    """The area the spec's population roams.

    Returns the spec's explicit ``roam`` rectangle when set, otherwise
    a default strip just inside continuous radio coverage for the
    spec's domain count.  Deterministic: pure function of the spec.
    """
    if spec.roam is not None:
        return Rectangle(*spec.roam)
    bounds = _ROAM_TWO_DOMAINS if spec.domains == 2 else _ROAM_ONE_DOMAIN
    return Rectangle(*bounds)


def _start_positions(
    spec: ScenarioSpec, streams: RandomStreams, roam: Rectangle
) -> list[Point]:
    """Every mobile's seeded start position, drawn once per mobile.

    Uses the same per-mobile stream names the mobility factory has
    always used (``mn<i>.start.x`` / ``.y``), and each name is drawn
    exactly once per run, so hoisting the draws out of
    :func:`_make_mobility` leaves legacy worlds byte-identical.
    """
    return [
        Point(
            streams.uniform(f"mn{index}.start.x", roam.x_min, roam.x_max),
            streams.uniform(f"mn{index}.start.y", roam.y_min, roam.y_max),
        )
        for index in range(spec.population)
    ]


#: Mobility models slow enough to camp in a 60 m pico cell.
_PICO_FRIENDLY_MODELS = {"stationary", "waypoint", "manhattan", "gauss-markov"}


def _pico_sites(
    spec: ScenarioSpec,
    starts: list[Point],
    mobility_assignment: list[str],
    traffic_assignment: list[str],
) -> list[Point]:
    """Contention-mode pico deployment: cells go where the load is.

    The paper's in-building picos exist to absorb multimedia load the
    wide tiers cannot carry, which presumes they are deployed at load
    concentrations.  Under the shared-channel model we therefore place
    each pico at the seeded start position of a slow, traffic-bearing
    mobile (wrapping over the candidates when picos outnumber them) —
    a pure function of (spec, seed), so determinism is untouched.
    Legacy mode keeps the historic fixed offsets under the micro
    leaves (see :func:`build_scenario`).
    """
    candidates = [
        index
        for index in range(spec.population)
        if mobility_assignment[index] in _PICO_FRIENDLY_MODELS
        and traffic_assignment[index] != "idle"
    ]
    if not candidates:
        candidates = list(range(spec.population))
    return [
        starts[candidates[pico % len(candidates)]]
        for pico in range(spec.pico_cells)
    ]


def _make_mobility(
    kind: str, index: int, streams: RandomStreams, roam: Rectangle, start: Point
) -> MobilityModel:
    """One mobility model instance, randomness scoped to this mobile."""
    rng = streams.stream(f"mn{index}.mobility")
    if kind == "stationary":
        return Stationary(start, roam)
    if kind == "waypoint":
        return RandomWaypoint(
            start, roam, rng, speed_range=(0.8, 2.0), pause_range=(0.0, 8.0)
        )
    if kind == "manhattan":
        block = min(200.0, roam.width / 4, roam.height / 2)
        return ManhattanGrid(start, roam, rng, block_size=block, speed=8.0)
    if kind == "highway":
        # Vehicles drive a lane across the middle of the roam area.
        lane = Point(start.x, roam.center.y)
        speed = streams.uniform(f"mn{index}.speed", 22.0, 33.0)
        return Highway(lane, roam, rng, speed=speed, wrap=True, speed_jitter=1.0)
    if kind == "gauss-markov":
        return GaussMarkov(start, roam, rng, mean_speed=5.0)
    if kind == "random-direction":
        return RandomDirection(start, roam, rng, speed=10.0)
    raise ValueError(f"unknown mobility model {kind!r}")


class _ElasticAckDispatcher:
    """One CN-side 'ack' handler fanning out to every elastic source.

    :meth:`repro.net.node.Node.on_protocol` keeps a single handler per
    protocol, so scenarios with several elastic flows route all acks
    through this dispatcher, matched by flow id.
    """

    def __init__(self) -> None:
        self.sources: dict[str, ElasticSource] = {}

    def register(self, source: ElasticSource) -> None:
        self.sources[source.flow_id] = source

    def __call__(self, packet: Packet, link) -> None:
        source = self.sources.get(packet.flow_id)
        if source is not None:
            source.acknowledge(packet.payload)


@dataclass
class _FlowPlan:
    """A traffic flow scheduled to start after warmup."""

    flow_id: str
    kind: str
    start: Callable[[float], TrafficSource]  # duration -> started source
    sink: FlowSink


@dataclass
class BuiltScenario:
    """A fully assembled world plus its planned traffic, pre-run."""

    spec: ScenarioSpec
    seed: int
    world: MultiTierWorld
    mobiles: list[MultiTierMobileNode]
    controllers: list[MobilityController]
    mobility_assignment: list[str]
    traffic_assignment: list[str]
    hotspot_indices: list[int]
    flow_plans: list[_FlowPlan]
    sources: list[TrafficSource] = field(default_factory=list)
    sinks: list[FlowSink] = field(default_factory=list)

    def execute(self) -> dict[str, float]:
        """Run warmup → traffic window → drain; return scenario metrics."""
        spec = self.spec
        sim = self.world.sim
        sim.run(until=spec.warmup)
        for plan in self.flow_plans:
            self.sources.append(plan.start(spec.duration))
            self.sinks.append(plan.sink)
        sim.run(until=spec.warmup + spec.duration + spec.drain)
        return self._collect_metrics()

    # ------------------------------------------------------------------
    def _collect_metrics(self) -> dict[str, float]:
        spec = self.spec
        sent = sum(source.packets_sent for source in self.sources)
        received = sum(sink.received for sink in self.sinks)
        delays = [s.mean_delay() for s in self.sinks if s.received > 0]
        jitters = [s.jitter() for s in self.sinks if s.received > 1]
        gaps = [s.max_gap() for s in self.sinks if s.received > 1]
        handoffs = sum(m.handoffs_completed for m in self.mobiles)
        latencies = [
            latency for m in self.mobiles for latency in m.handoff_latencies
        ]
        blocked = sum(c.blocked_attach_attempts for c in self.controllers)
        attached = sum(1 for m in self.mobiles if m.serving_bs is not None)
        cn = self.world.cn
        routed = cn.sent_via_binding + cn.sent_via_home
        elastic = [
            (source, sink)
            for source, sink, plan in zip(
                self.sources, self.sinks, self.flow_plans
            )
            if plan.kind == "elastic-data"
        ]
        goodput = [
            sink.bytes_received * 8.0 / spec.duration for _, sink in elastic
        ]
        # Metrics are plain floats and never NaN, so serial-vs-parallel
        # byte-identity is checkable with ordinary equality.
        metrics = {
            "population": float(spec.population),
            "flows": float(len(self.flow_plans)),
            "sent": float(sent),
            "received": float(received),
            "loss_rate": (1.0 - received / sent) if sent else 0.0,
            "mean_delay": (sum(delays) / len(delays)) if delays else 0.0,
            "jitter": (sum(jitters) / len(jitters)) if jitters else 0.0,
            "max_gap": max(gaps) if gaps else 0.0,
            "handoffs": float(handoffs),
            "handoff_latency": (
                (sum(latencies) / len(latencies)) if latencies else 0.0
            ),
            "blocked_attaches": float(blocked),
            "attached": float(attached),
            "via_binding_fraction": (
                cn.sent_via_binding / routed if routed else 0.0
            ),
            "elastic_goodput_bps": (
                (sum(goodput) / len(goodput)) if goodput else 0.0
            ),
            "hop_total": float(sum(self.world.protocol_hop_totals().values())),
        }
        if self.world.channel_plan is not None:
            # Contention mode only: adding keys to a legacy run would
            # change its rendered table and break pre-channel
            # byte-identity.
            from repro.radio.channel import DOWNLINK, UPLINK

            channels = [
                bs.shared_channel
                for bs in self.world.all_radio_stations()
                if bs.shared_channel is not None
            ]
            window = spec.warmup + spec.duration + spec.drain
            busiest = max(
                (ch.stats.busy_seconds[DOWNLINK] for ch in channels),
                default=0.0,
            )
            #: Downlink utilization of the most loaded cell (1 = the
            #: air interface is the binding constraint there).
            metrics["air_busiest_downlink"] = busiest / window
            metrics["air_detach_drops"] = float(
                sum(
                    ch.stats.dropped_on_detach[DOWNLINK]
                    + ch.stats.dropped_on_detach[UPLINK]
                    for ch in channels
                )
            )
        return metrics


# ----------------------------------------------------------------------
def _assignments(spec: ScenarioSpec, streams: RandomStreams):
    """Per-mobile (mobility model, traffic kind, hotspot) assignment.

    Counts come from the exact largest-remainder apportionment; the
    pairing between the two lists is decorrelated by a seeded shuffle so
    mixes cross (e.g. some vehicles stream video, some walkers are
    idle) instead of aligning block-by-block.
    """
    mobility = [
        name
        for name, count in spec.mobility_counts().items()
        for _ in range(count)
    ]
    traffic = [
        kind
        for kind, count in spec.traffic_counts().items()
        for _ in range(count)
    ]
    shuffle_rng = streams.stream("assign.traffic")
    order = list(shuffle_rng.permutation(spec.population))
    traffic = [traffic[position] for position in order]
    hotspot_rng = streams.stream("assign.hotspots")
    hotspots = sorted(
        int(i)
        for i in hotspot_rng.permutation(spec.population)[: spec.hotspot_count()]
    )
    return mobility, traffic, hotspots


def _downlink(world: MultiTierWorld, mobile: MultiTierMobileNode):
    """A send callable streaming CN -> mobile with route optimization."""

    def send(packet: Packet) -> bool:
        return world.cn.send_to_mobile(
            mobile.home_address,
            size=packet.size,
            flow_id=packet.flow_id,
            seq=packet.seq,
            created_at=packet.created_at,
        )

    return send


def _plan_flow(
    world: MultiTierWorld,
    mobile: MultiTierMobileNode,
    kind: str,
    flow_id: str,
    streams: RandomStreams,
    ack_dispatcher: _ElasticAckDispatcher,
) -> Optional[_FlowPlan]:
    """Plan one downlink flow of ``kind`` towards ``mobile``."""
    if kind == "idle":
        return None
    sim = world.sim
    sink = FlowSink(flow_id=flow_id)
    mobile.on_data.append(sink.bind(sim))
    send = _downlink(world, mobile)
    cn_address = world.cn.address
    dst = mobile.home_address

    def start(duration: float) -> TrafficSource:
        if kind == "cbr-voice":
            source = CBRSource(
                sim, send, cn_address, dst,
                rate_bps=64e3, packet_size=200,
                duration=duration, flow_id=flow_id,
            )
        elif kind == "onoff-voice":
            source = OnOffSource(
                sim, send, cn_address, dst,
                rng=streams.stream(f"{flow_id}.talkspurts"),
                rate_bps=64e3, packet_size=200,
                duration=duration, flow_id=flow_id,
            )
        elif kind == "vbr-video":
            source = VBRVideoSource(
                sim, send, cn_address, dst,
                rng=streams.stream(f"{flow_id}.frames"),
                mean_rate_bps=128e3, frame_rate=12.5, mtu=1000,
                duration=duration, flow_id=flow_id,
            )
        elif kind == "poisson-data":
            source = PoissonSource(
                sim, send, cn_address, dst,
                rng=streams.stream(f"{flow_id}.arrivals"),
                mean_rate_pps=20.0, packet_size=500,
                duration=duration, flow_id=flow_id,
            )
        elif kind == "elastic-data":
            source = ElasticSource(
                sim, send, cn_address, dst,
                packet_size=1000, duration=duration, flow_id=flow_id,
            )
            ack_dispatcher.register(source)
            mobile.on_data.append(
                make_ack_hook(sim, mobile.originate, flow_id=flow_id)
            )
        else:  # pragma: no cover - spec validation rejects this earlier
            raise ValueError(f"unknown traffic kind {kind!r}")
        return source.start()

    return _FlowPlan(flow_id=flow_id, kind=kind, start=start, sink=sink)


def build_scenario(spec: ScenarioSpec, seed: int) -> BuiltScenario:
    """Assemble the world, population and traffic plan for one run.

    Parameters
    ----------
    spec:
        The declarative workload (validated at construction).
    seed:
        Run seed; all randomness flows through
        :class:`~repro.sim.rng.RandomStreams` named per mobile index,
        so the same ``(spec, seed)`` pair always builds an identical
        world — the root of the catalog's determinism guarantee.

    Returns
    -------
    BuiltScenario
        The assembled (not yet run) world; call
        :meth:`BuiltScenario.execute` to run it.
    """
    streams = RandomStreams(int(seed))
    channel_plan = None
    if spec.channels_enabled():
        # Contention mode: per-cell shared channels on every tier.  The
        # micro tier (and any unset field) runs at its TIER_DEFAULTS
        # budget; uplink budgets are half the downlink ones.
        channel_plan = ChannelPlan(
            macro_bandwidth=spec.macro_channel_bandwidth,
            pico_bandwidth=spec.pico_channel_bandwidth,
        )
    world = MultiTierWorld(
        second_domain=spec.domains == 2,
        domain_kwargs=dict(spec.domain_overrides),
        channel_plan=channel_plan,
    )
    roam = roam_rectangle(spec)
    mobility_assignment, traffic_assignment, hotspot_indices = _assignments(
        spec, streams
    )
    starts = _start_positions(spec, streams, roam)
    # In-building picos (Fig 2.1's third hierarchy level).  Legacy mode
    # keeps the historic placement: alternating fixed offsets under the
    # micro leaves.  Contention mode deploys them at seeded population
    # concentration points (see _pico_sites), so the pico overlay can
    # actually absorb load — the paper's reason for its existence.
    leaves = ("B", "C", "E", "F")
    sites = (
        _pico_sites(spec, starts, mobility_assignment, traffic_assignment)
        if channel_plan is not None
        else None
    )
    for pico in range(spec.pico_cells):
        if sites is None:
            parent = world.domain1[leaves[pico % len(leaves)]]
            side = 1 if (pico // len(leaves)) % 2 == 0 else -1
            center = Point(
                parent.cell.center.x + side * 150.0, parent.cell.center.y
            )
        else:
            center = sites[pico]
            parent = min(
                (world.domain1[name] for name in leaves),
                key=lambda bs: bs.cell.center.distance_to(center),
            )
        world.add_pico(parent.name, f"p{pico}", center)

    ack_dispatcher = _ElasticAckDispatcher()
    world.cn.on_protocol("ack", ack_dispatcher)

    # Under a shared air interface any slow, traffic-bearing mobile
    # benefits from a covering pico's fat shared budget, so the tier
    # policy's pico preference applies to every positive demand (with
    # per-user dedicated radios only heavy elastic users did).
    contention_policy = (
        TierSelectionPolicy(demand_threshold=1.0)
        if channel_plan is not None
        else None
    )
    mobiles: list[MultiTierMobileNode] = []
    controllers: list[MobilityController] = []
    flow_plans: list[_FlowPlan] = []
    for index in range(spec.population):
        kind = traffic_assignment[index]
        mobile = world.add_mobile(
            f"mn{index}",
            bandwidth_demand=_BANDWIDTH_DEMAND[kind],
            airtime_key=index,
        )
        model = _make_mobility(
            mobility_assignment[index], index, streams, roam, starts[index]
        )
        controllers.append(
            world.add_controller(
                mobile,
                model,
                sample_period=spec.sample_period,
                policy=contention_policy,
            )
        )
        mobiles.append(mobile)
        plan = _plan_flow(
            world, mobile, kind, f"{spec.name}.mn{index}", streams, ack_dispatcher
        )
        if plan is not None:
            flow_plans.append(plan)
    # Flash-crowd hotspots: extra simultaneous correspondent flows.
    for index in hotspot_indices:
        for flow in range(spec.hotspot_flows):
            plan = _plan_flow(
                world,
                mobiles[index],
                "poisson-data",
                f"{spec.name}.mn{index}.hot{flow}",
                streams,
                ack_dispatcher,
            )
            flow_plans.append(plan)

    return BuiltScenario(
        spec=spec,
        seed=int(seed),
        world=world,
        mobiles=mobiles,
        controllers=controllers,
        mobility_assignment=mobility_assignment,
        traffic_assignment=traffic_assignment,
        hotspot_indices=hotspot_indices,
        flow_plans=flow_plans,
    )


def run_scenario_spec(spec: ScenarioSpec, seed: int) -> dict[str, float]:
    """Build and execute one ``(spec, seed)`` run — the backend job.

    Returns the plain-float metric dict from
    :meth:`BuiltScenario.execute` (never NaN), which is what the
    execution backends require for their ordered-deterministic
    aggregation guarantee: the same ``(spec, seed)`` pair returns
    byte-identical metrics in any process, on any backend.
    """
    return build_scenario(spec, seed).execute()


__all__ = [
    "BuiltScenario",
    "build_scenario",
    "roam_rectangle",
    "run_scenario_spec",
]
