"""Scenario sweeps: a named axis over a :class:`ScenarioSpec` field.

The paper's evaluation is a family of curves — handoff cost, packet
loss and multimedia QoS as functions of population, mobility and cell
layout — and related micro-mobility studies (Helmy et al.'s M&M work,
Mirzamany & Friderikos's QoE-centric LMM evaluation) report the same
shape: metrics swept across load and mobility axes, not single
operating points.  A :class:`ScenarioSweep` turns one registered
scenario into such a curve: it names a spec field (``population``,
``hotspot_fraction``, a per-domain override via
``domain_overrides.<key>``), the axis values, the seeds replicated at
each point and the metrics to extract.

:func:`sweep_scenario` derives one immutable, re-validated
:class:`ScenarioSpec` per axis point (``dataclasses.replace`` under the
hood) and dispatches the **entire (point, seed) grid through a single
:meth:`ExecutionBackend.run <repro.experiments.exec.ExecutionBackend.run>`
call** via :func:`repro.experiments.runner.sweep`, so ``--jobs N``
overlaps points and seeds alike.

Determinism: derived specs are pure data, every run derives all
randomness from its seed, and results are aggregated in job order —
a sweep's table and figure are byte-identical between serial and
``--jobs N`` execution and across repeats (enforced per registered
sweep by ``tests/test_scenario_sweeps.py`` and the CI sweep-smoke
steps).
"""

from __future__ import annotations

import dataclasses
import inspect
from dataclasses import dataclass
from functools import partial
from typing import Iterable, Optional, Sequence, Union

from repro.experiments.exec import ExecutionBackend, get_default_backend
from repro.experiments.runner import (
    ExperimentResult,
    aggregate,
    build_sweep_result,
)
from repro.experiments.runner import sweep as grid_sweep
from repro.metrics.tables import format_table
from repro.multitier.domain import MultiTierDomain
from repro.scenarios.builder import run_scenario_spec, scenario_job
from repro.scenarios.catalog import get_scenario
from repro.scenarios.spec import ScenarioSpec

#: Axis prefix selecting a key inside ``ScenarioSpec.domain_overrides``
#: (merged, not replaced wholesale) instead of a top-level spec field.
OVERRIDE_PREFIX = "domain_overrides."

#: Axis prefix selecting a numeric field inside ``ScenarioSpec.policy``
#: (rebound via ``dataclasses.replace`` on the policy block, preserving
#: its other knobs) — e.g. ``policy.speed_threshold``.
POLICY_PREFIX = "policy."

#: ``PolicyConfig`` fields a ``policy.<field>`` axis may target (the
#: numeric knobs; ``mode`` and ``weighted_airtime`` are not numbers).
_POLICY_KEYS = {"speed_threshold", "demand_threshold", "admission_factor"}

#: Spec fields that cannot be swept: identity/documentation fields, the
#: seed list (the sweep controls seeds itself), the overrides mapping
#: as a whole (sweep one key via ``domain_overrides.<key>``), the
#: policy block as a whole (sweep one knob via ``policy.<field>``) and
#: the non-scalar fields (mixes, roam rectangle) a numeric axis cannot
#: rebind.
_UNSWEEPABLE = {
    "name",
    "description",
    "notes",
    "seeds",
    "domain_overrides",
    "policy",
    "mobility_mix",
    "traffic_mix",
    "roam",
}

_SPEC_FIELDS = {field.name for field in dataclasses.fields(ScenarioSpec)}

#: Keys a ``domain_overrides.<key>`` axis may target: the keyword
#: parameters of :class:`~repro.multitier.domain.MultiTierDomain`
#: minus the ones the world supplies itself.  Checked at sweep
#: construction so a typo'd override key fails eagerly, not mid-run.
_OVERRIDE_KEYS = set(
    inspect.signature(MultiTierDomain.__init__).parameters
) - {"self", "sim", "realm"}

#: Override keys whose domain parameter is integral (judged by the
#: constructor default's type, bools included) — their axis values get
#: the same integral check as int-typed spec fields.
_INT_OVERRIDE_KEYS = {
    name
    for name, param in inspect.signature(
        MultiTierDomain.__init__
    ).parameters.items()
    if name in _OVERRIDE_KEYS and isinstance(param.default, int)
}

#: Fields whose declared type is ``int`` — axis values for these must
#: be integral.  Decided from the dataclass annotation, not the runtime
#: value, so e.g. ``duration=300`` (an int handed to a float field)
#: still accepts fractional axis values.
_INT_FIELDS = {
    field.name
    for field in dataclasses.fields(ScenarioSpec)
    if field.type in ("int", int)
}


def _is_monotone(values: tuple) -> bool:
    pairs = list(zip(values, values[1:]))
    return all(a < b for a, b in pairs) or all(a > b for a, b in pairs)


@dataclass(frozen=True)
class ScenarioSweep:
    """A registrable axis over one field of a catalog scenario.

    Parameters
    ----------
    name:
        Registry key, by convention ``<scenario>/<axis>`` (e.g.
        ``city-rush-hour/population``).
    scenario:
        Name of the base :class:`ScenarioSpec` in the catalog (or, when
        used with :func:`sweep_scenario`'s ``base=``, any spec).
    field:
        The axis: a :class:`ScenarioSpec` field name, or
        ``domain_overrides.<key>`` to vary one per-domain override
        (e.g. ``domain_overrides.wired_bandwidth``).
    values:
        Numeric axis values; at least two, strictly monotone (so the
        resulting curve reads left to right without reordering).
    metrics:
        Metric names extracted from each run's metric dict into the
        figure's series (see ``BuiltScenario._collect_metrics`` for the
        available names).
    seeds:
        Seeds replicated at *every* axis point; ``None`` uses the base
        spec's own default seed list.
    description / notes:
        One-liner for ``repro scenario list`` / free text for the
        result table.

    Construction validates shape only; :func:`register_sweep`
    additionally derives every per-point spec against the registered
    base scenario so a bad axis fails at import, not mid-run.
    Instances are immutable — deriving a variant (see :meth:`smoke`)
    never mutates the registered object.
    """

    name: str
    scenario: str
    field: str
    values: tuple
    metrics: tuple[str, ...] = ("loss_rate", "mean_delay", "handoffs")
    seeds: Optional[tuple[int, ...]] = None
    description: str = ""
    notes: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("sweep name must not be empty")
        object.__setattr__(self, "values", tuple(self.values))
        object.__setattr__(self, "metrics", tuple(self.metrics))
        if self.seeds is not None:
            object.__setattr__(
                self, "seeds", tuple(int(seed) for seed in self.seeds)
            )
            if not self.seeds:
                raise ValueError(f"{self.name}: seeds must not be empty")
        if not self.metrics:
            raise ValueError(f"{self.name}: metrics must not be empty")
        if len(self.values) < 2:
            raise ValueError(
                f"{self.name}: a sweep needs at least 2 axis values, "
                f"got {len(self.values)}"
            )
        if not all(isinstance(v, (int, float)) for v in self.values):
            raise ValueError(f"{self.name}: axis values must be numeric")
        if not _is_monotone(self.values):
            raise ValueError(
                f"{self.name}: axis values must be strictly monotone, "
                f"got {self.values}"
            )
        if self.field.startswith(OVERRIDE_PREFIX):
            key = self.field[len(OVERRIDE_PREFIX):]
            if not key:
                raise ValueError(
                    f"{self.name}: empty domain_overrides key in "
                    f"field {self.field!r}"
                )
            if key not in _OVERRIDE_KEYS:
                raise ValueError(
                    f"{self.name}: unknown domain override key {key!r}; "
                    f"known: {', '.join(sorted(_OVERRIDE_KEYS))}"
                )
        elif self.field.startswith(POLICY_PREFIX):
            key = self.field[len(POLICY_PREFIX):]
            if not key:
                raise ValueError(
                    f"{self.name}: empty policy key in field {self.field!r}"
                )
            if key not in _POLICY_KEYS:
                raise ValueError(
                    f"{self.name}: unknown policy key {key!r}; "
                    f"known: {', '.join(sorted(_POLICY_KEYS))}"
                )
        elif self.field in _UNSWEEPABLE:
            raise ValueError(
                f"{self.name}: field {self.field!r} cannot be swept"
            )
        elif self.field not in _SPEC_FIELDS:
            raise ValueError(
                f"{self.name}: unknown ScenarioSpec field {self.field!r}; "
                f"sweepable: {', '.join(sorted(_SPEC_FIELDS - _UNSWEEPABLE))}, "
                f"{OVERRIDE_PREFIX}<key> or {POLICY_PREFIX}<key>"
            )

    # ------------------------------------------------------------------
    def axis_label(self) -> str:
        """The x-axis label used in tables and figures.

        Returns the bare key for ``domain_overrides.<key>`` and
        ``policy.<key>`` axes and the spec field name otherwise.
        """
        if self.field.startswith(OVERRIDE_PREFIX):
            return self.field[len(OVERRIDE_PREFIX):]
        if self.field.startswith(POLICY_PREFIX):
            return self.field[len(POLICY_PREFIX):]
        return self.field

    def derive(self, base: ScenarioSpec, value) -> ScenarioSpec:
        """The spec at one axis point: ``base`` with ``field=value``.

        Immutable rebinding via :meth:`ScenarioSpec.replace`
        (``dataclasses.replace`` under the hood), so the derived spec
        passes the full ``__post_init__`` validation again; a value
        that produces an invalid spec raises :class:`ValueError` with
        the sweep name and offending value attached.  Integer fields
        (``population``, ``pico_cells``, ...) accept integral floats.
        ``domain_overrides.<key>`` axes merge into the base overrides
        mapping, preserving its other keys; ``policy.<key>`` axes
        rebind one knob of the base policy block, preserving the rest.
        """
        override_key = policy_key = None
        if self.field.startswith(OVERRIDE_PREFIX):
            override_key = self.field[len(OVERRIDE_PREFIX):]
            integral = override_key in _INT_OVERRIDE_KEYS
        elif self.field.startswith(POLICY_PREFIX):
            policy_key = self.field[len(POLICY_PREFIX):]
            integral = False  # every sweepable policy knob is a float
        else:
            integral = self.field in _INT_FIELDS
        if integral:
            if float(value) != int(value):
                raise ValueError(
                    f"{self.name}: field {self.field!r} is integral, "
                    f"got {value!r}"
                )
            value = int(value)
        try:
            if override_key is not None:
                overrides = dict(base.domain_overrides)
                overrides[override_key] = value
                changes = {"domain_overrides": overrides}
            elif policy_key is not None:
                changes = {
                    "policy": dataclasses.replace(
                        base.policy, **{policy_key: float(value)}
                    )
                }
            else:
                changes = {self.field: value}
            return base.replace(**changes)
        except ValueError as error:
            raise ValueError(
                f"{self.name}: {self.axis_label()}={value!r} derives an "
                f"invalid spec: {error}"
            ) from error

    def derived_specs(self, base: Optional[ScenarioSpec] = None) -> list[ScenarioSpec]:
        """One validated spec per axis value, in axis order.

        ``base=None`` resolves :attr:`scenario` from the catalog.
        Deterministic: pure data transformation, no randomness.
        """
        if base is None:
            base = get_scenario(self.scenario)
        return [self.derive(base, value) for value in self.values]

    def point_seeds(self, base: Optional[ScenarioSpec] = None) -> list[int]:
        """The seed list replicated at every axis point.

        :attr:`seeds` when set, else the base spec's default seeds.
        """
        if self.seeds is not None:
            return list(self.seeds)
        if base is None:
            base = get_scenario(self.scenario)
        return list(base.seeds)

    def smoke(self, base: Optional[ScenarioSpec] = None) -> "ScenarioSweep":
        """A shrunken variant for CI smoke runs and determinism tests.

        Keeps the first two axis points and a single seed;
        :func:`sweep_scenario` additionally shrinks the base spec with
        :meth:`ScenarioSpec.smoke`.  ``base`` resolves the default
        seed list when the sweep has none (``None`` looks
        :attr:`scenario` up in the catalog).  Same code path, same
        guarantees, a few seconds of wall clock.
        """
        seeds = self.point_seeds(base)[:1]
        return dataclasses.replace(
            self, values=self.values[:2], seeds=tuple(seeds)
        )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_SWEEPS: dict[str, ScenarioSweep] = {}


def register_sweep(sweep: ScenarioSweep, replace: bool = False) -> ScenarioSweep:
    """Add ``sweep`` to the registry under ``sweep.name``.

    Eagerly resolves the base scenario and derives every per-point spec
    so an unknown scenario, unknown field or invalid axis value fails
    here (at import for shipped sweeps) rather than mid-run.  Returns
    the registered sweep for chaining.
    """
    if not replace and sweep.name in _SWEEPS:
        raise ValueError(f"sweep {sweep.name!r} is already registered")
    sweep.derived_specs()  # validates scenario + every axis point
    _SWEEPS[sweep.name] = sweep
    return sweep


def get_sweep(name: str) -> ScenarioSweep:
    """Look up a registered sweep by name; :class:`KeyError` if absent."""
    try:
        return _SWEEPS[name]
    except KeyError:
        raise KeyError(
            f"unknown sweep {name!r}; available: {', '.join(_SWEEPS)}"
        ) from None


def sweep_names() -> list[str]:
    """The registered sweep names, in registration order."""
    return list(_SWEEPS)


def iter_sweeps() -> list[ScenarioSweep]:
    """The registered sweeps, in registration order."""
    return list(_SWEEPS.values())


def _resolve(sweep: Union[str, ScenarioSweep]) -> ScenarioSweep:
    if isinstance(sweep, ScenarioSweep):
        return sweep
    return get_sweep(sweep)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def _sweep_title(resolved: ScenarioSweep, base: ScenarioSpec) -> str:
    """The result title shared by single- and multi-sweep execution.

    Non-default protocol stacks are named in the title; the default
    stays un-suffixed so legacy sweep output is byte-identical.
    """
    from repro.stacks.registry import DEFAULT_STACK

    title = f"sweep {resolved.name}: {base.name} vs {resolved.axis_label()}"
    if base.stack != DEFAULT_STACK:
        title += f" [stack={base.stack}]"
    if resolved.description:
        title += f" — {resolved.description}"
    return title


def effective_sweep(
    sweep: Union[str, ScenarioSweep],
    base: Optional[ScenarioSpec] = None,
    seeds: Optional[Iterable[int]] = None,
    smoke: bool = False,
    stack: Optional[str] = None,
) -> tuple[ScenarioSweep, ScenarioSpec, list[int]]:
    """Resolve what a sweep run will actually execute.

    Returns ``(sweep, base spec, seed list)`` after applying the same
    name resolution, ``base=`` override, ``stack=`` rebinding, smoke
    shrinking and seed defaulting that :func:`sweep_scenario` performs
    — it calls this helper itself, so labels rendered from the return
    value (e.g. the CLI's "N seeds/point" header) can never diverge
    from the grid that ran.  ``stack=None`` keeps the base spec's own
    protocol stack; an unknown name fails eagerly via spec validation.
    Deterministic: pure resolution, no randomness.
    """
    resolved = _resolve(sweep)
    if base is None:
        base = get_scenario(resolved.scenario)
    if stack is not None:
        base = base.replace(stack=stack)
    if smoke:
        base = base.smoke()
        resolved = resolved.smoke(base)
    if seeds is None:
        seed_list = resolved.point_seeds(base)
    else:
        seed_list = [int(seed) for seed in seeds]
    return resolved, base, seed_list


def sweep_points(
    sweep: Union[str, ScenarioSweep],
    base: Optional[ScenarioSpec] = None,
    seeds: Optional[Iterable[int]] = None,
    smoke: bool = False,
    stack: Optional[str] = None,
) -> tuple[ScenarioSweep, ScenarioSpec, list[int], list[tuple[float, ScenarioSpec]]]:
    """Resolve one sweep run down to its executable (value, spec) grid.

    Extends :func:`effective_sweep` with the derived per-point specs:
    returns ``(sweep, base spec, seed list, points)`` where ``points``
    is one ``(axis value, validated spec)`` pair per axis point, in
    axis order.  This is the single source of truth for what a sweep
    run executes — :func:`sweep_scenarios` batches exactly these specs
    and the campaign layer (:mod:`repro.campaign.manifest`) freezes
    them into durable work items, so the two can never disagree about
    the grid.  Deterministic: pure resolution and derivation.
    """
    resolved, base, seed_list = effective_sweep(sweep, base, seeds, smoke, stack)
    specs = resolved.derived_specs(base)
    return resolved, base, seed_list, list(zip(resolved.values, specs))


def sweep_scenario(
    sweep: Union[str, ScenarioSweep],
    base: Optional[ScenarioSpec] = None,
    seeds: Optional[Iterable[int]] = None,
    confidence: float = 0.95,
    backend: Optional[ExecutionBackend] = None,
    smoke: bool = False,
    stack: Optional[str] = None,
) -> ExperimentResult:
    """Run one scenario sweep and return its :class:`ExperimentResult`.

    Parameters
    ----------
    sweep:
        A registered sweep name or a :class:`ScenarioSweep` instance.
    base:
        Base spec override; ``None`` resolves ``sweep.scenario`` from
        the catalog.
    seeds:
        Seeds replicated at every axis point; ``None`` uses the sweep's
        (then the base spec's) defaults.
    confidence:
        Confidence level for the per-point intervals computed by
        :func:`repro.metrics.stats.mean_confidence`.
    backend:
        Execution backend; ``None`` uses the process-wide default.
    smoke:
        Run the shrunken CI variant: :meth:`ScenarioSweep.smoke` axis
        (first two points, one seed) over :meth:`ScenarioSpec.smoke`
        of the base spec.
    stack:
        Rebind the base spec onto one registered protocol stack
        (``None`` keeps the spec's own ``stack`` field); non-default
        stacks are named in the result title.

    The whole (point, seed) grid — row-major, seeds fastest — is
    submitted as ONE :meth:`ExecutionBackend.run` batch through
    :func:`repro.experiments.runner.sweep`, so a pool backend's
    work-stealing queue overlaps axis points as well as seeds.

    Returns an :class:`~repro.experiments.runner.ExperimentResult`
    whose ``replications`` carry the per-point
    :class:`~repro.metrics.stats.Estimate` confidence intervals.
    Determinism: output is identical for every backend and job count,
    and across repeats, for the same (sweep, base, seeds).
    """
    resolved, base, seed_list = effective_sweep(sweep, base, seeds, smoke, stack)
    specs = resolved.derived_specs(base)
    spec_by_value = dict(zip(resolved.values, specs))

    title = _sweep_title(resolved, base)
    return grid_sweep(
        resolved.name,
        title,
        resolved.axis_label(),
        list(resolved.values),
        lambda value: partial(run_scenario_spec, spec_by_value[value]),
        seed_list,
        list(resolved.metrics),
        notes=resolved.notes,
        confidence=confidence,
        backend=backend,
    )


def sweep_scenarios(
    sweeps: Iterable[Union[str, ScenarioSweep]],
    seeds: Optional[Iterable[int]] = None,
    confidence: float = 0.95,
    backend: Optional[ExecutionBackend] = None,
    smoke: bool = False,
    stacks: Optional[Sequence[Optional[str]]] = None,
    shards: int = 1,
) -> list[tuple[ScenarioSweep, ScenarioSpec, list[int], ExperimentResult]]:
    """Run several sweeps as ONE backend batch (the union of grids).

    ``repro scenario sweep all --jobs N`` used to batch per sweep,
    capping parallelism at each sweep's own (point, seed) grid and
    serializing the sweeps behind each other.  This dispatches the
    union of every sweep's (sweep, point, seed) jobs through a single
    :meth:`ExecutionBackend.run` call, so a pool's work-stealing queue
    overlaps small sweeps with big ones.

    ``seeds`` / ``smoke`` apply to every sweep exactly as in
    :func:`sweep_scenario`.  ``stacks`` crosses every sweep with each
    named protocol stack (in order) inside the same single batch —
    ``stacks=None`` keeps each base spec's own stack, so legacy calls
    are unchanged; the returned list is ordered sweep-major, stack
    fastest.  ``shards > 1`` decomposes every grid point's run over
    that many processes (see :mod:`repro.shard`) with byte-identical
    metrics.  Results come back in job order and are chunked per
    (sweep, stack, point); each returned
    ``(sweep, base spec, seed list, result)`` entry carries the
    rebound base spec that actually ran (``base.stack`` names its
    protocol stack — callers never have to reconstruct the grid order
    themselves), and is byte-identical to calling
    :func:`sweep_scenario` one (sweep, stack) at a time — on any
    backend, for any job count (determinism inherited from the PR 1
    ordered aggregation guarantee).
    """
    if backend is None:
        backend = get_default_backend()
    materialized = [int(seed) for seed in seeds] if seeds is not None else None
    stack_list: list[Optional[str]] = (
        list(stacks) if stacks is not None else [None]
    )
    if not stack_list:
        raise ValueError("stacks must not be empty")
    layout: list[tuple[ScenarioSweep, ScenarioSpec, list[int], list[ScenarioSpec]]] = []
    jobs = []
    for entry in sweeps:
        for stack in stack_list:
            resolved, base, seed_list, points = sweep_points(
                entry, seeds=materialized, smoke=smoke, stack=stack
            )
            specs = [spec for _value, spec in points]
            jobs.extend(
                scenario_job(spec, seed, shards)
                for spec in specs
                for seed in seed_list
            )
            layout.append((resolved, base, seed_list, specs))

    results = backend.run(jobs)

    out: list[tuple[ScenarioSweep, ScenarioSpec, list[int], ExperimentResult]] = []
    offset = 0
    for resolved, base, seed_list, specs in layout:
        replications = []
        for _spec in specs:
            chunk = results[offset:offset + len(seed_list)]
            offset += len(seed_list)
            replications.append(aggregate(chunk, confidence))
        result = build_sweep_result(
            resolved.name,
            _sweep_title(resolved, base),
            resolved.axis_label(),
            list(resolved.values),
            replications,
            list(resolved.metrics),
            notes=resolved.notes,
            confidence=confidence,
        )
        out.append((resolved, base, seed_list, result))
    return out


# ----------------------------------------------------------------------
# Rendering (used by the CLI and by output-equality tests)
# ----------------------------------------------------------------------
def format_sweep_result(
    sweep: Union[str, ScenarioSweep],
    result: ExperimentResult,
    seeds: Optional[Iterable[int]] = None,
) -> str:
    """Render a sweep result as a per-point table with CI half-widths.

    Each metric contributes two columns: its per-point mean and the
    half-width from :func:`repro.metrics.stats.mean_confidence` (0
    when a point ran a single seed).  The CI column label is derived
    from ``result.confidence`` — the level the intervals were actually
    computed at — so label and data cannot disagree.  Deterministic:
    pure rendering of the result data.
    """
    resolved = _resolve(sweep)
    level = f"ci{int(round(result.confidence * 100))}"
    headers = [result.x_label]
    for metric in resolved.metrics:
        headers += [metric, f"{metric}_{level}"]
    rows = []
    for x, replication in zip(result.x_values, result.replications):
        row: list[object] = [x]
        for metric in resolved.metrics:
            estimate = replication.metrics.get(metric)
            if estimate is None:
                row += [float("nan"), float("nan")]
            else:
                row += [estimate.mean, estimate.half_width]
        rows.append(row)
    title = result.title
    if seeds is not None:
        seed_list = [str(seed) for seed in seeds]
        title += (
            f" ({len(seed_list)} seed{'s' if len(seed_list) != 1 else ''}"
            f"/point: {', '.join(seed_list)})"
        )
    return format_table(headers, rows, title=title)


def describe_sweep(sweep: Union[str, ScenarioSweep]) -> str:
    """A full, human-readable description of one sweep."""
    resolved = _resolve(sweep)
    lines = [
        f"{resolved.name}: {resolved.description or '(no description)'}",
        "",
        f"  base scenario    {resolved.scenario}",
        f"  axis             {resolved.field}",
        f"  values           {', '.join(repr(v) for v in resolved.values)}",
        f"  seeds per point  "
        + (
            ", ".join(str(seed) for seed in resolved.seeds)
            if resolved.seeds is not None
            else f"(scenario default: "
            f"{', '.join(str(s) for s in get_scenario(resolved.scenario).seeds)})"
        ),
        f"  metrics          {', '.join(resolved.metrics)}",
    ]
    if resolved.notes:
        lines.extend(["", f"  {resolved.notes}"])
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Shipped sweeps: the paper's figure axes over the catalog
# ----------------------------------------------------------------------
#: Population, load, hotspot and layout axes — one registered sweep per
#: paper-style curve, each producing a CI table and a figure via
#: ``repro scenario sweep <name>``.

register_sweep(ScenarioSweep(
    name="city-rush-hour/population",
    scenario="city-rush-hour",
    field="population",
    values=(6, 12, 18, 24),
    metrics=("handoffs", "loss_rate", "mean_delay", "blocked_attaches"),
    description="handoff load and voice QoS vs commuter population",
    notes="The paper's load axis: more commuters mean more concurrent "
    "handoffs; loss and delay should stay flat until channels block.",
))

register_sweep(ScenarioSweep(
    name="campus-dense/backhaul",
    scenario="campus-dense",
    field="domain_overrides.wired_bandwidth",
    values=(1.5e6, 2.5e6, 5e6, 10e6),
    metrics=("mean_delay", "jitter", "loss_rate"),
    description="multimedia QoS vs per-domain backhaul bandwidth",
    notes="Relaxing the choked rsmc1-R3-R1-A chain from 1.5 to 10 "
    "Mbit/s should collapse queueing delay and jitter toward the "
    "uncongested floor.",
))

register_sweep(ScenarioSweep(
    name="flash-crowd/hotspot-fraction",
    scenario="flash-crowd",
    field="hotspot_fraction",
    values=(0.0, 0.25, 0.5),
    metrics=("flows", "loss_rate", "mean_delay", "max_gap"),
    description="downlink QoS vs fraction of hotspot correspondents",
    notes="Each hotspot mobile draws extra simultaneous flows; the axis "
    "scales offered load without touching population or mobility.",
))

register_sweep(ScenarioSweep(
    name="campus-dense/pico-channel-bandwidth",
    scenario="campus-dense",
    field="pico_channel_bandwidth",
    values=(96e3, 384e3, 2e6, 11e6),
    metrics=("loss_rate", "mean_delay", "air_busiest_downlink", "handoffs"),
    description="air-interface axis: shared pico-channel budget under "
    "per-cell contention",
    notes="Every point enables contention (setting the axis field "
    "turns channels on; macro and micro run at TIER_DEFAULTS budgets, "
    "and the pico overlay deploys at population concentration "
    "points), so the air interface — not the 2.5 Mbit/s wired "
    "backhaul — is the binding constraint: air_busiest_downlink "
    "tracks the utilization of the most loaded cell, and widening "
    "the in-building pico budget from sub-voice-grade 96 kbit/s to "
    "WLAN-class 11 Mbit/s drains the pico queueing that shows up in "
    "loss_rate and mean_delay.",
))

register_sweep(ScenarioSweep(
    name="city-rush-hour/speed-threshold",
    scenario="city-rush-hour",
    field="policy.speed_threshold",
    values=(5.0, 10.0, 25.0, 40.0),
    metrics=("handoffs", "policy.decisions", "policy.better_tier",
             "policy.signal_hysteresis"),
    description="policy axis: macro/micro speed threshold of the "
    "three-factor tier decider",
    notes="Lowering the threshold below commuter speeds parks fast "
    "mobiles on the macro umbrella (fewer, larger cells to cross); "
    "raising it keeps them on micros and multiplies handoffs.  Every "
    "point is a non-default policy, so the per-reason policy.* "
    "decision counters are emitted alongside the handoff totals.",
))

register_sweep(ScenarioSweep(
    name="sparse-rural/population",
    scenario="sparse-rural",
    field="population",
    values=(2, 5, 10, 16),
    metrics=("handoffs", "loss_rate", "mean_delay"),
    description="macro-tier capacity vs spread-out population",
    notes="Everyone rides the macro umbrella (the roam band clears all "
    "micro cells), so this is the pure location-management load axis.",
))

register_sweep(ScenarioSweep(
    name="downtown-multimedia/pico-cells",
    scenario="downtown-multimedia",
    field="pico_cells",
    values=(0, 2, 4, 6),
    metrics=("handoffs", "handoff_latency", "mean_delay", "jitter"),
    description="cell-layout axis: in-building picos under the micro tier",
    notes="Densifying the bottom tier adds handoff opportunities; the "
    "three-factor policy should keep latency flat while VBR delay "
    "benefits from shorter radio legs.",
))


__all__ = [
    "OVERRIDE_PREFIX",
    "POLICY_PREFIX",
    "ScenarioSweep",
    "describe_sweep",
    "effective_sweep",
    "format_sweep_result",
    "get_sweep",
    "iter_sweeps",
    "register_sweep",
    "sweep_names",
    "sweep_points",
    "sweep_scenario",
    "sweep_scenarios",
]
