"""Campaign runner: durable queues, resumable runs, cross-run diffs.

The evaluation grid — 8 scenarios × 4 stacks × sweep axes × seeds — is
too big for one-shot CLI runs.  A *campaign* makes it durable:

* :mod:`repro.campaign.manifest` — the frozen grid definition:
  :class:`~repro.campaign.manifest.WorkItem` cells with deterministic
  ids and spec fingerprints, expanded once at ``campaign new`` time;
* :mod:`repro.campaign.queue` — the on-disk queue: atomic per-item
  completion records (tmp-file + rename), crash/kill-safe resume that
  skips completed items, batch dispatch through the standard
  :class:`~repro.experiments.exec.ExecutionBackend` (``--jobs N``
  works unchanged);
* :mod:`repro.campaign.store` — the canonical merged ``results.json``
  plus re-aggregation back into live-run-equal
  :class:`~repro.experiments.runner.Replication` and
  :class:`~repro.scenarios.compare.StackComparison` views;
* :mod:`repro.campaign.diff` — cross-run regression reports: per
  (grid-cell, metric) mean ± CI comparison, disjoint intervals flag
  significance, metric polarity names regressions.

CLI: ``repro campaign new | run | resume | status | diff`` — see
``docs/CAMPAIGN.md``.

Determinism contract: a campaign's final on-disk state (item records
and merged store) is **byte-identical** for any execution backend, any
``--jobs N``, any batch size, and any interleaving of crashes (SIGKILL
included) and resumes — extending the serial == ``--jobs N`` guarantee
the execution engine established to the durable layer (enforced by
``tests/test_campaign_crash.py`` and the CI campaign smoke step).
"""

from repro.campaign.diff import (
    CampaignDiff,
    MetricChange,
    diff_stores,
    format_campaign_diff,
    metric_polarity,
)
from repro.campaign.manifest import (
    CampaignError,
    CampaignManifest,
    WorkItem,
    build_manifest,
    spec_fingerprint,
)
from repro.campaign.queue import (
    Campaign,
    CampaignStatus,
    RunSummary,
    run_campaign,
)
from repro.campaign.store import (
    load_store,
    merge_store,
    store_replications,
    store_stack_comparisons,
    write_store,
)

__all__ = [
    "Campaign",
    "CampaignDiff",
    "CampaignError",
    "CampaignManifest",
    "CampaignStatus",
    "MetricChange",
    "RunSummary",
    "WorkItem",
    "build_manifest",
    "diff_stores",
    "format_campaign_diff",
    "load_store",
    "merge_store",
    "metric_polarity",
    "run_campaign",
    "spec_fingerprint",
    "store_replications",
    "store_stack_comparisons",
    "write_store",
]
