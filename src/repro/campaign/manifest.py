"""Campaign manifests: the frozen definition of a grid of work items.

A campaign is a (scenario, stack, sweep-point, seed) grid too big for a
one-shot CLI run.  The :class:`CampaignManifest` records the knobs the
grid was expanded from (scenario names, sweep names, stacks, seeds,
smoke flag) **and** the expanded :class:`WorkItem` list itself, frozen
at ``repro campaign new`` time, so a resume months later runs exactly
the grid that was queued — and can *detect* that it no longer can.

Every item derives its :class:`~repro.scenarios.spec.ScenarioSpec`
through the same code paths the CLI uses (the catalog, ``smoke()``
shrinking, ``stack`` rebinding, and
:func:`repro.scenarios.sweep.sweep_points` for sweep axes), and the
manifest pins a :func:`spec_fingerprint` per item.  On load the specs
are re-derived and re-fingerprinted: if the catalog or a sweep
definition drifted since ``new``, the mismatch fails eagerly with the
offending item named, instead of silently merging incomparable results.

Determinism: expansion is a pure function of the manifest knobs and the
registered catalog/sweep/stack definitions — same inputs, same item
list, same item ids, same fingerprints, in the same order, on every
platform.  No randomness, no timestamps (so two campaign directories
created from the same knobs are byte-identical).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.scenarios.catalog import get_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.sweep import get_sweep, sweep_points

#: Manifest (and work-item) schema version, bumped on layout changes.
MANIFEST_SCHEMA = 1


class CampaignError(Exception):
    """A campaign-layer failure: bad manifest, corrupt or mismatched
    records, incomplete runs asked to merge — always raised eagerly
    with the offending item or file named."""


def spec_fingerprint(spec: ScenarioSpec) -> str:
    """A stable digest of one derived spec's full field contents.

    Canonical-JSON SHA-256 (sorted keys, nested dataclasses expanded)
    truncated to 16 hex chars.  Pinned into the manifest per item and
    into every completion record, so ``campaign resume`` and the store
    merge can detect that the catalog, a sweep or the policy defaults
    changed under a half-finished campaign.  Deterministic: pure
    function of the spec's value.
    """
    payload = dataclasses.asdict(spec)
    canonical = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class WorkItem:
    """One durable unit of campaign work: a (scenario, stack, optional
    sweep-point, seed) cell of the grid.

    ``sweep``/``sweep_value`` are ``None`` for plain scenario items and
    name a registered sweep plus one of its axis values for sweep
    items.  The item id doubles as the completion-record filename, so
    it is filesystem-safe and unique within a campaign (validated at
    expansion).
    """

    scenario: str
    stack: str
    seed: int
    sweep: Optional[str] = None
    sweep_value: Optional[float] = None

    @property
    def item_id(self) -> str:
        """The unique, filesystem-safe id (``/`` becomes ``_``)."""
        if self.sweep is None:
            stem = self.scenario
        else:
            stem = f"{self.sweep}@{self.sweep_value:g}"
        return f"{stem}--{self.stack}--s{self.seed}".replace("/", "_")

    @property
    def group(self) -> str:
        """The aggregation group: every seed of one grid cell.

        Items sharing a group differ only by seed; the results store
        aggregates their metrics into one mean ± CI estimate, and
        ``campaign diff`` compares runs group by group.
        """
        if self.sweep is None:
            return f"{self.scenario} [{self.stack}]"
        return f"{self.sweep}@{self.sweep_value:g} [{self.stack}]"

    def spec(self, smoke: bool = False) -> ScenarioSpec:
        """Re-derive the spec this item runs, via the CLI's own paths.

        Scenario items: catalog lookup, ``stack`` rebind, optional
        ``smoke()`` shrink.  Sweep items: the same resolution
        :func:`repro.scenarios.sweep.sweep_points` performs, then
        :meth:`ScenarioSweep.derive` at this item's axis value.
        Deterministic: pure data derivation, revalidated end to end.
        """
        if self.sweep is None:
            spec = get_scenario(self.scenario).replace(stack=self.stack)
            return spec.smoke() if smoke else spec
        resolved, base, _seeds, _points = sweep_points(
            self.sweep, smoke=smoke, stack=self.stack
        )
        return resolved.derive(base, self.sweep_value)

    def to_json(self) -> dict:
        """The JSON mapping stored in manifests and records."""
        payload = {
            "scenario": self.scenario,
            "stack": self.stack,
            "seed": self.seed,
        }
        if self.sweep is not None:
            payload["sweep"] = self.sweep
            payload["sweep_value"] = self.sweep_value
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "WorkItem":
        """Rebuild an item from :meth:`to_json` output (round-trip
        exact: ids and fingerprints match the originals)."""
        return cls(
            scenario=payload["scenario"],
            stack=payload["stack"],
            seed=int(payload["seed"]),
            sweep=payload.get("sweep"),
            sweep_value=payload.get("sweep_value"),
        )


@dataclass(frozen=True)
class CampaignManifest:
    """The frozen campaign definition: knobs plus the expanded grid.

    Built by :func:`build_manifest` (which expands and validates the
    grid) and serialized to ``manifest.json`` by the queue layer.  The
    ``fingerprints`` tuple is parallel to ``items``.
    """

    name: str
    scenarios: tuple[str, ...]
    sweeps: tuple[str, ...]
    stacks: Optional[tuple[str, ...]]
    seeds: Optional[tuple[int, ...]]
    smoke: bool
    items: tuple[WorkItem, ...]
    fingerprints: tuple[str, ...]

    def digest(self) -> str:
        """A stable digest of the whole manifest (16 hex chars).

        Stamped into every results store so ``campaign diff`` can say
        whether two runs executed the same frozen grid.
        Deterministic: canonical-JSON SHA-256 of :meth:`to_json`.
        """
        canonical = json.dumps(self.to_json(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    def item_ids(self) -> list[str]:
        """Every item id, in expansion (= execution) order."""
        return [item.item_id for item in self.items]

    def to_json(self) -> dict:
        """The ``manifest.json`` payload (schema-stamped, no
        timestamps, so equal knobs give byte-equal manifests)."""
        return {
            "schema": MANIFEST_SCHEMA,
            "name": self.name,
            "scenarios": list(self.scenarios),
            "sweeps": list(self.sweeps),
            "stacks": list(self.stacks) if self.stacks is not None else None,
            "seeds": list(self.seeds) if self.seeds is not None else None,
            "smoke": self.smoke,
            "items": [
                {**item.to_json(), "fingerprint": fingerprint}
                for item, fingerprint in zip(self.items, self.fingerprints)
            ],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "CampaignManifest":
        """Rebuild a manifest from :meth:`to_json` output.

        Shape-validates eagerly (schema version, item fields) and
        raises :class:`CampaignError` with the problem named.
        """
        if payload.get("schema") != MANIFEST_SCHEMA:
            raise CampaignError(
                f"manifest schema must be {MANIFEST_SCHEMA}, "
                f"got {payload.get('schema')!r}"
            )
        try:
            items = tuple(
                WorkItem.from_json(entry) for entry in payload["items"]
            )
            fingerprints = tuple(
                entry["fingerprint"] for entry in payload["items"]
            )
            return cls(
                name=payload["name"],
                scenarios=tuple(payload["scenarios"]),
                sweeps=tuple(payload["sweeps"]),
                stacks=(
                    tuple(payload["stacks"])
                    if payload["stacks"] is not None
                    else None
                ),
                seeds=(
                    tuple(int(s) for s in payload["seeds"])
                    if payload["seeds"] is not None
                    else None
                ),
                smoke=bool(payload["smoke"]),
                items=items,
                fingerprints=fingerprints,
            )
        except (KeyError, TypeError) as error:
            raise CampaignError(f"malformed manifest: {error!r}") from None

    def verify_derivable(self) -> None:
        """Re-derive every item's spec and match its fingerprint.

        The eager manifest/spec-mismatch gate: raises
        :class:`CampaignError` naming the first item whose current
        derivation (catalog entry, sweep definition, policy defaults)
        no longer produces the spec that was frozen at ``campaign
        new`` time.  Deterministic: pure re-derivation.
        """
        for item, pinned in zip(self.items, self.fingerprints):
            try:
                fresh = spec_fingerprint(item.spec(self.smoke))
            except (KeyError, ValueError) as error:
                raise CampaignError(
                    f"item {item.item_id!r} no longer derives: {error}"
                ) from error
            if fresh != pinned:
                raise CampaignError(
                    f"item {item.item_id!r}: spec fingerprint {fresh} does "
                    f"not match the manifest's {pinned} — the scenario "
                    f"catalog or sweep definition changed since 'campaign "
                    f"new'; create a fresh campaign instead of resuming"
                )


def build_manifest(
    name: str,
    scenarios: Sequence[str] = (),
    sweeps: Sequence[str] = (),
    stacks: Optional[Sequence[str]] = None,
    seeds: Optional[Iterable[int]] = None,
    smoke: bool = False,
) -> CampaignManifest:
    """Expand campaign knobs into a validated, frozen manifest.

    Expansion order (which is also execution order): scenario entries
    first — scenario-major, then stack, then seed — followed by sweep
    entries — sweep-major, then stack, then axis point, then seed.
    ``stacks=None`` keeps each spec's own default stack; explicit
    stacks are validated against the registry.  ``seeds=None`` uses
    each (smoke-shrunk) spec's or sweep's own defaults.  Duplicate
    item ids (e.g. the same scenario listed twice) raise
    :class:`CampaignError` eagerly.  Deterministic: a pure function of
    the knobs and registered definitions.
    """
    if not scenarios and not sweeps:
        raise CampaignError(
            "a campaign needs at least one scenario or sweep"
        )
    if stacks is not None:
        from repro.stacks.registry import get_stack

        stacks = tuple(stacks)
        for stack in stacks:
            get_stack(stack)  # eager: unknown stack fails before expansion
    seed_override = (
        tuple(int(seed) for seed in seeds) if seeds is not None else None
    )

    items: list[WorkItem] = []
    fingerprints: list[str] = []
    for scenario_name in scenarios:
        base = get_scenario(scenario_name)
        for stack in stacks if stacks is not None else (base.stack,):
            spec = base.replace(stack=stack)
            if smoke:
                spec = spec.smoke()
            for seed in seed_override or spec.seeds:
                items.append(WorkItem(
                    scenario=scenario_name, stack=stack, seed=seed,
                ))
                fingerprints.append(spec_fingerprint(spec))
    for sweep_name in sweeps:
        sweep = get_sweep(sweep_name)
        base_stack = get_scenario(sweep.scenario).stack
        for stack in stacks if stacks is not None else (base_stack,):
            _resolved, _base, seed_list, points = sweep_points(
                sweep, seeds=seed_override, smoke=smoke, stack=stack
            )
            for value, spec in points:
                for seed in seed_list:
                    items.append(WorkItem(
                        scenario=sweep.scenario,
                        stack=stack,
                        seed=seed,
                        sweep=sweep_name,
                        sweep_value=value,
                    ))
                    fingerprints.append(spec_fingerprint(spec))

    seen: set[str] = set()
    for item in items:
        if item.item_id in seen:
            raise CampaignError(
                f"duplicate work item {item.item_id!r}: the same "
                f"(scenario, stack, sweep-point, seed) cell was queued "
                f"twice — de-duplicate the campaign's scenario/sweep/seed "
                f"lists"
            )
        seen.add(item.item_id)

    return CampaignManifest(
        name=name,
        scenarios=tuple(scenarios),
        sweeps=tuple(sweeps),
        stacks=stacks,
        seeds=seed_override,
        smoke=smoke,
        items=tuple(items),
        fingerprints=tuple(fingerprints),
    )


__all__ = [
    "MANIFEST_SCHEMA",
    "CampaignError",
    "CampaignManifest",
    "WorkItem",
    "build_manifest",
    "spec_fingerprint",
]
