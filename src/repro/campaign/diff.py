"""Cross-run regression diffs: compare two campaign results stores.

``repro campaign diff <runA> <runB>`` answers the question the
mobility-comparison literature keeps asking of simulations — did this
change regress any metric, beyond seed noise?  Both stores are
re-aggregated per grid cell (seeds -> mean ± Student-t CI via
:func:`repro.campaign.store.store_replications`, the same
:mod:`repro.metrics.stats` reduction live runs use), then every metric
of every shared cell is compared:

* a difference is **significant** when the two confidence intervals
  are disjoint (``A.high < B.low`` or ``B.high < A.low``) — seed noise
  inside overlapping intervals is never flagged;
* a significant change is a **regression** when the metric moved in
  its known-bad direction (:data:`LOWER_IS_BETTER` /
  :data:`HIGHER_IS_BETTER`), an **improvement** when it moved the good
  way, and a direction-neutral **change** for metrics with no known
  polarity (e.g. raw handoff counts);
* single-seed cells have zero-width intervals, so *any* drift there is
  significant — run more seeds per point when that is too strict.

Two identical stores (or two runs whose intervals all overlap) produce
an explicit "no regressions" result — pinned by the golden fixtures in
``tests/test_campaign_diff.py``.

Determinism: the diff and its rendering are pure functions of the two
stores' record contents — byte-identical output for byte-identical
inputs, independent of how either campaign was executed or resumed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.stats import Estimate
from repro.metrics.tables import format_table

from repro.campaign.store import store_replications

#: Metrics where an increase is a regression (QoS penalties, losses,
#: latencies, drops, blocking).  Namespaced stack extras match on the
#: part after the last dot (``cip.handoff_latency`` -> see
#: :func:`metric_polarity`).
LOWER_IS_BETTER = frozenset({
    "loss_rate",
    "mean_delay",
    "max_delay",
    "jitter",
    "max_gap",
    "handoff_latency",
    "blocked_attaches",
    "dropped",
    "drops",
    "air_detach_drops",
    "air_busiest_downlink",
    "signalling_messages",
})

#: Metrics where a decrease is a regression (delivery and throughput).
HIGHER_IS_BETTER = frozenset({
    "delivered",
    "received",
    "throughput",
    "goodput",
    "delivery_ratio",
})


def metric_polarity(metric: str) -> int:
    """The known-bad direction of one metric name.

    Returns ``+1`` when higher is worse (:data:`LOWER_IS_BETTER`),
    ``-1`` when lower is worse (:data:`HIGHER_IS_BETTER`), ``0`` when
    the polarity is unknown and a significant change is reported
    direction-neutrally.  Namespaced names (``cip.handoff_latency``)
    are judged by their last component.  Deterministic.
    """
    leaf = metric.rsplit(".", 1)[-1]
    if leaf in LOWER_IS_BETTER:
        return +1
    if leaf in HIGHER_IS_BETTER:
        return -1
    return 0


@dataclass(frozen=True)
class MetricChange:
    """One (group, metric) comparison between two stores."""

    group: str
    metric: str
    a: Estimate
    b: Estimate
    verdict: str  # 'ok' | 'regressed' | 'improved' | 'changed'

    @property
    def delta(self) -> float:
        """Mean difference, B minus A."""
        return self.b.mean - self.a.mean

    @property
    def relative(self) -> float:
        """Relative change (B-A)/|A|; ``nan`` when A's mean is 0."""
        if self.a.mean == 0:
            return float("nan")
        return self.delta / abs(self.a.mean)

    @property
    def significant(self) -> bool:
        """True when the verdict is anything but ``ok``."""
        return self.verdict != "ok"


@dataclass(frozen=True)
class CampaignDiff:
    """The full comparison of two campaign results stores."""

    label_a: str
    label_b: str
    confidence: float
    changes: list[MetricChange]
    only_in_a: list[str]
    only_in_b: list[str]

    def significant(self) -> list[MetricChange]:
        """The changes whose confidence intervals are disjoint."""
        return [change for change in self.changes if change.significant]

    def regressions(self) -> list[MetricChange]:
        """The significant changes in a metric's known-bad direction."""
        return [
            change for change in self.changes
            if change.verdict == "regressed"
        ]


def _disjoint(a: Estimate, b: Estimate) -> bool:
    """True when two confidence intervals do not overlap at all."""
    return a.high < b.low or b.high < a.low


def diff_stores(
    store_a: dict,
    store_b: dict,
    label_a: str = "A",
    label_b: str = "B",
    confidence: float = 0.95,
) -> CampaignDiff:
    """Compare two loaded stores per (grid cell, metric) with CIs.

    Cells are matched by group label (scenario/sweep-point + stack);
    cells present in only one store are reported, not compared.
    Within a shared cell, metrics present in both stores are compared
    (a metric only one run emitted — e.g. gated ``policy.*`` keys — is
    skipped: absence is a shape difference, not a regression).
    Verdicts per the module contract: CI-disjoint changes are
    significant, polarity decides regressed/improved/changed.
    Deterministic: pure function of the two stores.
    """
    groups_a = store_replications(store_a, confidence)
    groups_b = store_replications(store_b, confidence)
    shared = [group for group in groups_a if group in groups_b]
    only_in_a = [group for group in groups_a if group not in groups_b]
    only_in_b = [group for group in groups_b if group not in groups_a]

    changes: list[MetricChange] = []
    for group in shared:
        _seeds_a, replication_a = groups_a[group]
        _seeds_b, replication_b = groups_b[group]
        for metric, estimate_a in replication_a.metrics.items():
            estimate_b = replication_b.metrics.get(metric)
            if estimate_b is None:
                continue
            verdict = "ok"
            if _disjoint(estimate_a, estimate_b):
                polarity = metric_polarity(metric)
                moved_up = estimate_b.mean > estimate_a.mean
                if polarity == 0:
                    verdict = "changed"
                elif (polarity > 0) == moved_up:
                    verdict = "regressed"
                else:
                    verdict = "improved"
            changes.append(MetricChange(
                group=group,
                metric=metric,
                a=estimate_a,
                b=estimate_b,
                verdict=verdict,
            ))
    return CampaignDiff(
        label_a=label_a,
        label_b=label_b,
        confidence=confidence,
        changes=changes,
        only_in_a=only_in_a,
        only_in_b=only_in_b,
    )


def format_campaign_diff(diff: CampaignDiff, show_all: bool = False) -> str:
    """Render a :class:`CampaignDiff` as the CLI's regression report.

    Significant changes (regressed first, then improved, then
    direction-neutral) as a table of mean ± CI pairs, delta and
    relative change; with no significant change at all, an explicit
    "no regressions" line replaces the table.  ``show_all=True``
    appends the non-significant rows too.  Groups present in only one
    store are listed last.  Deterministic: pure rendering.
    """
    level = int(round(diff.confidence * 100))
    lines = [
        f"campaign diff: {diff.label_a} vs {diff.label_b} "
        f"({len(diff.changes)} shared metric comparisons, {level}% CIs)"
    ]
    significant = diff.significant()
    rank = {"regressed": 0, "improved": 1, "changed": 2}
    significant.sort(
        key=lambda change: (
            rank[change.verdict], change.group, change.metric
        )
    )
    if not significant:
        lines.append(
            "no regressions: every shared metric's confidence intervals "
            "overlap"
        )
    else:
        counts = {
            verdict: sum(
                1 for change in significant if change.verdict == verdict
            )
            for verdict in ("regressed", "improved", "changed")
        }
        lines.append(
            f"{counts['regressed']} regressed, {counts['improved']} "
            f"improved, {counts['changed']} changed (direction-neutral)"
        )
        rows = [
            [
                change.group,
                change.metric,
                change.a.mean,
                change.a.half_width,
                change.b.mean,
                change.b.half_width,
                change.delta,
                change.relative,
                change.verdict,
            ]
            for change in significant
        ]
        lines.append(format_table(
            [
                "group", "metric",
                diff.label_a, f"±ci{level}",
                diff.label_b, f"±ci{level}",
                "delta", "relative", "verdict",
            ],
            rows,
        ))
    if show_all:
        stable = [change for change in diff.changes if not change.significant]
        if stable:
            rows = [
                [
                    change.group, change.metric,
                    change.a.mean, change.a.half_width,
                    change.b.mean, change.b.half_width,
                    change.delta,
                ]
                for change in stable
            ]
            lines.append("")
            lines.append("within confidence intervals (no change claimed):")
            lines.append(format_table(
                [
                    "group", "metric",
                    diff.label_a, f"±ci{level}",
                    diff.label_b, f"±ci{level}",
                    "delta",
                ],
                rows,
            ))
    if diff.only_in_a:
        lines.append(
            f"only in {diff.label_a}: {', '.join(diff.only_in_a)}"
        )
    if diff.only_in_b:
        lines.append(
            f"only in {diff.label_b}: {', '.join(diff.only_in_b)}"
        )
    return "\n".join(lines)


__all__ = [
    "HIGHER_IS_BETTER",
    "LOWER_IS_BETTER",
    "CampaignDiff",
    "MetricChange",
    "diff_stores",
    "format_campaign_diff",
    "metric_polarity",
]
