"""The durable on-disk campaign queue: crash-safe records, resume.

Directory layout of one campaign::

    <campaign>/
        manifest.json          # frozen grid (see repro.campaign.manifest)
        items/<item_id>.json   # one atomic completion record per item
        results.json           # canonical merged store, written when done

Durability model
----------------
Each work item's completion record is written to a temporary file and
``os.replace``-d into place, so a record either exists completely or
not at all — a SIGKILL at any instant leaves no half-written record
(stray ``*.tmp`` files are ignored and overwritten on resume).  A
resumed campaign (``repro campaign resume``, or just ``run`` again)
lists the existing records, skips every completed item, and runs only
the remainder; items that were in flight when the process died simply
re-run.  Records carry the item's spec fingerprint, so a resume under
a changed catalog fails eagerly instead of merging incomparable runs.

Execution model
---------------
:func:`run_campaign` drains pending items in batches of ``batch_size``
jobs, dispatching each batch through one
:meth:`ExecutionBackend.run <repro.experiments.exec.ExecutionBackend.run>`
call — so ``--jobs N`` parallelism, work stealing and fail-fast error
propagation all work exactly as they do for ``repro scenario run``.
Smaller batches persist progress more often (better crash granularity);
larger batches amortize pool dispatch (better throughput).

Determinism contract
--------------------
Every item's metrics depend only on its (spec, seed) pair, records are
keyed by item id, and the merged store is canonical (sorted ids, sorted
keys) — so a killed-then-resumed campaign's ``results.json`` and item
records are **byte-identical** to an uninterrupted run's, serial or
``--jobs N``, in any interleaving of crashes and resumes (enforced by
``tests/test_campaign_crash.py`` and the CI campaign smoke step).
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from repro.experiments.exec import ExecutionBackend, get_default_backend
from repro.scenarios.builder import scenario_job

from repro.campaign.manifest import (
    CampaignError,
    CampaignManifest,
    WorkItem,
    build_manifest,
    spec_fingerprint,
)

#: Completion-record schema version, bumped on layout changes.
RECORD_SCHEMA = 1

#: Default number of items drained per backend batch: big enough to
#: keep a small pool busy, small enough that a crash loses little.
DEFAULT_BATCH_SIZE = 8

MANIFEST_FILE = "manifest.json"
ITEMS_DIR = "items"
STORE_FILE = "results.json"


def _write_atomic(path: pathlib.Path, text: str) -> None:
    """Write ``text`` to ``path`` via tmp-file + ``os.replace``.

    The rename is atomic on POSIX, so readers (and a resume after
    SIGKILL) see either the complete file or nothing.
    """
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


@dataclass(frozen=True)
class CampaignStatus:
    """One campaign's progress snapshot (pure data, renderable)."""

    name: str
    total: int
    completed: int
    #: group label -> (completed, total) item counts.
    groups: dict[str, tuple[int, int]]

    @property
    def pending(self) -> int:
        """Items still to run (``total - completed``)."""
        return self.total - self.completed

    @property
    def done(self) -> bool:
        """True when every item has a completion record."""
        return self.completed == self.total


class Campaign:
    """A handle on one durable campaign directory.

    Created by :meth:`create` (``repro campaign new``) or reopened by
    :meth:`load` (``run``/``resume``/``status``); all mutation goes
    through atomic file operations, so concurrent readers and a
    crash-interrupted writer can never observe a torn state.
    Deterministic: the directory contents are a pure function of the
    manifest knobs and the completed items' (spec, seed) metrics.
    """

    def __init__(
        self, directory: pathlib.Path, manifest: CampaignManifest
    ) -> None:
        self.directory = pathlib.Path(directory)
        self.manifest = manifest

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        directory,
        scenarios: Sequence[str] = (),
        sweeps: Sequence[str] = (),
        stacks: Optional[Sequence[str]] = None,
        seeds: Optional[Iterable[int]] = None,
        smoke: bool = False,
        name: Optional[str] = None,
    ) -> "Campaign":
        """Expand the grid, freeze it, and write ``manifest.json``.

        Refuses to overwrite an existing campaign (a second ``new`` on
        the same directory raises :class:`CampaignError`); the items
        directory is created empty.  Deterministic: equal knobs give
        byte-equal manifests (no timestamps).
        """
        directory = pathlib.Path(directory)
        manifest_path = directory / MANIFEST_FILE
        if manifest_path.exists():
            raise CampaignError(
                f"{manifest_path} already exists; 'campaign new' never "
                f"overwrites — run/resume it, or pick a fresh directory"
            )
        manifest = build_manifest(
            name=name or directory.name,
            scenarios=scenarios,
            sweeps=sweeps,
            stacks=stacks,
            seeds=seeds,
            smoke=smoke,
        )
        (directory / ITEMS_DIR).mkdir(parents=True, exist_ok=True)
        _write_atomic(
            manifest_path,
            json.dumps(manifest.to_json(), indent=2, sort_keys=True) + "\n",
        )
        return cls(directory, manifest)

    @classmethod
    def load(cls, directory) -> "Campaign":
        """Reopen an existing campaign directory.

        Parses and shape-validates the manifest, then re-derives every
        item's spec and checks its fingerprint
        (:meth:`CampaignManifest.verify_derivable`) so a drifted
        catalog fails here — eagerly, with the item named — not while
        merging results.  Deterministic: read-only.
        """
        directory = pathlib.Path(directory)
        manifest_path = directory / MANIFEST_FILE
        if not manifest_path.exists():
            raise CampaignError(
                f"{directory} is not a campaign directory "
                f"(no {MANIFEST_FILE}); create one with 'campaign new'"
            )
        try:
            payload = json.loads(manifest_path.read_text())
        except json.JSONDecodeError as error:
            raise CampaignError(
                f"{manifest_path} is not valid JSON: {error}"
            ) from None
        manifest = CampaignManifest.from_json(payload)
        manifest.verify_derivable()
        return cls(directory, manifest)

    # ------------------------------------------------------------------
    @property
    def items_dir(self) -> pathlib.Path:
        """The per-item completion-record directory."""
        return self.directory / ITEMS_DIR

    @property
    def store_path(self) -> pathlib.Path:
        """Where the merged results store lands when the run completes."""
        return self.directory / STORE_FILE

    def record_path(self, item_id: str) -> pathlib.Path:
        """The completion-record path for one item id."""
        return self.items_dir / f"{item_id}.json"

    def completed_ids(self) -> set[str]:
        """Item ids with a completion record on disk.

        Only complete ``*.json`` records count; in-flight ``*.tmp``
        files (from a crashed writer) are ignored.  Stray record files
        whose id is not in the manifest raise :class:`CampaignError`
        (a foreign or corrupted campaign directory must not be
        silently merged).
        """
        if not self.items_dir.exists():
            return set()
        known = set(self.manifest.item_ids())
        found = {
            path.stem
            for path in self.items_dir.glob("*.json")
            if not path.name.endswith(".tmp")
        }
        strays = sorted(found - known)
        if strays:
            raise CampaignError(
                f"items directory contains record(s) for unknown item "
                f"id(s) {', '.join(strays)} — not part of this "
                f"campaign's manifest"
            )
        return found

    def pending(self) -> list[WorkItem]:
        """Items without a completion record, in manifest order."""
        completed = self.completed_ids()
        return [
            item
            for item in self.manifest.items
            if item.item_id not in completed
        ]

    # ------------------------------------------------------------------
    def write_record(self, item: WorkItem, metrics: dict) -> pathlib.Path:
        """Persist one item's completion record atomically.

        The record carries the item, its spec fingerprint and the
        plain-float metric dict; JSON is canonical (sorted keys) so
        equal results are byte-equal files.  Returns the record path.
        """
        payload = {
            "schema": RECORD_SCHEMA,
            "item": item.to_json(),
            "item_id": item.item_id,
            "fingerprint": spec_fingerprint(item.spec(self.manifest.smoke)),
            "metrics": {key: float(value) for key, value in metrics.items()},
        }
        path = self.record_path(item.item_id)
        _write_atomic(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return path

    def read_record(self, item_id: str) -> dict:
        """Load and shape-validate one completion record.

        Raises :class:`CampaignError` on unparsable JSON, a schema or
        id mismatch, or missing metrics — corruption surfaces at read
        time with the file named, never as silently wrong aggregates.
        """
        path = self.record_path(item_id)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            raise CampaignError(
                f"no completion record for item {item_id!r} "
                f"(expected {path})"
            ) from None
        except json.JSONDecodeError as error:
            raise CampaignError(
                f"{path} is not valid JSON: {error}"
            ) from None
        if payload.get("schema") != RECORD_SCHEMA:
            raise CampaignError(
                f"{path}: record schema must be {RECORD_SCHEMA}, "
                f"got {payload.get('schema')!r}"
            )
        if payload.get("item_id") != item_id:
            raise CampaignError(
                f"{path}: record claims item id {payload.get('item_id')!r}, "
                f"filename says {item_id!r}"
            )
        metrics = payload.get("metrics")
        if not isinstance(metrics, dict) or not metrics:
            raise CampaignError(f"{path}: record has no metrics mapping")
        return payload

    def status(self) -> CampaignStatus:
        """The campaign's progress snapshot, grouped per grid cell."""
        completed = self.completed_ids()
        groups: dict[str, tuple[int, int]] = {}
        for item in self.manifest.items:
            done, total = groups.get(item.group, (0, 0))
            groups[item.group] = (
                done + (1 if item.item_id in completed else 0),
                total + 1,
            )
        return CampaignStatus(
            name=self.manifest.name,
            total=len(self.manifest.items),
            completed=len(completed),
            groups=groups,
        )


@dataclass(frozen=True)
class RunSummary:
    """What one :func:`run_campaign` invocation did."""

    total: int
    skipped: int
    ran: int
    #: Path of the merged store, when the campaign completed.
    store: Optional[pathlib.Path]

    @property
    def done(self) -> bool:
        """True when the campaign finished (store written)."""
        return self.store is not None


def run_campaign(
    campaign: Campaign,
    backend: Optional[ExecutionBackend] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    max_items: Optional[int] = None,
    log: Optional[Callable[[str], None]] = None,
    shards: int = 1,
) -> RunSummary:
    """Drain a campaign's pending items through an execution backend.

    Completed items are skipped (this *is* resume — a fresh campaign
    simply has nothing to skip); the remainder is drained in batches
    of ``batch_size``, each batch one
    :meth:`ExecutionBackend.run <repro.experiments.exec.ExecutionBackend.run>`
    call, with every finished item's record written atomically before
    the next batch starts.  ``max_items`` stops after that many items
    (deterministic partial runs for tests and incremental draining).
    When the last record lands, the canonical merged store is written
    to ``results.json`` and its path returned in the summary.
    ``shards > 1`` decomposes every item's run spatially over that
    many processes (see :mod:`repro.shard`); the store stays
    byte-identical for any value.

    Determinism: the on-disk end state is byte-identical for any
    backend, any ``batch_size``, any ``max_items`` chunking and any
    crash/resume interleaving — only the order records appear in is
    affected, never their contents.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be at least 1, got {batch_size}")
    if backend is None:
        backend = get_default_backend()
    say = log if log is not None else (lambda message: None)

    pending = campaign.pending()
    total = len(campaign.manifest.items)
    skipped = total - len(pending)
    if skipped:
        say(f"resuming: {skipped} completed item(s) skipped, "
            f"{len(pending)} to run")
    if max_items is not None:
        pending = pending[:max_items]

    smoke = campaign.manifest.smoke
    ran = 0
    for start in range(0, len(pending), batch_size):
        batch = pending[start:start + batch_size]
        jobs = [
            scenario_job(item.spec(smoke), item.seed, shards)
            for item in batch
        ]
        results = backend.run(jobs)
        for item, metrics in zip(batch, results):
            campaign.write_record(item, metrics)
        ran += len(batch)
        say(f"  {skipped + ran}/{total} items complete")

    store: Optional[pathlib.Path] = None
    if not campaign.pending():
        from repro.campaign.store import write_store

        store = write_store(campaign)
        say(f"campaign complete; merged store written to {store}")
    return RunSummary(total=total, skipped=skipped, ran=ran, store=store)


__all__ = [
    "DEFAULT_BATCH_SIZE",
    "ITEMS_DIR",
    "MANIFEST_FILE",
    "RECORD_SCHEMA",
    "STORE_FILE",
    "Campaign",
    "CampaignStatus",
    "RunSummary",
    "run_campaign",
]
