"""The merged campaign results store and its re-aggregation views.

When a campaign's last work item completes, the per-item records merge
into one canonical ``results.json``: records sorted by item id, JSON
keys sorted, schema-stamped, with the manifest digest pinned — the
single artifact ``repro campaign diff`` consumes and the byte-identity
contract is stated over.

Integrity is checked eagerly at every boundary: merging refuses
incomplete campaigns (naming the pending count), duplicate item ids,
fingerprint drift against the manifest, and records for items the
manifest never queued; loading a store re-validates schema, duplicate
ids and record shape, so a hand-edited or truncated store fails with
the problem named instead of producing silently wrong aggregates.

Re-aggregation: :func:`store_replications` groups records per grid
cell (same scenario/stack/sweep-point, seeds ascending) and reduces
them with :func:`repro.experiments.runner.aggregate` — the exact
reduction live runs use — so confidence intervals computed from a
store equal the ones a live run would have printed.
:func:`store_stack_comparisons` goes one step further and rebuilds
:class:`~repro.scenarios.compare.StackComparison` tables for scenarios
the campaign covered under several stacks.

Determinism: merging, loading and re-aggregation are pure functions of
the record contents; the store's bytes are independent of execution
order, backend, batch size and crash/resume history.
"""

from __future__ import annotations

import json
import pathlib
from typing import Union

from repro.experiments.runner import Replication, aggregate
from repro.scenarios.catalog import get_scenario
from repro.scenarios.compare import StackComparison, build_stack_comparison

from repro.campaign.manifest import CampaignError, WorkItem
from repro.campaign.queue import Campaign, _write_atomic

#: Merged-store schema version, bumped on layout changes.
STORE_SCHEMA = 1


def merge_store(campaign: Campaign) -> dict:
    """Merge a *completed* campaign's records into one store mapping.

    Validates everything eagerly: every manifest item must have a
    record (else the pending count is reported — run ``campaign
    resume``), every record must parse, match its filename id, carry
    metrics, and carry the fingerprint the manifest pinned for that
    item; duplicates cannot arise from the filesystem but are guarded
    against all the same.  Records are ordered by item id so the
    result is canonical.  Deterministic: pure function of the records.
    """
    status = campaign.status()
    if not status.done:
        raise CampaignError(
            f"campaign {campaign.manifest.name!r} has {status.pending} "
            f"pending item(s); run 'repro campaign resume' before merging"
        )
    pinned = dict(zip(campaign.manifest.item_ids(), campaign.manifest.fingerprints))
    records = []
    seen: set[str] = set()
    for item_id in sorted(pinned):
        if item_id in seen:
            raise CampaignError(f"duplicate item id {item_id!r} in manifest")
        seen.add(item_id)
        record = campaign.read_record(item_id)
        if record.get("fingerprint") != pinned[item_id]:
            raise CampaignError(
                f"record {item_id!r}: spec fingerprint "
                f"{record.get('fingerprint')!r} does not match the "
                f"manifest's {pinned[item_id]!r} — the record was produced "
                f"by a different spec; re-run the item (delete its record "
                f"and 'campaign resume')"
            )
        records.append({
            "item": record["item"],
            "item_id": item_id,
            "fingerprint": record["fingerprint"],
            "metrics": record["metrics"],
        })
    return {
        "schema": STORE_SCHEMA,
        "campaign": campaign.manifest.name,
        "manifest_digest": campaign.manifest.digest(),
        "smoke": campaign.manifest.smoke,
        "records": records,
    }


def write_store(campaign: Campaign) -> pathlib.Path:
    """Merge and write ``results.json`` atomically; returns its path.

    Canonical bytes: sorted record order, sorted JSON keys, trailing
    newline — byte-identical for any execution history of the same
    campaign (the crash/kill suite and the CI campaign smoke step
    ``diff -r`` this).  Deterministic per the merge contract.
    """
    store = merge_store(campaign)
    _write_atomic(
        campaign.store_path,
        json.dumps(store, indent=2, sort_keys=True) + "\n",
    )
    return campaign.store_path


def load_store(path: Union[str, pathlib.Path]) -> dict:
    """Load and validate a merged store from a file or campaign dir.

    Accepts either the ``results.json`` path itself or a campaign
    directory containing one.  Validates schema, record shape and
    duplicate item ids eagerly (:class:`CampaignError` with the
    problem named).  Deterministic: read-only.
    """
    path = pathlib.Path(path)
    if path.is_dir():
        path = path / "results.json"
    if not path.exists():
        raise CampaignError(
            f"no merged store at {path}; finish the campaign "
            f"('repro campaign resume') to produce one"
        )
    try:
        store = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise CampaignError(f"{path} is not valid JSON: {error}") from None
    if store.get("schema") != STORE_SCHEMA:
        raise CampaignError(
            f"{path}: store schema must be {STORE_SCHEMA}, "
            f"got {store.get('schema')!r}"
        )
    records = store.get("records")
    if not isinstance(records, list) or not records:
        raise CampaignError(f"{path}: store has no records")
    seen: set[str] = set()
    for record in records:
        item_id = record.get("item_id")
        if not isinstance(item_id, str) or not item_id:
            raise CampaignError(f"{path}: record without an item_id")
        if item_id in seen:
            raise CampaignError(f"{path}: duplicate item id {item_id!r}")
        seen.add(item_id)
        metrics = record.get("metrics")
        if not isinstance(metrics, dict) or not metrics:
            raise CampaignError(f"{path}: record {item_id!r} has no metrics")
        if not isinstance(record.get("item"), dict):
            raise CampaignError(f"{path}: record {item_id!r} has no item")
    return store


def store_replications(
    store: dict, confidence: float = 0.95
) -> dict[str, tuple[list[int], Replication]]:
    """Re-aggregate a store per grid cell: group -> (seeds, Replication).

    Groups records by :attr:`WorkItem.group` (same scenario, stack and
    sweep-point — the cells of the campaign grid), orders each group's
    records by seed ascending, and reduces the per-seed metric dicts
    with :func:`repro.experiments.runner.aggregate` at ``confidence``
    — exactly how a live replication aggregates, so the resulting
    means and CI half-widths match a live run of the same grid.
    Groups are returned in first-appearance (store) order.
    Deterministic: pure reduction.
    """
    grouped: dict[str, list[tuple[int, dict]]] = {}
    for record in store["records"]:
        item = WorkItem.from_json(record["item"])
        grouped.setdefault(item.group, []).append(
            (item.seed, record["metrics"])
        )
    out: dict[str, tuple[list[int], Replication]] = {}
    for group, entries in grouped.items():
        entries.sort(key=lambda entry: entry[0])
        seeds = [seed for seed, _metrics in entries]
        out[group] = (
            seeds,
            aggregate([metrics for _seed, metrics in entries], confidence),
        )
    return out


def store_stack_comparisons(
    store: dict, confidence: float = 0.95
) -> list[StackComparison]:
    """Rebuild cross-stack comparison tables from a merged store.

    For every plain scenario (non-sweep) the campaign ran under more
    than one stack with identical seed lists, assembles the same
    :class:`~repro.scenarios.compare.StackComparison` a live
    ``repro scenario run <name> --stack all`` builds — render it with
    :func:`~repro.scenarios.compare.format_stack_comparison` for a
    byte-identical table.  Scenarios appear in store order; stacks in
    registry order (the order a live ``--stack all`` uses), with any
    unregistered stragglers appended in first-appearance order.
    Deterministic: pure reduction.
    """
    from repro.stacks.registry import stack_names
    per_scenario: dict[str, dict[str, list[tuple[int, dict]]]] = {}
    for record in store["records"]:
        item = WorkItem.from_json(record["item"])
        if item.sweep is not None:
            continue
        stacks = per_scenario.setdefault(item.scenario, {})
        stacks.setdefault(item.stack, []).append(
            (item.seed, record["metrics"])
        )
    comparisons: list[StackComparison] = []
    registry_order = stack_names()
    for scenario, stacks in per_scenario.items():
        if len(stacks) < 2:
            continue
        ordered = [name for name in registry_order if name in stacks]
        ordered += [name for name in stacks if name not in ordered]
        seed_lists = []
        replications: dict[str, Replication] = {}
        for stack in ordered:
            entries = stacks[stack]
            entries.sort(key=lambda entry: entry[0])
            seed_lists.append([seed for seed, _metrics in entries])
            replications[stack] = aggregate(
                [metrics for _seed, metrics in entries], confidence
            )
        if any(seeds != seed_lists[0] for seeds in seed_lists[1:]):
            # Unpaired seeds: columns would not be comparable per seed,
            # so no side-by-side table for this scenario.
            continue
        spec = get_scenario(scenario)
        if store.get("smoke"):
            spec = spec.smoke()
        comparisons.append(build_stack_comparison(
            spec, replications, seed_lists[0], confidence
        ))
    return comparisons


__all__ = [
    "STORE_SCHEMA",
    "load_store",
    "merge_store",
    "store_replications",
    "store_stack_comparisons",
    "write_store",
]
