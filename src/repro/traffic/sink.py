"""Flow sinks: per-flow QoS measurement at the receiver.

A :class:`FlowSink` is attached to a receiving node's data hook and
computes loss, delay, jitter (RFC 3550 interarrival jitter) and
throughput, plus the largest delivery gap (handoff interruption time).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.net.packet import Packet


class FlowSink:
    """Collects receive-side statistics for one flow id."""

    def __init__(self, flow_id: Optional[str] = None) -> None:
        self.flow_id = flow_id
        self.received = 0
        self.bytes_received = 0
        self.duplicates = 0
        self.out_of_order = 0
        self.delays: list[float] = []
        self.arrival_times: list[float] = []
        self._seen: set[int] = set()
        self._highest_seq = -1
        self._jitter = 0.0
        self._last_transit: Optional[float] = None

    # ------------------------------------------------------------------
    def on_packet(self, packet: Packet, now: float) -> None:
        """Feed one received packet (call from the node's data hook)."""
        if self.flow_id is not None and packet.flow_id != self.flow_id:
            return
        if packet.seq in self._seen:
            self.duplicates += 1
            return
        self._seen.add(packet.seq)
        self.received += 1
        self.bytes_received += packet.size
        if packet.seq < self._highest_seq:
            self.out_of_order += 1
        self._highest_seq = max(self._highest_seq, packet.seq)
        transit = now - packet.created_at
        self.delays.append(transit)
        self.arrival_times.append(now)
        if self._last_transit is not None:
            # RFC 3550 §6.4.1 interarrival jitter estimator.
            deviation = abs(transit - self._last_transit)
            self._jitter += (deviation - self._jitter) / 16.0
        self._last_transit = transit

    def bind(self, sim) -> "callable":
        """A hook suitable for ``node.on_data.append``."""

        def hook(packet: Packet) -> None:
            self.on_packet(packet, sim.now)

        return hook

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def loss_rate(self, sent: int) -> float:
        """Fraction of ``sent`` packets never delivered."""
        if sent <= 0:
            return 0.0
        return max(0.0, 1.0 - self.received / sent)

    def lost(self, sent: int) -> int:
        return max(0, sent - self.received)

    def mean_delay(self) -> float:
        return float(np.mean(self.delays)) if self.delays else float("nan")

    def p95_delay(self) -> float:
        return float(np.percentile(self.delays, 95)) if self.delays else float("nan")

    def jitter(self) -> float:
        return self._jitter

    def throughput_bps(self) -> float:
        if len(self.arrival_times) < 2:
            return 0.0
        span = self.arrival_times[-1] - self.arrival_times[0]
        if span <= 0:
            return 0.0
        return self.bytes_received * 8.0 / span

    def max_gap(self) -> float:
        """Largest silence between consecutive deliveries — the
        observable service interruption during a handoff."""
        if len(self.arrival_times) < 2:
            return 0.0
        arrivals = np.asarray(self.arrival_times)
        return float(np.max(np.diff(arrivals)))

    def missing_sequences(self, sent: int) -> list[int]:
        return [seq for seq in range(sent) if seq not in self._seen]

    def summary(self, sent: Optional[int] = None) -> dict[str, float]:
        result = {
            "received": float(self.received),
            "mean_delay": self.mean_delay(),
            "p95_delay": self.p95_delay(),
            "jitter": self.jitter(),
            "throughput_bps": self.throughput_bps(),
            "max_gap": self.max_gap(),
            "duplicates": float(self.duplicates),
            "out_of_order": float(self.out_of_order),
        }
        if sent is not None:
            result["sent"] = float(sent)
            result["loss_rate"] = self.loss_rate(sent)
        return result
