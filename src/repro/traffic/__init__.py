"""Traffic generation and receive-side measurement."""

from repro.traffic.sink import FlowSink
from repro.traffic.sources import (
    ACK_BYTES,
    CBRSource,
    ElasticSource,
    OnOffSource,
    PoissonSource,
    TrafficSource,
    VBRVideoSource,
    make_ack_hook,
)

__all__ = [
    "ACK_BYTES",
    "CBRSource",
    "ElasticSource",
    "FlowSink",
    "OnOffSource",
    "PoissonSource",
    "TrafficSource",
    "VBRVideoSource",
    "make_ack_hook",
]
