"""Traffic generation and receive-side measurement."""

from repro.traffic.sink import FlowSink
from repro.traffic.sources import (
    CBRSource,
    ElasticSource,
    OnOffSource,
    PoissonSource,
    TrafficSource,
    VBRVideoSource,
)

__all__ = [
    "CBRSource",
    "ElasticSource",
    "FlowSink",
    "OnOffSource",
    "PoissonSource",
    "TrafficSource",
    "VBRVideoSource",
]
