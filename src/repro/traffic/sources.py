"""Traffic sources for the multimedia workloads the paper motivates.

Each source is a process that emits packets through a ``send``
callable (``send(packet) -> bool``); the caller decides whether that
means a CN streaming downlink or a mobile talking uplink.  Sources
stamp ``flow_id``/``seq`` so sinks can compute loss and reordering.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro.net.addressing import IPAddress
from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

SendFn = Callable[[Packet], bool]
_flow_ids = itertools.count(1)

#: Size of the bare ack packets elastic sinks send uplink.
ACK_BYTES = 40


def make_ack_hook(sim, reply: Callable[[Packet], object], flow_id=None):
    """An on-data hook that acks each received data packet via ``reply``.

    The canonical receiver-side wiring for :class:`ElasticSource`: the
    ack echoes the data packet's seq as its payload and travels the real
    uplink (``reply`` is typically ``node.originate``), so feedback pays
    the same path costs as data.  With ``flow_id`` set, packets of other
    flows are ignored — required when several elastic flows share one
    receiving node's hook list.
    """

    def hook(packet: Packet) -> None:
        if flow_id is not None and packet.flow_id != flow_id:
            return
        reply(
            Packet(
                src=packet.dst,
                dst=packet.src,
                size=ACK_BYTES,
                protocol="ack",
                payload=packet.seq,
                flow_id=packet.flow_id,
                seq=packet.seq,
                created_at=sim.now,
            )
        )

    return hook


class TrafficSource:
    """Base class: sequence numbering and bookkeeping."""

    def __init__(
        self,
        sim: "Simulator",
        send: SendFn,
        src: IPAddress,
        dst: IPAddress,
        flow_id: Optional[str] = None,
    ) -> None:
        self.sim = sim
        self._send = send
        self.src = IPAddress(src)
        self.dst = IPAddress(dst)
        self.flow_id = flow_id or f"flow-{next(_flow_ids)}"
        self.packets_sent = 0
        self.bytes_sent = 0
        self._sequence = itertools.count()
        self.process = None

    def start(self) -> "TrafficSource":
        self.process = self.sim.process(self._run(), name=f"src-{self.flow_id}")
        return self

    def _emit(self, size: int) -> bool:
        packet = Packet(
            src=self.src,
            dst=self.dst,
            size=size,
            protocol="data",
            flow_id=self.flow_id,
            seq=next(self._sequence),
            created_at=self.sim.now,
        )
        accepted = self._send(packet)
        if accepted is not False:
            self.packets_sent += 1
            self.bytes_sent += size
        return accepted

    def _run(self):  # pragma: no cover - abstract
        raise NotImplementedError
        yield


class CBRSource(TrafficSource):
    """Constant bit rate: fixed-size packets at a fixed interval.

    The canonical voice/video transport model; ``rate_bps`` and
    ``packet_size`` determine the interval.
    """

    def __init__(
        self,
        sim,
        send,
        src,
        dst,
        rate_bps: float = 64e3,
        packet_size: int = 200,
        duration: Optional[float] = None,
        flow_id: Optional[str] = None,
    ) -> None:
        super().__init__(sim, send, src, dst, flow_id)
        if rate_bps <= 0 or packet_size <= 0:
            raise ValueError("rate and packet size must be positive")
        self.packet_size = packet_size
        self.interval = packet_size * 8.0 / rate_bps
        self.duration = duration

    def _run(self):
        stop_at = None if self.duration is None else self.sim.now + self.duration
        while stop_at is None or self.sim.now < stop_at:
            self._emit(self.packet_size)
            yield self.sim.timeout(self.interval)


class PoissonSource(TrafficSource):
    """Poisson packet arrivals (exponential gaps) — bursty data."""

    def __init__(
        self,
        sim,
        send,
        src,
        dst,
        rng: np.random.Generator,
        mean_rate_pps: float = 50.0,
        packet_size: int = 500,
        duration: Optional[float] = None,
        flow_id: Optional[str] = None,
    ) -> None:
        super().__init__(sim, send, src, dst, flow_id)
        if mean_rate_pps <= 0:
            raise ValueError("rate must be positive")
        self._rng = rng
        self.mean_gap = 1.0 / mean_rate_pps
        self.packet_size = packet_size
        self.duration = duration

    def _run(self):
        stop_at = None if self.duration is None else self.sim.now + self.duration
        while stop_at is None or self.sim.now < stop_at:
            yield self.sim.timeout(float(self._rng.exponential(self.mean_gap)))
            self._emit(self.packet_size)


class OnOffSource(TrafficSource):
    """Exponential on/off voice model: CBR talkspurts, silent gaps."""

    def __init__(
        self,
        sim,
        send,
        src,
        dst,
        rng: np.random.Generator,
        rate_bps: float = 64e3,
        packet_size: int = 200,
        mean_on: float = 1.0,
        mean_off: float = 1.35,
        duration: Optional[float] = None,
        flow_id: Optional[str] = None,
    ) -> None:
        super().__init__(sim, send, src, dst, flow_id)
        self._rng = rng
        self.packet_size = packet_size
        self.interval = packet_size * 8.0 / rate_bps
        self.mean_on = mean_on
        self.mean_off = mean_off
        self.duration = duration

    def _run(self):
        stop_at = None if self.duration is None else self.sim.now + self.duration
        while stop_at is None or self.sim.now < stop_at:
            burst_end = self.sim.now + float(self._rng.exponential(self.mean_on))
            while self.sim.now < burst_end:
                self._emit(self.packet_size)
                yield self.sim.timeout(self.interval)
            yield self.sim.timeout(float(self._rng.exponential(self.mean_off)))


class VBRVideoSource(TrafficSource):
    """Variable-bit-rate video: AR(1)-correlated frame sizes at a fixed
    frame rate, fragmented into MTU-sized packets.

    This approximates MPEG-style rate variation without codec detail;
    QoS behaviour depends on burstiness, which ``burstiness`` controls.
    """

    def __init__(
        self,
        sim,
        send,
        src,
        dst,
        rng: np.random.Generator,
        mean_rate_bps: float = 384e3,
        frame_rate: float = 25.0,
        burstiness: float = 0.5,
        correlation: float = 0.8,
        mtu: int = 1000,
        duration: Optional[float] = None,
        flow_id: Optional[str] = None,
    ) -> None:
        super().__init__(sim, send, src, dst, flow_id)
        if not 0.0 <= correlation < 1.0:
            raise ValueError("correlation must be in [0, 1)")
        if burstiness < 0:
            raise ValueError("burstiness must be non-negative")
        self._rng = rng
        self.frame_interval = 1.0 / frame_rate
        self.mean_frame_bytes = mean_rate_bps / frame_rate / 8.0
        self.burstiness = burstiness
        self.correlation = correlation
        self.mtu = mtu
        self.duration = duration
        self._state = 0.0
        self.frames_sent = 0

    def _next_frame_bytes(self) -> int:
        rho = self.correlation
        noise = float(self._rng.normal(0.0, 1.0))
        self._state = rho * self._state + np.sqrt(1 - rho * rho) * noise
        factor = max(0.1, 1.0 + self.burstiness * self._state)
        return max(64, int(self.mean_frame_bytes * factor))

    def _run(self):
        stop_at = None if self.duration is None else self.sim.now + self.duration
        while stop_at is None or self.sim.now < stop_at:
            frame_bytes = self._next_frame_bytes()
            self.frames_sent += 1
            remaining = frame_bytes
            while remaining > 0:
                fragment = min(remaining, self.mtu)
                self._emit(fragment)
                remaining -= fragment
            yield self.sim.timeout(self.frame_interval)


class ElasticSource(TrafficSource):
    """A greedy AIMD source: a coarse TCP stand-in.

    Sends a window of packets, waits for sink feedback via
    :meth:`acknowledge`, grows additively on clean windows and halves
    on any loss.  Good enough to show handoff-loss -> throughput-dip
    dynamics without a full TCP implementation.
    """

    def __init__(
        self,
        sim,
        send,
        src,
        dst,
        packet_size: int = 1000,
        initial_window: int = 2,
        max_window: int = 64,
        feedback_timeout: float = 0.5,
        duration: Optional[float] = None,
        flow_id: Optional[str] = None,
    ) -> None:
        super().__init__(sim, send, src, dst, flow_id)
        self.packet_size = packet_size
        self.window = float(initial_window)
        self.max_window = max_window
        self.feedback_timeout = feedback_timeout
        self.duration = duration
        self._acknowledged: set[int] = set()
        self._feedback_event = None
        self.windows_clean = 0
        self.windows_lossy = 0

    def acknowledge(self, seq: int) -> None:
        """Sink-side callback: mark ``seq`` received."""
        self._acknowledged.add(seq)
        if self._feedback_event is not None and not self._feedback_event.triggered:
            self._feedback_event.succeed()

    def _run(self):
        stop_at = None if self.duration is None else self.sim.now + self.duration
        next_seq = 0
        while stop_at is None or self.sim.now < stop_at:
            burst = max(1, int(self.window))
            sent = []
            for _ in range(burst):
                self._emit(self.packet_size)
                sent.append(next_seq)
                next_seq += 1
            # Wait for the window to be acknowledged (or time out).
            deadline = self.sim.timeout(self.feedback_timeout)
            while not all(seq in self._acknowledged for seq in sent):
                self._feedback_event = self.sim.event()
                outcome = yield self.sim.any_of([self._feedback_event, deadline])
                if deadline in outcome:
                    break
            if all(seq in self._acknowledged for seq in sent):
                self.window = min(self.window + 1.0, self.max_window)
                self.windows_clean += 1
            else:
                self.window = max(1.0, self.window / 2.0)
                self.windows_lossy += 1
            yield self.sim.timeout(0.01)
