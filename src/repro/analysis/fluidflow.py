"""Fluid-flow mobility analysis.

The mobility-management literature the paper builds on (e.g. its
reference [2], Akyildiz et al. 1999) sizes location-update and handoff
signalling with the fluid-flow model: for users of density ``rho``
moving at mean speed ``v`` with uniformly distributed direction, the
rate of crossings out of a region with perimeter ``L`` is

    R = rho * v * L / pi

Equivalently, one mobile inside a region of area ``A`` crosses its
boundary at rate ``v * L / (pi * A)``.  These predictions are used to
validate the simulated handoff rates (see
``tests/test_analysis_validation.py``).
"""

from __future__ import annotations

import math


def boundary_crossing_rate(
    speed: float, perimeter: float, area: float, density: float = None
) -> float:
    """Crossings per second out of a convex region.

    With ``density`` given: aggregate crossing rate for the population.
    Without: the per-mobile rate (density = 1 mobile / ``area``).
    """
    if speed < 0 or perimeter <= 0 or area <= 0:
        raise ValueError("speed >= 0, perimeter > 0, area > 0 required")
    if density is None:
        density = 1.0 / area
    return density * speed * perimeter / math.pi


def circular_cell_crossing_rate(speed: float, radius: float) -> float:
    """Per-mobile boundary crossing rate for a circular cell the mobile
    lives in (fluid flow): ``2 v / (pi r)``."""
    if radius <= 0:
        raise ValueError("radius must be positive")
    return boundary_crossing_rate(
        speed, perimeter=2.0 * math.pi * radius, area=math.pi * radius * radius
    )


def mean_cell_dwell_time(speed: float, radius: float) -> float:
    """Expected sojourn time in a circular cell for a mobile *entering*
    at the boundary (isotropic flux): ``pi r / (2 v)``."""
    if speed <= 0:
        raise ValueError("speed must be positive")
    return 1.0 / circular_cell_crossing_rate(speed, radius)


def mean_residual_dwell_time(speed: float, radius: float) -> float:
    """Expected time to exit a circular cell from a *uniform interior*
    start with uniform direction: ``8 r / (3 pi v)``.

    This is the relevant quantity for a mobile that powers up (or goes
    active) somewhere inside the cell, as opposed to one that just
    crossed in; the mean exit chord from a uniform interior point is
    ``(8 / 3 pi) r``.
    """
    if speed <= 0:
        raise ValueError("speed must be positive")
    if radius <= 0:
        raise ValueError("radius must be positive")
    return 8.0 * radius / (3.0 * math.pi * speed)


def handoff_rate_linear_cells(speed: float, cell_diameter: float) -> float:
    """Handoffs per second for 1-D (highway) movement through a row of
    cells of the given diameter: ``v / d``."""
    if cell_diameter <= 0:
        raise ValueError("cell_diameter must be positive")
    return speed / cell_diameter


def location_update_cost(
    crossing_rate: float, hops_per_update: int, update_bytes: int
) -> float:
    """Mean signalling load in bytes/s implied by a crossing rate."""
    if crossing_rate < 0 or hops_per_update < 0 or update_bytes < 0:
        raise ValueError("all inputs must be non-negative")
    return crossing_rate * hops_per_update * update_bytes
