"""Classic teletraffic formulas used to validate the simulator.

The channel pools in this reproduction are loss systems (blocked calls
cleared), so their blocking probability must match Erlang B; the
guard-channel variant has its own well-known recursion.  Benchmarks
compare simulated blocking against these closed forms.
"""

from __future__ import annotations

def erlang_b(servers: int, offered_load: float) -> float:
    """Erlang-B blocking probability.

    ``offered_load`` is in Erlangs (arrival rate x mean holding time).
    Uses the numerically stable recursion
    ``B(0)=1;  B(c) = a B(c-1) / (c + a B(c-1))``.
    """
    if servers < 0:
        raise ValueError("servers must be non-negative")
    if offered_load < 0:
        raise ValueError("offered load must be non-negative")
    if offered_load == 0:
        return 0.0
    blocking = 1.0
    for c in range(1, servers + 1):
        blocking = offered_load * blocking / (c + offered_load * blocking)
    return blocking


def erlang_c(servers: int, offered_load: float) -> float:
    """Erlang-C probability of queueing (delayed-call system)."""
    if offered_load >= servers:
        return 1.0
    b = erlang_b(servers, offered_load)
    rho = offered_load / servers
    return b / (1.0 - rho + rho * b)


def guard_channel_blocking(
    capacity: int,
    guard: int,
    new_call_load: float,
    handoff_load: float,
) -> tuple[float, float]:
    """Blocking probabilities (new calls, handoffs) with guard channels.

    Standard 1-D birth-death model: total arrival rate is
    ``lambda_n + lambda_h`` below the guard threshold and ``lambda_h``
    above it; unit mean holding time (loads already in Erlangs).

    Returns ``(P_block_new, P_drop_handoff)``.
    """
    if not 0 <= guard < capacity:
        raise ValueError("guard must be in [0, capacity)")
    threshold = capacity - guard
    total = new_call_load + handoff_load

    # Unnormalized state probabilities pi[k] for k channels busy.
    pi = [1.0]
    for k in range(1, capacity + 1):
        arrival = total if k - 1 < threshold else handoff_load
        pi.append(pi[-1] * arrival / k)
    norm = sum(pi)
    pi = [p / norm for p in pi]

    p_block_new = sum(pi[threshold:])
    p_drop_handoff = pi[capacity]
    return p_block_new, p_drop_handoff
