"""Closed-form teletraffic and mobility models used to validate the
simulator (Erlang blocking, guard channels, fluid-flow crossing rates)."""

from repro.analysis.erlang import erlang_b, erlang_c, guard_channel_blocking
from repro.analysis.fluidflow import (
    boundary_crossing_rate,
    circular_cell_crossing_rate,
    handoff_rate_linear_cells,
    location_update_cost,
    mean_cell_dwell_time,
    mean_residual_dwell_time,
)

__all__ = [
    "boundary_crossing_rate",
    "circular_cell_crossing_rate",
    "erlang_b",
    "erlang_c",
    "guard_channel_blocking",
    "handoff_rate_linear_cells",
    "location_update_cost",
    "mean_cell_dwell_time",
    "mean_residual_dwell_time",
]
