"""Discrete-event simulation kernel.

Public surface::

    from repro.sim import Simulator, Interrupt, Resource, Store

    sim = Simulator()
    sim.process(my_generator(sim))
    sim.run(until=100.0)
"""

from repro.sim.errors import EmptySchedule, Interrupt, SimulationError
from repro.sim.events import (
    NORMAL,
    URGENT,
    AllOf,
    AnyOf,
    Condition,
    ConditionValue,
    Event,
    Process,
    Timeout,
)
from repro.sim.kernel import Simulator
from repro.sim.monitor import Counter, Monitor, Series, TimeWeightedGauge
from repro.sim.resources import GuardedChannelPool, Preempted, Request, Resource
from repro.sim.rng import RandomStreams
from repro.sim.stores import FilterStore, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "ConditionValue",
    "Counter",
    "EmptySchedule",
    "Event",
    "FilterStore",
    "GuardedChannelPool",
    "Interrupt",
    "Monitor",
    "NORMAL",
    "Preempted",
    "Process",
    "RandomStreams",
    "Request",
    "Resource",
    "Series",
    "SimulationError",
    "Simulator",
    "Store",
    "TimeWeightedGauge",
    "Timeout",
    "URGENT",
]
