"""The discrete-event simulator core.

:class:`Simulator` owns the virtual clock and the event queue.  It is the
only stateful singleton in a simulation; every entity (link, base
station, protocol engine) holds a reference to it and schedules work
through it.

Example
-------
>>> sim = Simulator()
>>> def pinger(sim, log):
...     while sim.now < 3:
...         yield sim.timeout(1.0)
...         log.append(sim.now)
>>> log = []
>>> _ = sim.process(pinger(sim, log))
>>> sim.run()
>>> log
[1.0, 2.0, 3.0]
"""

from __future__ import annotations

from heapq import heappop, heappush
from itertools import count
from typing import Iterable, Optional, Union

from repro.sim.errors import EmptySchedule, SimulationError, StopSimulation
from repro.sim.events import (
    NORMAL,
    URGENT,
    AllOf,
    AnyOf,
    Event,
    Process,
    ProcessGenerator,
    Timeout,
)

Until = Union[None, float, int, Event]


class _Callback(Event):
    """A pooled fire-and-forget callback entry (kernel-internal).

    :meth:`Simulator.call_later` uses these instead of a full
    :class:`Timeout` + closure: the dispatch loop special-cases them
    (call ``fn(*args)``, recycle the object into the simulator's free
    list) so the hottest scheduling pattern in the code base — a link
    delivering a packet, a channel finishing a serialization — pays no
    event allocation once the pool is warm.  Never exposed to callers;
    anything that needs to *wait* on scheduled work goes through
    :meth:`Simulator.schedule`, which still returns a real event.
    """

    __slots__ = ("fn", "args")


class Simulator:
    """A minimal but complete discrete-event simulation kernel."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = count()
        self._active_process: Optional[Process] = None
        #: Recycled :class:`_Callback` instances (object pooling).
        self._callback_pool: list[_Callback] = []
        #: True while :meth:`run`'s dispatch loop is on the stack.
        self._running = False
        #: Total events dispatched by :meth:`run`/:meth:`step` so far.
        self.events_processed = 0

    # ------------------------------------------------------------------
    # Clock and scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    def _enqueue(self, event: Event, delay: float, priority: int = NORMAL) -> None:
        """Place a triggered event on the queue ``delay`` units from now."""
        heappush(self._queue, (self._now + delay, priority, next(self._eid), event))

    def schedule(self, delay: float, callback, *args) -> Event:
        """Run ``callback(*args)`` after ``delay`` time units.

        Returns the underlying :class:`Timeout` event, so callers may also
        wait on it.  This is the lightweight alternative to spawning a
        process for fire-and-forget work.
        """
        event = Timeout(self, delay)
        event.callbacks.append(lambda _event: callback(*args))
        return event

    def call_later(self, delay: float, fn, *args) -> None:
        """Run ``fn(*args)`` after ``delay`` time units (no return event).

        The fast fire-and-forget path: identical queue ordering to
        :meth:`schedule` (one event-id per call, NORMAL priority) but
        the queue entry is a pooled :class:`_Callback` the dispatch
        loop recycles, so hot paths allocate nothing once warm.  Use
        :meth:`schedule` instead when the caller needs an event to
        wait on.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        pool = self._callback_pool
        if pool:
            event = pool.pop()
        else:
            event = _Callback.__new__(_Callback)
            event.sim = self
            event.callbacks = None
            event._value = None
            event._ok = True
            event._defused = False
        event.fn = fn
        event.args = args
        heappush(self._queue, (self._now + delay, NORMAL, next(self._eid), event))

    # ------------------------------------------------------------------
    # Event factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a new untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create an event that triggers ``delay`` units in the future."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: Optional[str] = None) -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers when all of ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers when any of ``events`` has triggered."""
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event from the queue."""
        try:
            when, _priority, _eid, event = heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None
        self._now = when
        self.events_processed += 1

        if event.__class__ is _Callback:
            fn, args = event.fn, event.args
            event.fn = event.args = None
            self._callback_pool.append(event)
            fn(*args)
            return

        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # Nobody handled a failed event: surface the error loudly.
            exc = event._value
            raise exc

    def run(self, until: Until = None) -> object:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the event queue is exhausted;
        * a number — inclusive stop time: process every event scheduled
          at ``t <= until`` (including events at exactly ``until``),
          then set ``now`` to it;
        * an :class:`Event` — run until that event has been processed and
          return its value (raises :class:`SimulationError` if the queue
          empties first).

        ``run`` is not re-entrant: calling it from inside a dispatched
        callback or process raises :class:`RuntimeError`.  A nested loop
        would drain events past the outer loop's ``until`` bound and
        then rewind the clock when the outer call returned — silently
        corrupting event order.  Drivers that interleave several
        bounded advances (e.g. the shard driver) call ``run`` serially
        from the top level instead.
        """
        if self._running:
            raise RuntimeError(
                "Simulator.run() is not re-entrant; it was called from "
                "inside an event dispatched by an outer run()/step()"
            )
        stop_at: Optional[float] = None
        if until is not None:
            if isinstance(until, Event):
                if until.callbacks is None:
                    # Already processed.
                    return until._value
                until.callbacks.append(self._stop_on_event)
            else:
                stop_at = float(until)
                if stop_at < self._now:
                    raise ValueError(
                        f"until ({stop_at}) must not be before now ({self._now})"
                    )

        # The dispatch loop is step() inlined with everything hot bound
        # to locals — this function dominates every benchmark, so the
        # per-event overhead (method dispatch, try/except, attribute
        # loads) is paid here, once, instead of per event.
        queue = self._queue
        pool = self._callback_pool
        pop = heappop
        processed = 0
        self._running = True
        try:
            while queue:
                if stop_at is not None and queue[0][0] > stop_at:
                    break
                when, _priority, _eid, event = pop(queue)
                self._now = when
                processed += 1
                if event.__class__ is _Callback:
                    fn, args = event.fn, event.args
                    event.fn = event.args = None
                    pool.append(event)
                    fn(*args)
                    continue
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    # Nobody handled a failed event: surface it loudly.
                    raise event._value
        except StopSimulation as stop:
            return stop.value
        finally:
            self._running = False
            self.events_processed += processed
        if isinstance(until, Event):
            raise SimulationError(
                "event queue ran empty before the target event triggered"
            )
        if stop_at is not None:
            self._now = stop_at
        return None

    @staticmethod
    def _stop_on_event(event: Event) -> None:
        if not event._ok:
            event._defused = True
            raise event._value
        raise StopSimulation(event._value)


__all__ = ["Simulator", "Until", "NORMAL", "URGENT"]
