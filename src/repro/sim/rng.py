"""Deterministic, named random-number streams.

Every stochastic component of a simulation draws from its own named
stream so that (a) runs are reproducible given a root seed and (b)
changing one component's draw pattern does not perturb the others —
the standard variance-reduction discipline for simulation studies.
"""

from __future__ import annotations

import zlib

import numpy as np


def _stable_hash(name: str) -> int:
    """A hash of ``name`` that is stable across interpreter runs."""
    return zlib.crc32(name.encode("utf-8"))


class RandomStreams:
    """A factory of independent, reproducible random generators."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name`` (created on first use)."""
        generator = self._streams.get(name)
        if generator is None:
            generator = np.random.default_rng([self.root_seed, _stable_hash(name)])
            self._streams[name] = generator
        return generator

    def spawn(self, name: str) -> "RandomStreams":
        """Derive an independent sub-factory (for nested components)."""
        return RandomStreams(root_seed=self.root_seed ^ _stable_hash(name))

    # Convenience draws -------------------------------------------------
    def uniform(self, name: str, low: float = 0.0, high: float = 1.0) -> float:
        return float(self.stream(name).uniform(low, high))

    def exponential(self, name: str, mean: float) -> float:
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        return float(self.stream(name).exponential(mean))

    def normal(self, name: str, mean: float = 0.0, std: float = 1.0) -> float:
        return float(self.stream(name).normal(mean, std))

    def integers(self, name: str, low: int, high: int) -> int:
        """Uniform integer in ``[low, high)``."""
        return int(self.stream(name).integers(low, high))

    def choice(self, name: str, options):
        index = int(self.stream(name).integers(0, len(options)))
        return options[index]

    def bernoulli(self, name: str, probability: float) -> bool:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        return bool(self.stream(name).random() < probability)
