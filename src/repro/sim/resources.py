"""Shared-resource primitives: capacity-limited resources with priority
queueing and optional preemption.

These model radio channels, processing slots and any other contended
facility.  Usage follows the familiar request/release protocol::

    channel = Resource(sim, capacity=8)

    def caller(sim, channel):
        request = channel.request()
        yield request
        try:
            yield sim.timeout(call_duration)
        finally:
            channel.release(request)

Requests may also be used as context managers so that the release is
guaranteed::

    with channel.request() as request:
        yield request
        yield sim.timeout(call_duration)
"""

from __future__ import annotations

from heapq import heappop, heappush
from itertools import count
from typing import TYPE_CHECKING, Optional

from repro.sim.events import Event, Process

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class Preempted:
    """Cause object delivered with the Interrupt when a user is preempted."""

    __slots__ = ("by", "usage_since")

    def __init__(self, by: "Request", usage_since: float) -> None:
        #: The request that preempted us.
        self.by = by
        #: Simulation time at which the preempted user acquired the resource.
        self.usage_since = usage_since

    def __repr__(self) -> str:
        return f"<Preempted by={self.by!r} since={self.usage_since}>"


class Request(Event):
    """A pending or granted claim on a :class:`Resource` slot."""

    __slots__ = ("resource", "priority", "preempt", "time", "process", "usage_since")

    def __init__(
        self, resource: "Resource", priority: int = 0, preempt: bool = False
    ) -> None:
        super().__init__(resource.sim)
        self.resource = resource
        #: Numerically smaller priorities are served first.
        self.priority = priority
        self.preempt = preempt
        self.time = resource.sim.now
        #: The process that issued the request (None outside a process).
        self.process: Optional[Process] = resource.sim.active_process
        #: When the request was granted, for preemption bookkeeping.
        self.usage_since: Optional[float] = None
        resource._do_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.resource.release(self)

    # Sort key for the wait queue.
    def _key(self) -> tuple:
        return (self.priority, self.time, not self.preempt)


class Resource:
    """A capacity-limited resource with priority queueing.

    ``capacity`` slots may be held simultaneously.  Waiting requests are
    served in (priority, arrival-time) order.  With ``preemptive=True``,
    a request carrying ``preempt=True`` evicts the lowest-priority
    current user if that user's priority is strictly worse.
    """

    def __init__(self, sim: "Simulator", capacity: int = 1, preemptive: bool = False):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self._capacity = capacity
        self._preemptive = preemptive
        self.users: list[Request] = []
        self._queue: list[tuple[tuple, int, Request]] = []
        self._tiebreak = count()

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    @property
    def free(self) -> int:
        """Number of slots currently available."""
        return self._capacity - len(self.users)

    @property
    def queued(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    # ------------------------------------------------------------------
    def request(self, priority: int = 0, preempt: bool = False) -> Request:
        """Claim a slot; the returned event triggers once granted."""
        if preempt and not self._preemptive:
            raise ValueError("preempt=True on a non-preemptive resource")
        return Request(self, priority=priority, preempt=preempt)

    def release(self, request: Request) -> None:
        """Return a slot (or cancel a waiting request)."""
        if request in self.users:
            self.users.remove(request)
            self._grant_next()
            return
        # Cancelling a queued request: lazily mark it; it is skipped when
        # popped.  (Removal from the middle of a heap is O(n).)
        request.resource = None  # type: ignore[assignment]

    def _do_request(self, request: Request) -> None:
        if len(self.users) < self._capacity:
            self._grant(request)
            return
        if self._preemptive and request.preempt:
            victim = self._preemption_victim(request)
            if victim is not None:
                self.users.remove(victim)
                if victim.process is not None and victim.process.is_alive:
                    victim.process.interrupt(
                        Preempted(by=request, usage_since=victim.usage_since or 0.0)
                    )
                self._grant(request)
                return
        heappush(self._queue, (request._key(), next(self._tiebreak), request))

    def _preemption_victim(self, request: Request) -> Optional[Request]:
        """The current user to evict for ``request``, or None."""
        if not self.users:
            return None
        victim = max(self.users, key=lambda user: (user.priority, user.time))
        if victim.priority > request.priority:
            return victim
        return None

    def _grant(self, request: Request) -> None:
        request.usage_since = self.sim.now
        self.users.append(request)
        request.succeed(request)

    def _grant_next(self) -> None:
        while self._queue and len(self.users) < self._capacity:
            _key, _tb, request = heappop(self._queue)
            if request.resource is None or request.triggered:
                continue  # cancelled
            self._grant(request)


class GuardedChannelPool(Resource):
    """A channel pool with *guard channels* reserved for handoffs.

    A classic cellular admission policy: of ``capacity`` channels, the
    last ``guard`` may only be taken by handoff requests.  New calls are
    blocked once ``capacity - guard`` channels are busy; handoffs are
    blocked only when every channel is busy.  This is the "resources of
    BS" decision factor in the paper's handoff strategy (§3.2).
    """

    def __init__(self, sim: "Simulator", capacity: int, guard: int = 0) -> None:
        if guard < 0 or guard >= capacity:
            raise ValueError(f"guard must be in [0, capacity), got {guard}")
        super().__init__(sim, capacity=capacity)
        self.guard = guard

    def admit_new_call(self) -> Optional[Request]:
        """Try to admit a new call; returns a granted request or ``None``."""
        if len(self.users) >= self._capacity - self.guard:
            return None
        request = Request(self)
        return request if request.triggered else None

    def admit_handoff(self) -> Optional[Request]:
        """Try to admit a handoff; returns a granted request or ``None``."""
        if len(self.users) >= self._capacity:
            return None
        request = Request(self)
        return request if request.triggered else None
