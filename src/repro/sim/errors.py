"""Exception types used by the discrete-event simulation kernel."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all kernel-level errors."""


class EmptySchedule(SimulationError):
    """Raised internally when the event queue runs dry before ``until``."""


class StopSimulation(SimulationError):
    """Raised internally to stop :meth:`Simulator.run` at a target event."""

    def __init__(self, value: object = None) -> None:
        super().__init__(value)
        self.value = value


class Interrupt(SimulationError):
    """Raised inside a process that has been interrupted.

    The interrupting party supplies an arbitrary ``cause`` that the
    interrupted process can inspect::

        try:
            yield sim.timeout(10.0)
        except Interrupt as interrupt:
            handle(interrupt.cause)
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> object:
        """Whatever object the interrupter passed to ``Process.interrupt``."""
        return self.args[0]
