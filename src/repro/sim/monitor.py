"""Measurement probes: counters, gauges and time series.

Monitors are deliberately dumb containers; statistical reduction lives
in :mod:`repro.metrics.stats` so that raw samples stay available for
tests and for confidence-interval computation across replications.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only move forward")
        self.value += amount

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Series:
    """A time series of (time, value) samples."""

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def record(self, time: float, value: float) -> None:
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def mean(self) -> float:
        return float(np.mean(self.values)) if self.values else float("nan")

    def last(self) -> float:
        return self.values[-1] if self.values else float("nan")

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.times), np.asarray(self.values)


class TimeWeightedGauge:
    """A level (e.g. queue length) integrated over time.

    The time average is the integral of the level divided by the
    observation window — the standard estimator for time-persistent
    statistics.
    """

    __slots__ = ("name", "_sim", "_level", "_last_change", "_area", "_start")

    def __init__(self, sim: "Simulator", name: str, initial: float = 0.0) -> None:
        self._sim = sim
        self.name = name
        self._level = initial
        self._last_change = sim.now
        self._start = sim.now
        self._area = 0.0

    @property
    def level(self) -> float:
        return self._level

    def set(self, level: float) -> None:
        now = self._sim.now
        self._area += self._level * (now - self._last_change)
        self._level = level
        self._last_change = now

    def adjust(self, delta: float) -> None:
        self.set(self._level + delta)

    def time_average(self) -> float:
        now = self._sim.now
        elapsed = now - self._start
        if elapsed <= 0:
            return self._level
        area = self._area + self._level * (now - self._last_change)
        return area / elapsed


class Monitor:
    """A namespace of named counters, gauges and series for one run.

    Lookup methods do a single dict probe (``.get`` + create-on-miss)
    because probes sit on per-packet paths in large runs.
    """

    __slots__ = ("_sim", "counters", "series", "gauges")

    def __init__(self, sim: Optional["Simulator"] = None) -> None:
        self._sim = sim
        self.counters: dict[str, Counter] = {}
        self.series: dict[str, Series] = {}
        self.gauges: dict[str, TimeWeightedGauge] = {}

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def count(self, name: str, amount: int = 1) -> None:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        counter.increment(amount)

    def get_count(self, name: str) -> int:
        counter = self.counters.get(name)
        return counter.value if counter else 0

    def timeseries(self, name: str) -> Series:
        series = self.series.get(name)
        if series is None:
            series = self.series[name] = Series(name)
        return series

    def record(self, name: str, time: float, value: float) -> None:
        series = self.series.get(name)
        if series is None:
            series = self.series[name] = Series(name)
        series.times.append(time)
        series.values.append(value)

    def gauge(self, name: str, initial: float = 0.0) -> TimeWeightedGauge:
        gauge = self.gauges.get(name)
        if gauge is None:
            if self._sim is None:
                raise ValueError("gauges require a Monitor bound to a Simulator")
            gauge = self.gauges[name] = TimeWeightedGauge(self._sim, name, initial)
        return gauge

    def snapshot(self) -> dict[str, float]:
        """A flat dict of every counter value and gauge time-average."""
        result: dict[str, float] = {}
        for name, counter in self.counters.items():
            result[f"count.{name}"] = counter.value
        for name, gauge in self.gauges.items():
            result[f"gauge.{name}"] = gauge.time_average()
        for name, series in self.series.items():
            result[f"series.{name}.mean"] = series.mean()
        return result
