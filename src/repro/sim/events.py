"""Core event and process machinery for the simulation kernel.

The design follows the classic generator-based discrete-event pattern:
an :class:`Event` is a one-shot occurrence with a value; a
:class:`Process` wraps a generator that ``yield``\\ s events and is
resumed when the yielded event is processed.  Composite conditions
(:class:`AnyOf` / :class:`AllOf`) make it easy to wait on several events
at once.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Callable, Generator, Iterable, Optional

from repro.sim.errors import Interrupt

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.kernel import Simulator

#: Scheduling priorities.  Lower value runs first at equal times.
URGENT = 0
NORMAL = 1

#: Sentinel stored in ``Event._value`` while the event is untriggered.
_PENDING = object()

EventCallback = Callable[["Event"], None]
ProcessGenerator = Generator["Event", object, object]


class Event:
    """A one-shot simulation event.

    An event starts *pending*; it becomes *triggered* once a value (or an
    exception) is attached and it is placed on the simulator's queue; it
    becomes *processed* once the simulator has popped it and run its
    callbacks.  Processes waiting on the event are resumed at that point.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        #: Callables invoked (in order) when the event is processed.
        self.callbacks: Optional[list[EventCallback]] = []
        self._value: object = _PENDING
        self._ok: bool = True
        self._defused: bool = False

    def __repr__(self) -> str:
        state = (
            "processed"
            if self.processed
            else "triggered"
            if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"

    @property
    def triggered(self) -> bool:
        """True once a value has been attached to this event."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run (the event is in the past)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded; only meaningful once triggered."""
        if not self.triggered:
            raise AttributeError("event is not yet triggered")
        return self._ok

    @property
    def value(self) -> object:
        """The event's value (or exception instance for failed events)."""
        if self._value is _PENDING:
            raise AttributeError("event is not yet triggered")
        return self._value

    @property
    def defused(self) -> bool:
        """True if a failed event's exception has been handled."""
        return self._defused

    @defused.setter
    def defused(self, value: bool) -> None:
        self._defused = bool(value)

    def succeed(self, value: object = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value`` at the current time."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.sim._enqueue(self, delay=0.0, priority=priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception.

        Any process waiting on this event will have ``exception`` thrown
        into it.  If nothing is waiting, the simulator re-raises the
        exception to keep errors from passing silently.
        """
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.sim._enqueue(self, delay=0.0, priority=priority)
        return self


class Timeout(Event):
    """An event that triggers itself ``delay`` time units in the future."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: object = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Event.__init__ and Simulator._enqueue inlined: Timeout is the
        # highest-churn event type (every process tick allocates one),
        # so it pays no double-initialization or call overhead.
        self.sim = sim
        self.callbacks = []
        self.delay = delay
        self._ok = True
        self._value = value
        self._defused = False
        heappush(sim._queue, (sim._now + delay, NORMAL, next(sim._eid), self))

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay} at {id(self):#x}>"


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process") -> None:
        # Flattened like Timeout.__init__ (one heap entry per process
        # start; high-churn in scenario builders spawning thousands).
        self.sim = sim
        self.callbacks = [process._resume]
        self._value = None
        self._ok = True
        self._defused = False
        heappush(sim._queue, (sim._now, URGENT, next(sim._eid), self))


class _Interruption(Event):
    """Internal event that delivers an :class:`Interrupt` to a process."""

    __slots__ = ("process",)

    def __init__(self, process: "Process", cause: object) -> None:
        super().__init__(process.sim)
        if process.processed:
            raise RuntimeError(f"{process!r} has terminated and cannot be interrupted")
        if process is process.sim.active_process:
            raise RuntimeError("a process is not allowed to interrupt itself")
        self.process = process
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self.callbacks.append(self._deliver)
        process.sim._enqueue(self, delay=0.0, priority=URGENT)

    def _deliver(self, event: "Event") -> None:
        process = self.process
        if process.processed or process._target is None:
            # Terminated (or never started waiting) in the meantime: the
            # interrupt is moot and silently dropped.
            return
        # Detach the process from whatever it was waiting on, then resume
        # it with the Interrupt exception.
        if process._target.callbacks is not None:
            try:
                process._target.callbacks.remove(process._resume)
            except ValueError:
                pass
        process._resume(self)


class Process(Event):
    """Wraps a generator and drives it through the simulation.

    The process itself is an event: it triggers with the generator's
    return value when the generator finishes (or fails with the escaping
    exception).  This allows processes to wait for each other simply by
    yielding the other process.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        sim: "Simulator",
        generator: ProcessGenerator,
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(sim)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        Initialize(sim, self)

    def __repr__(self) -> str:
        return f"<Process {self.name!r} at {id(self):#x}>"

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not terminated."""
        return self._value is _PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting for."""
        return self._target

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process as soon as possible."""
        _Interruption(self, cause)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        sim = self.sim
        sim._active_process = self
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    # The exception is being handed to a process; mark it
                    # defused so the kernel does not crash on it as well.
                    event._defused = True
                    exc = event._value
                    if not isinstance(exc, BaseException):  # pragma: no cover
                        raise TypeError(f"{exc!r} is not an exception")
                    next_event = self._generator.throw(exc)
            except StopIteration as stop:
                self._target = None
                sim._active_process = None
                self.succeed(stop.value)
                return
            except BaseException as error:
                self._target = None
                sim._active_process = None
                self.fail(error)
                return

            if not isinstance(next_event, Event):
                self._target = None
                sim._active_process = None
                message = f"process {self.name!r} yielded a non-event: {next_event!r}"
                self.fail(RuntimeError(message))
                return
            if next_event.sim is not sim:
                self._target = None
                sim._active_process = None
                self.fail(RuntimeError("yielded an event from a different simulator"))
                return

            if next_event.callbacks is None:
                # Already processed: resume immediately with its outcome.
                event = next_event
                continue
            next_event.callbacks.append(self._resume)
            self._target = next_event
            sim._active_process = None
            return


class ConditionValue:
    """Ordered mapping of the sub-events that triggered a condition."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[Event] = []

    def __getitem__(self, event: Event) -> object:
        if event not in self.events:
            raise KeyError(repr(event))
        return event._value

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"<ConditionValue {self.todict()!r}>"

    def todict(self) -> dict[Event, object]:
        return {event: event._value for event in self.events}


class Condition(Event):
    """An event that triggers when ``evaluate(events, count)`` is true.

    ``count`` is the number of sub-events processed so far.  Failures of
    any sub-event propagate immediately to the condition.
    """

    __slots__ = ("_events", "_count", "_evaluate")

    def __init__(
        self,
        sim: "Simulator",
        evaluate: Callable[[list[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(sim)
        self._events = list(events)
        self._count = 0
        self._evaluate = evaluate

        for event in self._events:
            if event.sim is not sim:
                raise ValueError("all events must belong to the same simulator")

        # Evaluate immediately for already-processed events so a condition
        # over past events triggers without waiting.
        if not self._events and not self.triggered:
            self.succeed(ConditionValue())
            return
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _build_value(self) -> ConditionValue:
        value = ConditionValue()
        for event in self._events:
            # Only events whose callbacks have run are in the past; a
            # Timeout is "triggered" at creation but not yet occurred.
            if event.callbacks is None and event._ok:
                value.events.append(event)
        return value

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._build_value())


def all_events(events: list[Event], count: int) -> bool:
    """Evaluator for :class:`AllOf`: every sub-event has been processed."""
    return count == len(events)


def any_events(events: list[Event], count: int) -> bool:
    """Evaluator for :class:`AnyOf`: at least one sub-event processed."""
    return count > 0 or not events


class AllOf(Condition):
    """Condition that triggers once *all* of ``events`` have triggered."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim, all_events, events)


class AnyOf(Condition):
    """Condition that triggers once *any* of ``events`` has triggered."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim, any_events, events)
