"""Producer/consumer stores for passing objects between processes.

A :class:`Store` is an unordered buffer with blocking ``put``/``get``;
:class:`FilterStore` adds predicate-based retrieval.  These model
packet queues, mailboxes and handoff buffers.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Optional

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class StorePut(Event):
    """Triggered once the item has been accepted by the store."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: object) -> None:
        super().__init__(store.sim)
        self.item = item
        store._do_put(self)


class StoreGet(Event):
    """Triggered with the retrieved item as its value."""

    __slots__ = ("filter",)

    def __init__(
        self, store: "Store", item_filter: Optional[Callable[[object], bool]] = None
    ) -> None:
        super().__init__(store.sim)
        self.filter = item_filter
        store._do_get(self)

    def cancel(self) -> None:
        """Withdraw an unfulfilled get request."""
        self.filter = _never


def _never(_item: object) -> bool:
    return False


class Store:
    """A FIFO buffer of Python objects with optional finite capacity."""

    def __init__(self, sim: "Simulator", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.items: deque = deque()
        self._putters: deque[StorePut] = deque()
        self._getters: deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    # ------------------------------------------------------------------
    def put(self, item: object) -> StorePut:
        """Offer ``item``; the event triggers when the store accepts it."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Request one item; the event triggers with the item as value."""
        return StoreGet(self)

    def try_put(self, item: object) -> bool:
        """Non-blocking put; returns False if the store is full."""
        if len(self.items) >= self.capacity and not self._getters:
            return False
        self.put(item)
        return True

    def try_get(self) -> Optional[object]:
        """Non-blocking get; returns None if the store is empty."""
        if not self.items:
            return None
        item = self.items.popleft()
        self._serve_putters()
        return item

    # ------------------------------------------------------------------
    def _do_put(self, event: StorePut) -> None:
        if len(self.items) < self.capacity:
            self.items.append(event.item)
            event.succeed()
            self._serve_getters()
        else:
            self._putters.append(event)

    def _do_get(self, event: StoreGet) -> None:
        item = self._match(event)
        if item is not _NO_MATCH:
            event.succeed(item)
            self._serve_putters()
        else:
            self._getters.append(event)

    def _match(self, event: StoreGet):
        if event.filter is None:
            if self.items:
                return self.items.popleft()
            return _NO_MATCH
        for index, item in enumerate(self.items):
            if event.filter(item):
                del self.items[index]
                return item
        return _NO_MATCH

    def _serve_getters(self) -> None:
        remaining: deque[StoreGet] = deque()
        while self._getters:
            getter = self._getters.popleft()
            if getter.triggered:
                continue
            item = self._match(getter)
            if item is _NO_MATCH:
                remaining.append(getter)
            else:
                getter.succeed(item)
        self._getters = remaining

    def _serve_putters(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            putter = self._putters.popleft()
            if putter.triggered:
                continue
            self.items.append(putter.item)
            putter.succeed()
            self._serve_getters()


_NO_MATCH = object()


class FilterStore(Store):
    """A store whose consumers may select items with a predicate."""

    def get(self, item_filter: Optional[Callable[[object], bool]] = None) -> StoreGet:
        return StoreGet(self, item_filter)
