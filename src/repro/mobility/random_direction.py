"""Random-direction ("fluid flow") mobility: travel in a straight line
until the boundary, bounce, continue.  Produces uniform spatial density
(unlike random waypoint's center bias), which is why fluid-flow models
were the norm for cell-boundary-crossing-rate analysis in the
mobility-management literature the paper draws on."""

from __future__ import annotations

import math

import numpy as np

from repro.mobility.base import MobilityModel
from repro.radio.geometry import Point, Rectangle


class RandomDirection(MobilityModel):
    def __init__(
        self,
        start: Point,
        bounds: Rectangle,
        rng: np.random.Generator,
        speed: float = 10.0,
        redirect_mean_interval: float = 60.0,
    ) -> None:
        super().__init__(start, bounds)
        if speed <= 0:
            raise ValueError("speed must be positive")
        if redirect_mean_interval <= 0:
            raise ValueError("redirect interval must be positive")
        self._rng = rng
        self._constant_speed = speed
        self.redirect_mean_interval = redirect_mean_interval
        self._heading = float(rng.uniform(0.0, 2.0 * math.pi))
        self._until_redirect = float(rng.exponential(redirect_mean_interval))

    def advance(self, dt: float) -> Point:
        remaining = dt
        position = self._position
        while remaining > 1e-12:
            slice_dt = min(remaining, self._until_redirect)
            step = self._constant_speed * slice_dt
            candidate = position.offset(
                step * math.cos(self._heading), step * math.sin(self._heading)
            )
            if not self.bounds.contains(candidate):
                candidate, flip_x, flip_y = self.bounds.reflect(candidate)
                if flip_x:
                    self._heading = math.pi - self._heading
                if flip_y:
                    self._heading = -self._heading
            position = candidate
            self._until_redirect -= slice_dt
            remaining -= slice_dt
            if self._until_redirect <= 1e-12:
                self._heading = float(self._rng.uniform(0.0, 2.0 * math.pi))
                self._until_redirect = float(
                    self._rng.exponential(self.redirect_mean_interval)
                )
        moved = self._move_to(position, dt)
        self._speed = self._constant_speed
        return moved
