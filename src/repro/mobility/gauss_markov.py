"""Gauss-Markov mobility: temporally correlated speed and heading.

Tunable between random-walk (alpha=0) and straight-line (alpha=1)
movement; the standard model when memory-less models are too jumpy.
"""

from __future__ import annotations

import math

import numpy as np

from repro.mobility.base import MobilityModel
from repro.radio.geometry import Point, Rectangle


class GaussMarkov(MobilityModel):
    def __init__(
        self,
        start: Point,
        bounds: Rectangle,
        rng: np.random.Generator,
        mean_speed: float = 5.0,
        alpha: float = 0.85,
        speed_sigma: float = 1.0,
        heading_sigma: float = 0.4,
    ) -> None:
        super().__init__(start, bounds)
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        if mean_speed <= 0:
            raise ValueError("mean_speed must be positive")
        self._rng = rng
        self.alpha = alpha
        self.mean_speed = mean_speed
        self.speed_sigma = speed_sigma
        self.heading_sigma = heading_sigma
        self._current_speed = mean_speed
        self._heading = float(rng.uniform(0.0, 2.0 * math.pi))
        self._mean_heading = self._heading

    def advance(self, dt: float) -> Point:
        alpha = self.alpha
        root = math.sqrt(max(1.0 - alpha * alpha, 0.0))
        self._current_speed = (
            alpha * self._current_speed
            + (1 - alpha) * self.mean_speed
            + root * self.speed_sigma * float(self._rng.normal())
        )
        self._current_speed = max(self._current_speed, 0.0)
        self._heading = (
            alpha * self._heading
            + (1 - alpha) * self._mean_heading
            + root * self.heading_sigma * float(self._rng.normal())
        )
        step = self._current_speed * dt
        candidate = self._position.offset(
            step * math.cos(self._heading), step * math.sin(self._heading)
        )
        if not self.bounds.contains(candidate):
            candidate, flip_x, flip_y = self.bounds.reflect(candidate)
            if flip_x:
                self._heading = math.pi - self._heading
                self._mean_heading = math.pi - self._mean_heading
            if flip_y:
                self._heading = -self._heading
                self._mean_heading = -self._mean_heading
        return self._move_to(candidate, dt)
