"""Mobility models spanning the pedestrian-to-vehicular spectrum.

Determinism: every stochastic model draws exclusively from the
``numpy`` generator injected at construction (the scenario builder
hands each mobile its own named :class:`~repro.sim.rng.RandomStreams`
stream), so a given (model parameters, rng seed) pair always produces
the identical trajectory — in any process, on any execution backend.
"""

from repro.mobility.base import MobilityModel, Stationary
from repro.mobility.gauss_markov import GaussMarkov
from repro.mobility.highway import Highway
from repro.mobility.manhattan import ManhattanGrid
from repro.mobility.random_direction import RandomDirection
from repro.mobility.trace import TracePlayback, linear_crossing
from repro.mobility.waypoint import RandomWaypoint

__all__ = [
    "GaussMarkov",
    "Highway",
    "ManhattanGrid",
    "MobilityModel",
    "RandomDirection",
    "RandomWaypoint",
    "Stationary",
    "TracePlayback",
    "linear_crossing",
]
