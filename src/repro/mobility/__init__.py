"""Mobility models spanning the pedestrian-to-vehicular spectrum."""

from repro.mobility.base import MobilityModel, Stationary
from repro.mobility.gauss_markov import GaussMarkov
from repro.mobility.highway import Highway
from repro.mobility.manhattan import ManhattanGrid
from repro.mobility.random_direction import RandomDirection
from repro.mobility.trace import TracePlayback, linear_crossing
from repro.mobility.waypoint import RandomWaypoint

__all__ = [
    "GaussMarkov",
    "Highway",
    "ManhattanGrid",
    "MobilityModel",
    "RandomDirection",
    "RandomWaypoint",
    "Stationary",
    "TracePlayback",
    "linear_crossing",
]
