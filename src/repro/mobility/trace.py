"""Scripted trace playback: deterministic movement for tests and for
reproducing the paper's figure scenarios exactly (e.g. "MN X walks from
cell B's coverage into cell C's")."""

from __future__ import annotations

from repro.mobility.base import MobilityModel
from repro.radio.geometry import Point, Rectangle


class TracePlayback(MobilityModel):
    """Follows (time, point) waypoints with linear interpolation.

    Waypoint times are relative to the model's creation; after the last
    waypoint the node stays put.
    """

    def __init__(self, waypoints: list[tuple[float, Point]], bounds: Rectangle) -> None:
        if not waypoints:
            raise ValueError("at least one waypoint required")
        times = [t for t, _p in waypoints]
        if times != sorted(times):
            raise ValueError("waypoint times must be non-decreasing")
        if times[0] != 0.0:
            waypoints = [(0.0, waypoints[0][1])] + list(waypoints)
        super().__init__(waypoints[0][1], bounds)
        self.waypoints = list(waypoints)
        self._elapsed = 0.0

    def position_at(self, t: float) -> Point:
        """The trace position at time ``t`` (linear interpolation,
        clamped to the first/last waypoint outside the trace window)."""
        waypoints = self.waypoints
        if t <= waypoints[0][0]:
            return waypoints[0][1]
        for (t0, p0), (t1, p1) in zip(waypoints, waypoints[1:]):
            if t0 <= t <= t1:
                if t1 == t0:
                    return p1
                fraction = (t - t0) / (t1 - t0)
                return Point(
                    p0.x + (p1.x - p0.x) * fraction,
                    p0.y + (p1.y - p0.y) * fraction,
                )
        return waypoints[-1][1]

    def advance(self, dt: float) -> Point:
        self._elapsed += dt
        return self._move_to(self.position_at(self._elapsed), dt)


def linear_crossing(
    start: Point, end: Point, duration: float, bounds: Rectangle
) -> TracePlayback:
    """A straight constant-speed walk from ``start`` to ``end``."""
    if duration <= 0:
        raise ValueError("duration must be positive")
    return TracePlayback([(0.0, start), (duration, end)], bounds)
