"""Mobility model interface.

A mobility model is a stateful object advanced in discrete steps:
``advance(dt)`` moves the node and returns its new position.  The
paper's handoff decision uses the node's *speed* as a first-class
input, so every model also reports an instantaneous speed estimate.
"""

from __future__ import annotations

import abc

from repro.radio.geometry import Point, Rectangle


class MobilityModel(abc.ABC):
    """Base class for all movement models."""

    def __init__(self, start: Point, bounds: Rectangle) -> None:
        if not bounds.contains(start):
            raise ValueError(f"start {start} outside bounds {bounds}")
        self.bounds = bounds
        self._position = start
        self._speed = 0.0

    @property
    def position(self) -> Point:
        return self._position

    @property
    def speed(self) -> float:
        """Instantaneous speed in m/s."""
        return self._speed

    @abc.abstractmethod
    def advance(self, dt: float) -> Point:
        """Move the node forward ``dt`` seconds; return the new position."""

    def _move_to(self, point: Point, dt: float) -> Point:
        """Record a move, updating the speed estimate."""
        if dt > 0:
            self._speed = self._position.distance_to(point) / dt
        self._position = point
        return point


class Stationary(MobilityModel):
    """A node that never moves (idle-host and baseline scenarios)."""

    def advance(self, dt: float) -> Point:
        self._speed = 0.0
        return self._position
