"""Random-waypoint mobility: pick a destination, walk there at a random
speed, pause, repeat.  The standard pedestrian model."""

from __future__ import annotations

import numpy as np

from repro.mobility.base import MobilityModel
from repro.radio.geometry import Point, Rectangle


class RandomWaypoint(MobilityModel):
    def __init__(
        self,
        start: Point,
        bounds: Rectangle,
        rng: np.random.Generator,
        speed_range: tuple[float, float] = (0.5, 2.0),
        pause_range: tuple[float, float] = (0.0, 10.0),
    ) -> None:
        super().__init__(start, bounds)
        if speed_range[0] <= 0 or speed_range[1] < speed_range[0]:
            raise ValueError(f"bad speed range {speed_range}")
        if pause_range[0] < 0 or pause_range[1] < pause_range[0]:
            raise ValueError(f"bad pause range {pause_range}")
        self._rng = rng
        self.speed_range = speed_range
        self.pause_range = pause_range
        self._target = self._pick_target()
        self._leg_speed = self._pick_speed()
        self._pause_left = 0.0

    def _pick_target(self) -> Point:
        return Point(
            float(self._rng.uniform(self.bounds.x_min, self.bounds.x_max)),
            float(self._rng.uniform(self.bounds.y_min, self.bounds.y_max)),
        )

    def _pick_speed(self) -> float:
        low, high = self.speed_range
        return float(self._rng.uniform(low, high))

    def _pick_pause(self) -> float:
        low, high = self.pause_range
        if high == low:
            return low
        return float(self._rng.uniform(low, high))

    def advance(self, dt: float) -> Point:
        remaining = dt
        position = self._position
        while remaining > 1e-12:
            if self._pause_left > 0:
                pause = min(self._pause_left, remaining)
                self._pause_left -= pause
                remaining -= pause
                continue
            gap = position.distance_to(self._target)
            step = self._leg_speed * remaining
            if step < gap:
                position = position.towards(self._target, step)
                remaining = 0.0
            else:
                # Arrive, pause, choose the next leg.
                position = self._target
                remaining -= gap / self._leg_speed if self._leg_speed > 0 else remaining
                self._pause_left = self._pick_pause()
                self._target = self._pick_target()
                self._leg_speed = self._pick_speed()
        # Speed reported is the leg speed (zero while pausing).
        moved = self._move_to(position, dt)
        if self._pause_left > 0 and position == self._target:
            self._speed = 0.0
        return moved
