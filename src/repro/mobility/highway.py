"""Highway mobility: constant-speed travel along a straight road.

This is the vehicular extreme of the paper's speed spectrum — the class
of users its macro-tier exists for.  The road is a horizontal segment
across the bounds; vehicles wrap (re-enter) or bounce at the ends.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.mobility.base import MobilityModel
from repro.radio.geometry import Point, Rectangle


class Highway(MobilityModel):
    def __init__(
        self,
        start: Point,
        bounds: Rectangle,
        rng: Optional[np.random.Generator] = None,
        speed: float = 25.0,
        direction: int = 1,
        wrap: bool = True,
        speed_jitter: float = 0.0,
    ) -> None:
        super().__init__(start, bounds)
        if speed <= 0:
            raise ValueError("speed must be positive")
        if direction not in (-1, 1):
            raise ValueError("direction must be -1 or +1")
        if speed_jitter > 0 and rng is None:
            raise ValueError("speed_jitter requires an rng")
        self._rng = rng
        self.base_speed = speed
        self.direction = direction
        self.wrap = wrap
        self.speed_jitter = speed_jitter
        self._lane_y = start.y

    def advance(self, dt: float) -> Point:
        speed = self.base_speed
        if self.speed_jitter > 0:
            speed = max(0.1, speed + float(self._rng.normal(0.0, self.speed_jitter)))
        x = self._position.x + self.direction * speed * dt
        if self.wrap:
            width = self.bounds.width
            while x > self.bounds.x_max:
                x -= width
            while x < self.bounds.x_min:
                x += width
        else:
            if x > self.bounds.x_max:
                x = self.bounds.x_max - (x - self.bounds.x_max)
                self.direction = -1
            elif x < self.bounds.x_min:
                x = self.bounds.x_min + (self.bounds.x_min - x)
                self.direction = 1
        moved = self._move_to(Point(x, self._lane_y), dt)
        self._speed = speed
        return moved
