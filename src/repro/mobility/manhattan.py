"""Manhattan-grid mobility: movement constrained to a street grid with
probabilistic turns at intersections — the urban micro-cell workload."""

from __future__ import annotations

import numpy as np

from repro.mobility.base import MobilityModel
from repro.radio.geometry import Point, Rectangle

_DIRECTIONS = {
    "east": (1.0, 0.0),
    "west": (-1.0, 0.0),
    "north": (0.0, 1.0),
    "south": (0.0, -1.0),
}
_TURNS = {
    "east": ("north", "south"),
    "west": ("north", "south"),
    "north": ("east", "west"),
    "south": ("east", "west"),
}


class ManhattanGrid(MobilityModel):
    def __init__(
        self,
        start: Point,
        bounds: Rectangle,
        rng: np.random.Generator,
        block_size: float = 100.0,
        speed: float = 8.0,
        turn_probability: float = 0.5,
    ) -> None:
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        if speed <= 0:
            raise ValueError("speed must be positive")
        if not 0.0 <= turn_probability <= 1.0:
            raise ValueError("turn_probability must be in [0, 1]")
        # Snap the start onto the nearest street (grid line).
        snapped = Point(
            bounds.x_min + round((start.x - bounds.x_min) / block_size) * block_size,
            bounds.y_min + round((start.y - bounds.y_min) / block_size) * block_size,
        )
        super().__init__(bounds.clamp(snapped), bounds)
        self._rng = rng
        self.block_size = block_size
        self._constant_speed = speed
        self.turn_probability = turn_probability
        self._direction = str(rng.choice(list(_DIRECTIONS)))
        self._to_next_intersection = block_size

    def advance(self, dt: float) -> Point:
        remaining = dt
        position = self._position
        while remaining > 1e-12:
            travel = self._constant_speed * remaining
            if travel < self._to_next_intersection:
                position = self._step(position, travel)
                self._to_next_intersection -= travel
                remaining = 0.0
            else:
                position = self._step(position, self._to_next_intersection)
                remaining -= self._to_next_intersection / self._constant_speed
                self._to_next_intersection = self.block_size
                self._maybe_turn(position)
        moved = self._move_to(position, dt)
        self._speed = self._constant_speed
        return moved

    def _step(self, position: Point, distance: float) -> Point:
        dx, dy = _DIRECTIONS[self._direction]
        candidate = position.offset(dx * distance, dy * distance)
        if not self.bounds.contains(candidate):
            candidate = self.bounds.clamp(candidate)
            self._direction = _opposite(self._direction)
        return candidate

    def _maybe_turn(self, position: Point) -> None:
        if float(self._rng.random()) < self.turn_probability:
            options = _TURNS[self._direction]
            self._direction = str(self._rng.choice(list(options)))
        # Never drive off the grid: turn away from a wall we are hugging.
        dx, dy = _DIRECTIONS[self._direction]
        probe = position.offset(dx * self.block_size, dy * self.block_size)
        if not self.bounds.contains(probe):
            self._direction = _opposite(self._direction)


def _opposite(direction: str) -> str:
    return {"east": "west", "west": "east", "north": "south", "south": "north"}[
        direction
    ]
