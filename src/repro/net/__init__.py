"""Packet-level IP network substrate: addresses, packets, links,
routers and topology construction."""

from repro.net.addressing import AddressAllocator, IPAddress, Prefix, ip
from repro.net.link import (
    Link,
    LinkRegistry,
    LinkStats,
    connect,
    link_registry,
    protocol_hop_totals,
)
from repro.net.node import Node
from repro.net.packet import IP_HEADER_BYTES, Packet, decapsulate, encapsulate
from repro.net.router import ForwardingTable, Router
from repro.net.topology import Network, binary_tree_topology, star_topology

__all__ = [
    "AddressAllocator",
    "ForwardingTable",
    "IPAddress",
    "IP_HEADER_BYTES",
    "Link",
    "LinkRegistry",
    "LinkStats",
    "Network",
    "Node",
    "Packet",
    "Prefix",
    "Router",
    "binary_tree_topology",
    "connect",
    "decapsulate",
    "encapsulate",
    "ip",
    "link_registry",
    "protocol_hop_totals",
    "star_topology",
]
