"""Packet-level IP network substrate: addresses, packets, links,
routers and topology construction."""

from repro.net.addressing import AddressAllocator, IPAddress, Prefix, ip
from repro.net.link import Link, LinkStats, connect
from repro.net.node import Node
from repro.net.packet import IP_HEADER_BYTES, Packet, decapsulate, encapsulate
from repro.net.router import ForwardingTable, Router
from repro.net.topology import Network, binary_tree_topology, star_topology

__all__ = [
    "AddressAllocator",
    "ForwardingTable",
    "IPAddress",
    "IP_HEADER_BYTES",
    "Link",
    "LinkStats",
    "Network",
    "Node",
    "Packet",
    "Prefix",
    "Router",
    "binary_tree_topology",
    "connect",
    "decapsulate",
    "encapsulate",
    "ip",
    "star_topology",
]
