"""IP routers with longest-prefix-match forwarding."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.net.addressing import IPAddress, Prefix
from repro.net.node import Node

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.link import Link
    from repro.net.packet import Packet
    from repro.sim.kernel import Simulator


class ForwardingTable:
    """Longest-prefix-match table mapping prefixes to next-hop nodes.

    Entries are bucketed by prefix length so lookup probes at most 33
    dictionaries, longest first — simple and fast enough for simulated
    topologies while behaving exactly like real LPM.
    """

    def __init__(self) -> None:
        # _buckets[length] maps masked-network-int -> next hop.
        self._buckets: dict[int, dict[int, Node]] = {}
        self._default: Optional[Node] = None

    def add(self, prefix: Prefix, next_hop: Node) -> None:
        bucket = self._buckets.setdefault(prefix.length, {})
        bucket[int(prefix.network)] = next_hop

    def add_host(self, address, next_hop: Node) -> None:
        """Install a /32 host route."""
        self.add(Prefix(IPAddress(address), 32), next_hop)

    def remove(self, prefix: Prefix) -> None:
        bucket = self._buckets.get(prefix.length)
        if bucket:
            bucket.pop(int(prefix.network), None)

    def set_default(self, next_hop: Optional[Node]) -> None:
        self._default = next_hop

    def lookup(self, address) -> Optional[Node]:
        value = int(IPAddress(address))
        for length in sorted(self._buckets, reverse=True):
            mask = ((1 << 32) - 1) << (32 - length) if length else 0
            next_hop = self._buckets[length].get(value & mask & ((1 << 32) - 1))
            if next_hop is not None:
                return next_hop
        return self._default

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())


class Router(Node):
    """A node that forwards packets it does not own via LPM."""

    def __init__(self, sim: "Simulator", name: str, address=None) -> None:
        super().__init__(sim, name, address)
        self.table = ForwardingTable()
        self.forwarded_count = 0
        self.dropped_no_route = 0
        self.dropped_ttl = 0

    def add_route(self, prefix, next_hop: Node) -> None:
        if not isinstance(prefix, Prefix):
            prefix = Prefix(prefix)
        self.table.add(prefix, next_hop)

    def add_host_route(self, address, next_hop: Node) -> None:
        self.table.add_host(address, next_hop)

    def set_default_route(self, next_hop: Optional[Node]) -> None:
        self.table.set_default(next_hop)

    def forward(self, packet: "Packet", link: Optional["Link"]) -> None:
        if packet.ttl <= 1:
            self.dropped_ttl += 1
            return
        next_hop = self.table.lookup(packet.dst)
        if next_hop is None:
            self.dropped_no_route += 1
            return
        packet.ttl -= 1
        self.forwarded_count += 1
        self.send_via(next_hop, packet)
