"""Network nodes: the base class every host, router, base station and
agent builds on.

A node owns zero or more IP addresses, outgoing links keyed by
neighbor, and a table of protocol handlers.  Packets addressed to the
node are dispatched to the handler registered for their ``protocol``
tag; everything else is passed to :meth:`forward` (no-op for plain
hosts, longest-prefix-match forwarding for routers).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.net.addressing import IPAddress

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.link import Link
    from repro.net.packet import Packet
    from repro.sim.kernel import Simulator

PacketHandler = Callable[["Packet", Optional["Link"]], None]


class Node:
    """A network endpoint."""

    def __init__(self, sim: "Simulator", name: str, address=None) -> None:
        self.sim = sim
        self.name = name
        self.addresses: list[IPAddress] = []
        if address is not None:
            self.addresses.append(IPAddress(address))
        #: Outgoing links keyed by neighbor node.
        self.links: dict["Node", "Link"] = {}
        self._handlers: dict[str, PacketHandler] = {}
        self._default_handler: Optional[PacketHandler] = None
        self.received_count = 0
        self.sent_count = 0

    # ------------------------------------------------------------------
    @property
    def address(self) -> IPAddress:
        """The node's primary address."""
        if not self.addresses:
            raise AttributeError(f"{self.name} has no address")
        return self.addresses[0]

    def add_address(self, address) -> IPAddress:
        addr = IPAddress(address)
        if addr not in self.addresses:
            self.addresses.append(addr)
        return addr

    def remove_address(self, address) -> None:
        addr = IPAddress(address)
        if addr in self.addresses:
            self.addresses.remove(addr)

    def owns(self, address) -> bool:
        return IPAddress(address) in self.addresses

    # ------------------------------------------------------------------
    def attach_link(self, link: "Link") -> None:
        """Register an outgoing link (called by ``connect``)."""
        self.links[link.tail] = link

    def detach_link(self, neighbor: "Node") -> None:
        self.links.pop(neighbor, None)

    def neighbors(self) -> list["Node"]:
        return list(self.links)

    def link_to(self, neighbor: "Node") -> Optional["Link"]:
        return self.links.get(neighbor)

    # ------------------------------------------------------------------
    def on_protocol(self, protocol: str, handler: PacketHandler) -> None:
        """Register ``handler`` for locally delivered ``protocol`` packets."""
        self._handlers[protocol] = handler

    def on_default(self, handler: PacketHandler) -> None:
        """Handler for local packets with no protocol-specific handler."""
        self._default_handler = handler

    # ------------------------------------------------------------------
    def send_via(self, neighbor: "Node", packet: "Packet") -> bool:
        """Transmit ``packet`` on the link towards ``neighbor``."""
        link = self.links.get(neighbor)
        if link is None:
            raise ValueError(f"{self.name} has no link to {neighbor.name}")
        self.sent_count += 1
        return link.transmit(packet)

    def receive(self, packet: "Packet", link: Optional["Link"] = None) -> None:
        """Entry point for packets arriving at this node."""
        self.received_count += 1
        if self.owns(packet.dst):
            self.deliver_local(packet, link)
        else:
            self.forward(packet, link)

    def deliver_local(self, packet: "Packet", link: Optional["Link"]) -> None:
        handler = self._handlers.get(packet.protocol, self._default_handler)
        if handler is not None:
            handler(packet, link)

    def forward(self, packet: "Packet", link: Optional["Link"]) -> None:
        """Hosts do not forward; routers override this."""

    def __repr__(self) -> str:
        addresses = ",".join(str(a) for a in self.addresses) or "-"
        return f"<{type(self).__name__} {self.name} [{addresses}]>"
