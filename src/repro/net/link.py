"""Point-to-point links with bandwidth, propagation delay and a finite
drop-tail queue.

A link is unidirectional; :func:`connect` wires a bidirectional pair.
The implementation is callback-based (no per-link process): each link
tracks when its transmitter frees up and schedules packet arrival
directly, which keeps large topologies cheap to simulate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node
    from repro.net.packet import Packet
    from repro.sim.kernel import Simulator


class LinkStats:
    """Per-link counters (including per-protocol delivered hops)."""

    __slots__ = (
        "sent",
        "delivered",
        "dropped_queue",
        "dropped_error",
        "bytes_sent",
        "protocol_hops",
    )

    def __init__(self) -> None:
        self.sent = 0
        self.delivered = 0
        self.dropped_queue = 0
        self.dropped_error = 0
        self.bytes_sent = 0
        #: protocol tag -> number of packets delivered over this link.
        self.protocol_hops: dict[str, int] = {}


class LinkRegistry:
    """Every link created under one simulator (accounting only).

    Whole-network accounting (e.g. the T1 signalling table) sums
    per-protocol hop counts over *every* link of a world — including
    radio links that are torn down during a handoff — without threading
    a context object through every constructor.  The registry is scoped
    to a :class:`~repro.sim.kernel.Simulator`, so scenarios running
    back-to-back (or concurrently on a parallel backend) can never
    cross-contaminate each other's totals; no explicit reset exists or
    is needed.
    """

    def __init__(self) -> None:
        self.links: list["Link"] = []

    def register(self, link: "Link") -> None:
        self.links.append(link)

    def __len__(self) -> int:
        return len(self.links)

    def __iter__(self):
        return iter(self.links)

    def protocol_hop_totals(self) -> dict[str, int]:
        """Sum of per-protocol delivered hops over all registered links."""
        totals: dict[str, int] = {}
        for link in self.links:
            for protocol, count in link.stats.protocol_hops.items():
                totals[protocol] = totals.get(protocol, 0) + count
        return totals


def link_registry(sim: "Simulator") -> LinkRegistry:
    """The (lazily created) registry of all links under ``sim``.

    Stored on the simulator instance itself so the registry (and every
    link it holds) lives exactly as long as its world — no module-level
    root, nothing outlives the simulation.
    """
    registry = getattr(sim, "_link_registry", None)
    if registry is None:
        registry = LinkRegistry()
        sim._link_registry = registry
    return registry


def protocol_hop_totals(sim: "Simulator") -> dict[str, int]:
    """Per-protocol delivered-hop totals over every link under ``sim``."""
    return link_registry(sim).protocol_hop_totals()


class Link:
    """A unidirectional link from ``head`` to ``tail``.

    Every instance registers itself in its simulator's
    :class:`LinkRegistry` (see :func:`link_registry`), giving each
    scenario isolated whole-network accounting.

    Parameters
    ----------
    bandwidth:
        Transmission rate in bits per second.
    delay:
        Propagation delay in seconds.
    queue_limit:
        Maximum packets queued or in serialization before tail-drop.
    loss_rate:
        Independent per-packet corruption probability (0 for wired links).
    shared_channel:
        Optional :class:`~repro.radio.channel.SharedChannel` gating this
        link's serialization: instead of the private ``bandwidth``
        transmitter, accepted packets queue for airtime on the cell's
        shared per-direction budget (FIFO, mobile-index tie-break).
        ``None`` (the default) keeps the legacy per-link transmitter,
        byte-identical to pre-channel behaviour.
    channel_direction:
        ``"downlink"`` or ``"uplink"``: which budget of the shared
        channel this link's transmissions consume.  Ignored without a
        channel.
    channel_key:
        Deterministic arbitration tie-break key (the mobile's
        population index).  Ignored without a channel.
    """

    def __init__(
        self,
        sim: "Simulator",
        head: "Node",
        tail: "Node",
        bandwidth: float = 100e6,
        delay: float = 0.001,
        queue_limit: int = 100,
        loss_rate: float = 0.0,
        name: Optional[str] = None,
        shared_channel=None,
        channel_direction: str = "downlink",
        channel_key: int = 0,
    ) -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be at least 1, got {queue_limit}")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        if channel_direction not in ("downlink", "uplink"):
            raise ValueError(
                f"channel_direction must be 'downlink' or 'uplink', "
                f"got {channel_direction!r}"
            )
        self.sim = sim
        self.head = head
        self.tail = tail
        self.bandwidth = bandwidth
        self.delay = delay
        self.queue_limit = queue_limit
        self.loss_rate = loss_rate
        self.name = name or f"{head.name}->{tail.name}"
        self.shared_channel = shared_channel
        self.channel_direction = channel_direction
        self.channel_key = int(channel_key)
        self.stats = LinkStats()
        self._busy_until = 0.0
        self._in_flight = 0
        self._loss_draw = None  # lazily bound RNG for lossy links
        #: Shard-boundary hook: when set, ``transmit`` announces each
        #: accepted packet as ``_export(packet, arrival_time)`` at send
        #: time — the link's propagation delay is then the conservative
        #: sync lookahead — and delivery stops at the sender-side stats
        #: instead of calling ``tail.receive`` (the shard owning
        #: ``tail`` replays the receive at ``arrival_time``).  Only
        #: loss-free, always-up wired links may carry the hook; ``None``
        #: (always, outside sharded runs) keeps the legacy delivery
        #: path byte-identical.
        self._export = None
        self.up = True
        link_registry(sim).register(self)

    def __repr__(self) -> str:
        return f"<Link {self.name} {self.bandwidth/1e6:g}Mbps {self.delay*1e3:g}ms>"

    def serialization_time(self, packet: "Packet") -> float:
        return packet.size * 8.0 / self.bandwidth

    @property
    def queue_depth(self) -> int:
        """Packets currently queued or being serialized."""
        return self._in_flight

    def transmit(self, packet: "Packet") -> bool:
        """Enqueue ``packet`` for transmission.

        Returns False if the packet was tail-dropped (queue full or link
        down); True if it was accepted (it may still be lost to random
        errors in flight).
        """
        if not self.up:
            self.stats.dropped_queue += 1
            return False
        if self._in_flight >= self.queue_limit:
            self.stats.dropped_queue += 1
            return False

        if self.shared_channel is not None:
            # Contention mode: the cell's shared airtime arbiter owns
            # serialization; it calls channel_serialized()/channel_drop()
            # back on this link.  Per-link queue accounting is unchanged.
            self._in_flight += 1
            self.stats.sent += 1
            self.stats.bytes_sent += packet.size
            self.shared_channel.submit(self, packet)
            return True

        now = self.sim.now
        start = max(now, self._busy_until)
        finish = start + self.serialization_time(packet)
        self._busy_until = finish
        self._in_flight += 1
        self.stats.sent += 1
        self.stats.bytes_sent += packet.size

        arrival_delay = (finish + self.delay) - now
        if self._export is not None:
            self._export(packet, now + arrival_delay)
        self.sim.call_later(arrival_delay, self._deliver, packet)
        return True

    # ------------------------------------------------------------------
    # Shared-channel callbacks (contention mode only)
    # ------------------------------------------------------------------
    def channel_serialized(self, packet: "Packet") -> None:
        """Airtime finished: start propagation toward the tail node."""
        self.sim.call_later(self.delay, self._deliver, packet)

    def channel_drop(self, packet: "Packet") -> None:
        """The channel cancelled a queued packet (claim detached).

        Counted as an in-flight loss (``dropped_error``): the radio is
        gone, exactly like a legacy link going down mid-delivery.
        """
        self._in_flight -= 1
        self.stats.dropped_error += 1

    def _deliver(self, packet: "Packet") -> None:
        self._in_flight -= 1
        if not self.up:
            self.stats.dropped_error += 1
            return
        if self.loss_rate > 0.0 and self._random_loss():
            self.stats.dropped_error += 1
            return
        self.stats.delivered += 1
        hops = self.stats.protocol_hops
        hops[packet.protocol] = hops.get(packet.protocol, 0) + 1
        if self._export is not None:
            # Sharded boundary: the tail-owning shard replays the
            # receive (announced from transmit()); this side only keeps
            # the delivery accounting, at the same virtual time.
            return
        self.tail.receive(packet, self)

    def _random_loss(self) -> bool:
        if self._loss_draw is None:
            import random
            import zlib

            # crc32, not hash(): str hashes are salted per process and
            # would make loss patterns unreproducible across runs.
            seed = zlib.crc32(self.name.encode("utf-8"))
            self._loss_draw = random.Random(seed).random
        return self._loss_draw() < self.loss_rate


def connect(
    sim: "Simulator",
    a: "Node",
    b: "Node",
    bandwidth: float = 100e6,
    delay: float = 0.001,
    queue_limit: int = 100,
    loss_rate: float = 0.0,
    shared_channel=None,
    channel_key: int = 0,
) -> tuple[Link, Link]:
    """Create a bidirectional connection: two mirrored links.

    Registers each direction with the endpoint nodes so routing can find
    the outgoing link by neighbor.  When ``shared_channel`` is given,
    ``a`` must be the base-station side: the ``a -> b`` link consumes
    the channel's downlink budget and ``b -> a`` the uplink budget,
    both tie-broken by ``channel_key`` (the mobile's index).
    """
    forward = Link(
        sim, a, b, bandwidth, delay, queue_limit, loss_rate,
        shared_channel=shared_channel,
        channel_direction="downlink",
        channel_key=channel_key,
    )
    backward = Link(
        sim, b, a, bandwidth, delay, queue_limit, loss_rate,
        shared_channel=shared_channel,
        channel_direction="uplink",
        channel_key=channel_key,
    )
    a.attach_link(forward)
    b.attach_link(backward)
    return forward, backward
