"""The packet model.

A :class:`Packet` is an immutable-ish record of addressing, size and an
arbitrary payload.  Control-plane messages (registration requests,
route updates, location messages, ...) travel as payloads of packets
with a ``protocol`` tag, so the control plane pays the same queueing,
propagation and loss costs as the data plane — essential for honest
handoff-latency measurements.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.net.addressing import IPAddress

_packet_ids = itertools.count(1)

#: Size in bytes of an IPv4 header, used for tunnelling overhead.
IP_HEADER_BYTES = 20


@dataclass(slots=True)
class Packet:
    """One IP datagram (or an encapsulated datagram).

    Slotted: packets are the highest-churn object in any traffic-bearing
    run (every hop holds one in its queue tuple), so they carry no
    per-instance ``__dict__``.
    """

    src: IPAddress
    dst: IPAddress
    size: int
    protocol: str = "data"
    payload: object = None
    flow_id: Optional[str] = None
    seq: int = 0
    created_at: float = 0.0
    ttl: int = 64
    uid: int = field(default_factory=lambda: next(_packet_ids))
    #: Set by semisoft handoff when a copy is sent down two paths.
    duplicate_of: Optional[int] = None
    #: Set on paging-broadcast copies so they are not re-flooded.
    paged: bool = False

    def __post_init__(self) -> None:
        # Coerce only when needed: copies and forwarded packets already
        # carry IPAddress instances, and re-wrapping them per packet is
        # measurable at scale.
        if type(self.src) is not IPAddress:
            self.src = IPAddress(self.src)
        if type(self.dst) is not IPAddress:
            self.dst = IPAddress(self.dst)
        if self.size <= 0:
            raise ValueError(f"packet size must be positive, got {self.size}")

    def copy(self, **overrides) -> "Packet":
        """A fresh packet with the same fields, a new uid, and overrides."""
        fields = {
            "src": self.src,
            "dst": self.dst,
            "size": self.size,
            "protocol": self.protocol,
            "payload": self.payload,
            "flow_id": self.flow_id,
            "seq": self.seq,
            "created_at": self.created_at,
            "ttl": self.ttl,
        }
        fields.update(overrides)
        return Packet(**fields)

    def __repr__(self) -> str:
        return (
            f"<Packet #{self.uid} {self.protocol} {self.src}->{self.dst} "
            f"{self.size}B seq={self.seq}>"
        )


def encapsulate(inner: Packet, src: IPAddress, dst: IPAddress) -> Packet:
    """IP-in-IP encapsulation as used by Mobile IP HA->FA tunnels.

    The outer datagram carries the whole inner datagram as payload and
    adds one IP header of overhead (RFC 2003 behaviour).
    """
    return Packet(
        src=src,
        dst=dst,
        size=inner.size + IP_HEADER_BYTES,
        protocol="ipip",
        payload=inner,
        flow_id=inner.flow_id,
        seq=inner.seq,
        created_at=inner.created_at,
        ttl=64,
    )


def decapsulate(outer: Packet) -> Packet:
    """Strip one layer of IP-in-IP encapsulation."""
    if outer.protocol != "ipip" or not isinstance(outer.payload, Packet):
        raise ValueError(f"{outer!r} is not an IP-in-IP packet")
    return outer.payload
