"""IPv4 addresses and prefixes.

Addresses are plain ``int`` wrapped in a tiny value type so they format
nicely and cannot be confused with packet sizes or ports.  The paper's
architecture is explicitly IPv4 ("a multi-tier solution base on the
current IP (IPv4)"), so 32-bit addressing is used throughout.
"""

from __future__ import annotations

from functools import total_ordering
from typing import Iterator, Union

_MAX = (1 << 32) - 1


@total_ordering
class IPAddress:
    """A 32-bit IPv4 address."""

    __slots__ = ("_value",)

    def __init__(self, value: Union[int, str, "IPAddress"]) -> None:
        if isinstance(value, IPAddress):
            self._value = value._value
            return
        if isinstance(value, str):
            self._value = _parse_dotted(value)
            return
        if isinstance(value, int):
            if not 0 <= value <= _MAX:
                raise ValueError(f"address out of range: {value}")
            self._value = value
            return
        raise TypeError(f"cannot make an IPAddress from {value!r}")

    def __int__(self) -> int:
        return self._value

    def __index__(self) -> int:
        return self._value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPAddress):
            return self._value == other._value
        if isinstance(other, int):
            return self._value == other
        return NotImplemented

    def __lt__(self, other: "IPAddress") -> bool:
        return self._value < int(other)

    def __hash__(self) -> int:
        return hash(self._value)

    def __repr__(self) -> str:
        return f"IPAddress({str(self)!r})"

    def __str__(self) -> str:
        value = self._value
        return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))

    def __add__(self, offset: int) -> "IPAddress":
        return IPAddress(self._value + offset)


def _parse_dotted(text: str) -> int:
    parts = text.strip().split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address: {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise ValueError(f"malformed IPv4 address: {text!r}")
        octet = int(part)
        if octet > 255:
            raise ValueError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def ip(value: Union[int, str, IPAddress]) -> IPAddress:
    """Convenience constructor: ``ip("10.0.0.1")``."""
    return IPAddress(value)


class Prefix:
    """An IPv4 network prefix such as ``10.1.0.0/16``."""

    __slots__ = ("network", "length", "_mask")

    def __init__(self, network: Union[int, str, IPAddress], length: int = None) -> None:
        if isinstance(network, str) and "/" in network:
            if length is not None:
                raise ValueError("length given twice")
            network, _slash, length_text = network.partition("/")
            length = int(length_text)
        if length is None:
            raise ValueError("prefix length required")
        if not 0 <= length <= 32:
            raise ValueError(f"prefix length out of range: {length}")
        self.length = length
        self._mask = (_MAX << (32 - length)) & _MAX if length else 0
        base = int(IPAddress(network))
        self.network = IPAddress(base & self._mask)

    @property
    def mask(self) -> int:
        return self._mask

    def __contains__(self, address: Union[int, str, IPAddress]) -> bool:
        return (int(IPAddress(address)) & self._mask) == int(self.network)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return self.network == other.network and self.length == other.length

    def __hash__(self) -> int:
        return hash((int(self.network), self.length))

    def __repr__(self) -> str:
        return f"Prefix({str(self)!r})"

    def __str__(self) -> str:
        return f"{self.network}/{self.length}"

    def hosts(self, count: int, start: int = 1) -> Iterator[IPAddress]:
        """Yield ``count`` host addresses inside this prefix."""
        base = int(self.network)
        size = 1 << (32 - self.length)
        if start + count > size:
            raise ValueError(f"prefix {self} cannot hold {count} hosts from {start}")
        for offset in range(start, start + count):
            yield IPAddress(base + offset)


class AddressAllocator:
    """Hands out sequential host addresses from a prefix."""

    def __init__(self, prefix: Union[str, Prefix]) -> None:
        self.prefix = prefix if isinstance(prefix, Prefix) else Prefix(prefix)
        self._next = 1

    def allocate(self) -> IPAddress:
        size = 1 << (32 - self.prefix.length)
        if self._next >= size - 1:
            raise RuntimeError(f"prefix {self.prefix} exhausted")
        address = IPAddress(int(self.prefix.network) + self._next)
        self._next += 1
        return address
