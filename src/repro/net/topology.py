"""Topology builder: assemble nodes and links, then install static
shortest-path routes (Dijkstra over propagation delay via networkx).
"""

from __future__ import annotations

from typing import Optional, Union

import networkx as nx

from repro.net.addressing import AddressAllocator, IPAddress
from repro.net.link import Link, LinkRegistry, connect, link_registry
from repro.net.node import Node
from repro.net.router import Router
from repro.sim.kernel import Simulator


class Network:
    """A container for one simulated internetwork."""

    def __init__(self, sim: Simulator, prefix: str = "10.0.0.0/8") -> None:
        self.sim = sim
        self.nodes: dict[str, Node] = {}
        self.links: list[Link] = []
        self.allocator = AddressAllocator(prefix)

    # ------------------------------------------------------------------
    def add(self, node: Node) -> Node:
        """Register an externally built node."""
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        return node

    def host(self, name: str, address=None) -> Node:
        """Create and register a plain host."""
        node = Node(self.sim, name, address or self.allocator.allocate())
        return self.add(node)

    def router(self, name: str, address=None) -> Router:
        """Create and register a router."""
        node = Router(self.sim, name, address or self.allocator.allocate())
        return self.add(node)

    def __getitem__(self, name: str) -> Node:
        return self.nodes[name]

    def __contains__(self, name: str) -> bool:
        return name in self.nodes

    # ------------------------------------------------------------------
    def connect(
        self,
        a: Union[str, Node],
        b: Union[str, Node],
        bandwidth: float = 100e6,
        delay: float = 0.001,
        queue_limit: int = 100,
        loss_rate: float = 0.0,
    ) -> tuple[Link, Link]:
        """Create a bidirectional link pair between two nodes."""
        node_a = self.nodes[a] if isinstance(a, str) else a
        node_b = self.nodes[b] if isinstance(b, str) else b
        forward, backward = connect(
            self.sim, node_a, node_b, bandwidth, delay, queue_limit, loss_rate
        )
        self.links.extend((forward, backward))
        return forward, backward

    # ------------------------------------------------------------------
    def graph(self) -> nx.DiGraph:
        """The topology as a directed graph weighted by link delay."""
        graph = nx.DiGraph()
        for node in self.nodes.values():
            graph.add_node(node)
        for link in self.links:
            graph.add_edge(link.head, link.tail, weight=link.delay, link=link)
        return graph

    def install_routes(self) -> None:
        """Install host routes for every addressed node at every router.

        Uses all-pairs Dijkstra over propagation delay.  Later route
        changes (Mobile IP bindings, Cellular IP caches, the paper's
        location tables) override these static routes through their own
        mechanisms.
        """
        graph = self.graph()
        routers = [node for node in self.nodes.values() if isinstance(node, Router)]
        paths = dict(nx.all_pairs_dijkstra_path(graph, weight="weight"))
        for router in routers:
            reachable = paths.get(router, {})
            for target, path in reachable.items():
                if target is router or len(path) < 2:
                    continue
                next_hop = path[1]
                for address in target.addresses:
                    router.table.add_host(address, next_hop)

    def path_delay(self, a: Union[str, Node], b: Union[str, Node]) -> float:
        """Total one-way propagation delay along the shortest path."""
        node_a = self.nodes[a] if isinstance(a, str) else a
        node_b = self.nodes[b] if isinstance(b, str) else b
        return nx.dijkstra_path_length(self.graph(), node_a, node_b, weight="weight")

    # ------------------------------------------------------------------
    @property
    def link_registry(self) -> LinkRegistry:
        """Accounting over *every* link under this network's simulator,
        including links (radio, inter-domain) created outside
        :meth:`connect`."""
        return link_registry(self.sim)

    def protocol_hop_totals(self) -> dict[str, int]:
        """Per-protocol delivered-hop totals for this world's links."""
        return self.link_registry.protocol_hop_totals()

    def find_node_owning(self, address) -> Optional[Node]:
        """The node that owns ``address``, if any."""
        target = IPAddress(address)
        for node in self.nodes.values():
            if node.owns(target):
                return node
        return None


def star_topology(
    sim: Simulator,
    center_name: str = "gw",
    leaf_count: int = 4,
    bandwidth: float = 100e6,
    delay: float = 0.001,
) -> Network:
    """A gateway router with ``leaf_count`` leaf routers — the shape of a
    Cellular IP access network's first level."""
    network = Network(sim)
    network.router(center_name)
    for index in range(leaf_count):
        name = f"{center_name}-leaf{index}"
        network.router(name)
        network.connect(center_name, name, bandwidth=bandwidth, delay=delay)
    network.install_routes()
    return network


def binary_tree_topology(
    sim: Simulator,
    depth: int,
    root_name: str = "root",
    bandwidth: float = 100e6,
    delay: float = 0.001,
) -> Network:
    """A complete binary tree of routers — the canonical Cellular IP
    evaluation topology (gateway at the root, base stations at leaves)."""
    if depth < 1:
        raise ValueError("depth must be at least 1")
    network = Network(sim)
    network.router(root_name)
    frontier = [root_name]
    for level in range(1, depth):
        next_frontier = []
        for parent in frontier:
            for side in ("l", "r"):
                child = f"{parent}.{side}"
                network.router(child)
                network.connect(parent, child, bandwidth=bandwidth, delay=delay)
                next_frontier.append(child)
        frontier = next_frontier
    network.install_routes()
    return network
