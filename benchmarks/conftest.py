"""Shared helpers for the benchmark harness.

Every bench runs its experiment once (``benchmark.pedantic`` with one
round — the workload is a full simulation, not a microbenchmark),
prints the reproduced table/figure and also writes it to
``results/<experiment>.txt`` so the output survives pytest's capture.

Set ``REPRO_BENCH_JOBS=N`` to run engine-aware benches (e.g.
``bench_t2_scaling_table.py``) through a ``ProcessPoolBackend`` with N
workers instead of the serial default — the reproduced numbers are
identical by the engine's determinism guarantee, only the wall-clock
(and hence the reported benchmark time) changes.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments.exec import backend_for_jobs

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture
def execution_backend():
    """The execution backend selected by ``REPRO_BENCH_JOBS`` (default serial)."""
    return backend_for_jobs(int(os.environ.get("REPRO_BENCH_JOBS", "1")))


@pytest.fixture
def record_result():
    """Persist and echo an ExperimentResult."""

    def _record(result) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        safe_id = result.experiment_id.replace("/", "_").lower()
        path = RESULTS_DIR / f"{safe_id}.txt"
        body = result.text
        if result.notes:
            body += f"\n\nNotes: {result.notes}\n"
        path.write_text(body)
        print()
        print(result.text)
        if result.notes:
            print(f"Notes: {result.notes}")

    return _record


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
