"""Shard-scaling bench: wall-clock and events/sec at 1, 2 and 4 shards.

Runs the two-domain ``commuter-corridor`` smoke scenario through
:func:`repro.shard.runner.run_scenario_spec_sharded` at each shard
count and records one pytest-benchmark timing per count, so the
conservative-sync overhead (and any multi-core win) shows up in the
bench history next to the kernel numbers.  Every point also checks the
shard determinism contract in miniature: the metric dict must be
byte-identical to the serial run, and the harvested event count must
be positive.  Collected into ``benchmarks/BENCH_kernel.json`` by
``tools/update_bench_baseline.py`` and gated by the CI tolerance band.
"""

import multiprocessing

import pytest

from benchmarks.conftest import run_once
from repro.scenarios import get_scenario, run_scenario_spec
from repro.shard.runner import run_scenario_spec_sharded

#: Shard counts the scaling curve samples (1 = the monolithic path).
SHARD_COUNTS = (1, 2, 4)

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="platform lacks fork",
)


def _spec():
    return get_scenario("commuter-corridor").smoke()


@needs_fork
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_bench_shard_scaling(benchmark, shards):
    spec = _spec()
    stats: dict = {}

    def job():
        stats.clear()
        return run_scenario_spec_sharded(spec, 1, shards, stats=stats)

    metrics = run_once(benchmark, job)
    # Determinism contract: shard count never changes a metric byte.
    assert metrics == run_scenario_spec(spec, 1)
    # Shape: the run simulated real work and reported its event count.
    assert stats["events"] > 0
    assert 1 <= stats["groups"] <= shards
    benchmark.extra_info["events"] = stats["events"]
    benchmark.extra_info["groups"] = stats["groups"]
    benchmark.extra_info["events_per_sec"] = (
        stats["events"] / benchmark.stats.stats.mean
    )
