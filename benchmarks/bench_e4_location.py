"""E4 (Fig 3.1): hierarchical location-management load.

Signalling and table occupancy versus the number of mobiles in the
Fig 3.1 hierarchy.
"""

from benchmarks.conftest import run_once
from repro.experiments import experiment_e4


def test_bench_e4_location_load(benchmark, record_result):
    result = run_once(
        benchmark,
        lambda: experiment_e4(
            seeds=(1, 2), mobile_counts=(4, 8, 16, 32), duration=15.0
        ),
    )
    record_result(result)

    msgs = result.series["location_msgs_per_s"]
    records = result.series["table_records"]
    per_station = result.series["records_per_station"]
    # Shape: signalling and state grow linearly with the population.
    assert msgs[-1] > msgs[0] * 4
    assert records[-1] > records[0] * 4
    # Hierarchy spreads records: per-station state stays well below the
    # total (each branch only stores its own mobiles).
    assert all(p < r for p, r in zip(per_station, records))
