"""Design-choice ablations from DESIGN.md §6: RSMC buffer depth and
location-record lifetime ratio."""

from benchmarks.conftest import run_once
from repro.experiments import ablation_buffer_size, ablation_record_lifetime


def test_bench_ablation_buffer_size(benchmark, record_result):
    result = run_once(
        benchmark, lambda: ablation_buffer_size(seeds=(1, 2), buffer_sizes=(1, 4, 16, 64))
    )
    record_result(result)

    loss = result.series["loss_rate"]
    # Shape: a one-packet buffer loses packets during the handoff window;
    # a deep buffer does not.
    assert loss[0] >= loss[-1]
    assert loss[-1] < 0.01


def test_bench_ablation_record_lifetime(benchmark, record_result):
    result = run_once(
        benchmark,
        lambda: ablation_record_lifetime(
            seeds=(1, 2), lifetime_ratios=(1.2, 2.0, 4.0, 8.0)
        ),
    )
    record_result(result)

    loss = result.series["loss_rate"]
    records = result.series["records_at_root"]
    # Shape: once the lifetime comfortably exceeds the refresh period the
    # stream is clean; state at the root never exceeds one record per MN
    # per table by much.
    assert loss[-1] < 0.01
    assert all(value <= 2.0 for value in records)
