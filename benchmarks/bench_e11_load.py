"""E11: foreground video QoS vs background load (§4 capability d).

The QoS-degradation curve: delay/jitter climb toward the backhaul
bottleneck, loss appears past saturation.
"""

from benchmarks.conftest import run_once
from repro.experiments import experiment_e11


def test_bench_e11_qos_under_load(benchmark, record_result):
    result = run_once(
        benchmark,
        lambda: experiment_e11(
            seeds=(1, 2), background_flows=(0, 2, 4, 6, 8, 10), duration=10.0
        ),
    )
    record_result(result)

    offered = result.series["offered_load"]
    loss = result.series["loss_rate"]
    delay = result.series["mean_delay"]
    # Shape: no loss and modest delay below saturation; clear loss and a
    # delay blow-up once offered load exceeds the bottleneck.
    below = [l for o, l in zip(offered, loss) if o < 0.95]
    above = [l for o, l in zip(offered, loss) if o > 1.05]
    assert all(value < 0.01 for value in below)
    assert above and all(value > 0.02 for value in above)
    assert delay[-1] > 3 * delay[0]
