"""T1: control message-hops per handoff type (§3/§4 accounting)."""

from benchmarks.conftest import run_once
from repro.experiments import experiment_t1


def test_bench_t1_signalling_accounting(benchmark, record_result):
    result = run_once(benchmark, experiment_t1)
    record_result(result)

    cases = result.x_values
    registrations = dict(zip(cases, result.series["mip-reg-request"]))
    mnld = dict(zip(cases, result.series["mnld-update"]))
    updates = dict(zip(cases, result.series["update-location"]))

    # Shape: only the different-upper inter-domain case touches the
    # home network and the MNLD.
    for case in cases:
        if "diff-upper" in case:
            assert registrations[case] > 0
            assert mnld[case] > 0
        else:
            assert registrations[case] == 0
            assert mnld[case] == 0
    # Every handoff sends exactly one Update Location Message (hop count
    # equals the branch length, always >= 2: radio hop + at least one
    # wired hop).
    assert all(value >= 2 for value in updates.values())
