"""E7 (Fig 3.4): the three intra-domain handoff cases, plus the
channel-overflow fallback (case c's "turn to macro-cell").
"""

from benchmarks.conftest import run_once
from repro.experiments import experiment_e7, experiment_e7_blocking


def test_bench_e7_handoff_cases(benchmark, record_result):
    result = run_once(benchmark, lambda: experiment_e7(seeds=(1, 2)))
    record_result(result)

    interruptions = result.series["interruption_s"]
    losses = result.series["loss_rate"]
    # Shape: all three cases complete with sub-100 ms interruption and no
    # loss (RSMC buffering covers the switch).
    assert all(value < 0.1 for value in interruptions)
    assert all(value < 0.01 for value in losses)


def test_bench_e7_overflow_blocking(benchmark, record_result):
    result = run_once(
        benchmark,
        lambda: experiment_e7_blocking(seeds=(1,), offered_loads=(4, 8, 12, 16)),
    )
    record_result(result)

    with_overflow = result.series["success_with_overflow"]
    without = result.series["success_without_overflow"]
    # Shape: once the micro cell saturates (load >= 8 channels), plain
    # handoffs block but the paper's macro fallback still succeeds.
    assert all(value == 1.0 for value in with_overflow)
    assert without[0] == 1.0
    assert without[-1] == 0.0
