"""E8b: elastic (AIMD/TCP-like) traffic under handoffs.

Handoff packet loss translates into window collapse for elastic
traffic — the §2.2.2 claim that semisoft handoff "provid[es] improved
TCP ... performance over hard handoff", extended to the paper's RSMC.
"""

from benchmarks.conftest import run_once
from repro.experiments import experiment_e8b


def test_bench_e8b_elastic_goodput(benchmark, record_result):
    result = run_once(
        benchmark,
        lambda: experiment_e8b(
            seeds=(1, 2, 3), handoffs=6, handoff_interval=2.0, duration=16.0
        ),
    )
    record_result(result)

    schemes = result.x_values
    goodput = dict(zip(schemes, result.series["goodput_bps"]))
    lossy = dict(zip(schemes, result.series["lossy_windows"]))
    window = dict(zip(schemes, result.series["final_window"]))

    # Shape: hard handoff loses windows; the loss-free schemes do not
    # and keep at least its goodput.
    assert lossy["cip-hard"] > 0
    assert lossy["cip-semisoft"] == 0
    assert lossy["multitier-rsmc"] == 0
    assert goodput["multitier-rsmc"] >= goodput["cip-hard"]
    assert goodput["cip-semisoft"] >= goodput["cip-hard"]
    assert window["multitier-rsmc"] >= window["cip-hard"]
