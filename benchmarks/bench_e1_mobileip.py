"""E1 (Fig 2.2): Mobile IP registration latency & triangle routing.

Regenerates the Mobile IP procedure costs: registration latency and
CN->MN path stretch as the home agent moves farther away.
"""

from benchmarks.conftest import run_once
from repro.experiments import experiment_e1


def test_bench_e1_registration_and_triangle(benchmark, record_result):
    result = run_once(
        benchmark,
        lambda: experiment_e1(
            seeds=(1, 2, 3), backbone_delays=(0.005, 0.010, 0.025, 0.050, 0.100)
        ),
    )
    record_result(result)

    latency = result.series["registration_latency"]
    stretch = result.series["triangle_stretch"]
    # Shape: latency grows monotonically with backbone delay.
    assert all(b > a for a, b in zip(latency, latency[1:]))
    # Shape: the triangle detour makes the downlink strictly longer.
    assert all(value > 1.0 for value in stretch)
