"""E2 (Fig 2.3): Cellular IP routing-cache maintenance costs.

Signalling rate vs route-update period, and the cache-miss cliff once
the update period exceeds the route timeout.
"""

from benchmarks.conftest import run_once
from repro.experiments import experiment_e2


def test_bench_e2_signalling_vs_refresh(benchmark, record_result):
    result = run_once(
        benchmark,
        lambda: experiment_e2(
            seeds=(1, 2), update_periods=(0.25, 0.5, 1.0, 2.0, 4.0), duration=20.0
        ),
    )
    record_result(result)

    control = result.series["control_packets_per_s"]
    miss = result.series["miss_rate"]
    # Shape: signalling decreases as the update period grows.
    assert all(b <= a for a, b in zip(control, control[1:]))
    # Shape: near-zero misses while period < timeout (first two points),
    # large misses once period >> timeout (last point).
    assert miss[0] < 0.05 and miss[1] < 0.05
    assert miss[-1] > 0.4
