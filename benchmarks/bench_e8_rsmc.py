"""E8 (Fig 4.1): the headline scheme comparison.

CBR multimedia stream to a roaming mobile under four mobility schemes:
pure Mobile IP, flat Cellular IP hard and semisoft handoff, and the
paper's multi-tier + RSMC.  The paper's claims are the ordering of the
loss and delay columns.
"""

import math

from benchmarks.conftest import run_once
from repro.experiments import experiment_e8


def test_bench_e8_scheme_comparison(benchmark, record_result):
    result = run_once(
        benchmark,
        lambda: experiment_e8(
            seeds=(1, 2, 3), handoffs=6, handoff_interval=2.0, duration=16.0
        ),
    )
    record_result(result)

    schemes = result.x_values
    loss = dict(zip(schemes, result.series["loss_rate"]))
    delay = dict(zip(schemes, result.series["mean_delay"]))
    gap = dict(zip(schemes, result.series["max_gap"]))

    # Paper claim (shape): the proposed scheme loses (almost) nothing,
    # like semisoft, while plain Mobile IP loses the most.
    assert loss["mobile-ip"] > loss["cip-hard"] >= loss["cip-semisoft"]
    assert loss["multitier-rsmc"] <= loss["cip-hard"]
    assert loss["multitier-rsmc"] < 0.005
    # Paper claim: QoS (delay) — Mobile IP pays the triangle route.
    assert delay["mobile-ip"] > delay["cip-hard"]
    # Interruption: Mobile IP's registration gap dominates everyone's.
    assert gap["mobile-ip"] >= max(gap["cip-semisoft"], gap["multitier-rsmc"])
    assert all(not math.isnan(value) for value in result.series["mean_delay"])
