"""E10: idle-mode paging economy.

Idle mobiles maintained by slow paging-updates versus a no-paging
system where they must refresh route caches at the fast cadence.
"""

import math

from benchmarks.conftest import run_once
from repro.experiments import experiment_e10


def test_bench_e10_paging_economy(benchmark, record_result):
    result = run_once(
        benchmark,
        lambda: experiment_e10(seeds=(1, 2), mobile_counts=(2, 4, 8, 16), duration=25.0),
    )
    record_result(result)

    savings = result.series["savings_factor"]
    delays = result.series["paging_first_packet_delay"]
    # Shape: paging saves roughly the period ratio (10x) in control load.
    assert all(value > 4.0 for value in savings)
    # And idle mobiles remain reachable (paging found them).
    assert all(not math.isnan(value) for value in delays)
    assert all(value < 0.5 for value in delays)
