"""Kernel microbenchmarks: raw event and packet throughput.

These are true pytest-benchmark microbenchmarks (multiple rounds) and
document the simulator's capacity: how many events/packets per wall-
clock second the substrate sustains, which bounds feasible experiment
sizes.
"""

from repro.net import Network, Packet
from repro.sim import Simulator


def run_timeout_chain(count):
    sim = Simulator()

    def chain():
        for _ in range(count):
            yield sim.timeout(1.0)

    sim.process(chain())
    sim.run()
    return sim.now


def test_bench_kernel_event_throughput(benchmark):
    result = benchmark(run_timeout_chain, 10_000)
    assert result == 10_000.0


def run_callback_storm(count):
    sim = Simulator()
    hits = []
    for index in range(count):
        sim.schedule(float(index % 97), hits.append, index)
    sim.run()
    return len(hits)


def test_bench_kernel_callback_throughput(benchmark):
    result = benchmark(run_callback_storm, 10_000)
    assert result == 10_000


def run_packet_chain(count):
    sim = Simulator()
    network = Network(sim)
    src = network.host("src")
    r1 = network.router("r1")
    r2 = network.router("r2")
    dst = network.host("dst")
    network.connect(src, r1, bandwidth=1e9, queue_limit=count + 1)
    network.connect(r1, r2, bandwidth=1e9, queue_limit=count + 1)
    network.connect(r2, dst, bandwidth=1e9, queue_limit=count + 1)
    network.install_routes()
    received = []
    dst.on_default(lambda packet, link: received.append(packet.uid))
    for _ in range(count):
        src.send_via(r1, Packet(src=src.address, dst=dst.address, size=500))
    sim.run()
    return len(received)


def test_bench_packet_forwarding_throughput(benchmark):
    result = benchmark(run_packet_chain, 2_000)
    assert result == 2_000
