"""T2 (§1 claim): location-management scaling, hierarchy vs a flat
central registration scheme."""

from benchmarks.conftest import run_once
from repro.experiments import experiment_t2


def test_bench_t2_scaling(benchmark, record_result, execution_backend):
    # REPRO_BENCH_JOBS=N runs the four sweep points on N workers; the
    # table is identical either way, only the wall-clock shrinks.
    result = run_once(
        benchmark,
        lambda: experiment_t2(
            seeds=(1,),
            mobile_counts=(8, 16, 32, 64),
            duration=15.0,
            backend=execution_backend,
        ),
    )
    record_result(result)

    hier = result.series["hier_hops/s"]
    flat = result.series["flat_hops/s"]
    station_load = result.series["max_station_load/s"]
    updates = result.series["updates/s"]
    # Shape: the hierarchy spends fewer message-hops than routing every
    # refresh across the wired Internet to a central server.
    assert all(h < f for h, f in zip(hier, flat))
    # Per-station load never exceeds the aggregate update rate (the
    # hierarchy cannot be worse than the central server).
    assert all(s <= u * 1.01 for s, u in zip(station_load, updates))
