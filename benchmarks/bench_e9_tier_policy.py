"""E9 (§3.2): the speed factor of the handoff decision.

Vehicles and pedestrians roam the Fig 3.1 strip under three tier
policies; the paper's speed-aware policy should park vehicles on the
macro umbrella and cut their handoff churn.
"""

from benchmarks.conftest import run_once
from repro.experiments import experiment_e9


def test_bench_e9_policy_ablation(benchmark, record_result):
    result = run_once(
        benchmark,
        lambda: experiment_e9(seeds=(1, 2), duration=120.0, vehicles=3, pedestrians=3),
    )
    record_result(result)

    policies = result.x_values
    vehicle = dict(zip(policies, result.series["veh_handoffs_per_min"]))
    on_macro = dict(zip(policies, result.series["vehicles_on_macro"]))

    # Shape: the paper's policy produces the least vehicle churn and
    # keeps vehicles on the macro tier; always-micro churns the most.
    assert vehicle["speed-aware (paper)"] <= vehicle["always-strongest"]
    assert vehicle["speed-aware (paper)"] < vehicle["always-micro"]
    assert on_macro["speed-aware (paper)"] >= on_macro["always-micro"]
