"""Cross-stack scenario smoke bench: per-stack wall-clock.

Runs the ``campus-dense`` smoke scenario once under each registered
protocol stack (multitier / cellularip / mobileip) and records one
pytest-benchmark timing per stack, so stack-cost regressions (a
baseline suddenly 10x slower than the paper's architecture) show up in
the bench history.  ``REPRO_BENCH_JOBS=N`` routes the per-seed jobs
through a pool backend, as with every engine-aware bench.
"""

import pytest

from benchmarks.conftest import run_once
from repro.scenarios import get_scenario, replicate_scenario
from repro.stacks import stack_names


@pytest.mark.parametrize("stack", stack_names())
def test_bench_scenario_stack_smoke(benchmark, execution_backend, stack):
    spec = get_scenario("campus-dense").smoke().replace(stack=stack)
    replication = run_once(
        benchmark,
        lambda: replicate_scenario(spec, backend=execution_backend),
    )
    # Shape: the run produced traffic and every mobile ended attached.
    assert replication.mean("sent") > 0
    assert replication.mean("attached") == float(spec.population)
    # Shape: the common cross-stack metrics all came back finite.
    for name in ("loss_rate", "mean_delay", "handoffs", "hop_total"):
        value = replication.mean(name)
        assert value == value  # not NaN
