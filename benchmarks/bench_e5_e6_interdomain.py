"""E5/E6 (Figs 3.2/3.3): inter-domain handoff, same vs different
upper BS.

The same-upper case resolves inside the domain hierarchy; the
different-upper case pays authentication plus the home-network round
trip, so its service interruption grows with home-agent distance.
"""

from benchmarks.conftest import run_once
from repro.experiments import experiment_e5_e6


def test_bench_e5_e6_interdomain(benchmark, record_result):
    result = run_once(
        benchmark,
        lambda: experiment_e5_e6(
            seeds=(1, 2), home_delays=(0.010, 0.025, 0.050, 0.100)
        ),
    )
    record_result(result)

    same_gap = result.series["same_upper_gap"]
    diff_gap = result.series["diff_upper_gap"]
    ha_involved = result.series["diff_ha_involved"]
    # Shape: the home network is involved only in the different-upper case,
    # whose interruption exceeds same-upper everywhere and grows with
    # home distance, while same-upper stays flat.
    assert all(d > s for d, s in zip(diff_gap, same_gap))
    assert diff_gap[-1] > diff_gap[0]
    assert max(same_gap) - min(same_gap) < 0.02
    assert all(value == 1.0 for value in ha_involved)
