"""V1: simulator-vs-analysis validation table.

Compares the simulated channel-pool blocking probabilities against
Erlang-B and the guard-channel birth-death model — the credibility
check behind every admission-control number in E7/E7b.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import erlang_b, guard_channel_blocking
from repro.experiments.runner import ExperimentResult
from repro.metrics.tables import format_table
from repro.sim import GuardedChannelPool, RandomStreams, Simulator


def simulate_blocking(servers, guard, new_load, handoff_load, duration, seed):
    """Simulate a guarded loss system; returns (P_block_new, P_drop_ho)."""
    sim = Simulator()
    pool = GuardedChannelPool(sim, capacity=servers, guard=guard)
    streams = RandomStreams(seed)
    counts = {"new": 0, "new_blocked": 0, "ho": 0, "ho_blocked": 0}

    def hold_then_release(request, holding):
        def proc():
            yield sim.timeout(holding)
            pool.release(request)

        sim.process(proc())

    def arrival_stream(kind, rate, admit):
        def proc():
            while True:
                yield sim.timeout(streams.exponential(f"{kind}-gap", 1.0 / rate))
                counts[kind] += 1
                request = admit()
                if request is None:
                    counts[f"{kind}_blocked"] += 1
                else:
                    hold_then_release(
                        request, streams.exponential(f"{kind}-hold", 1.0)
                    )

        sim.process(proc())

    arrival_stream("new", new_load, pool.admit_new_call)
    if handoff_load > 0:
        arrival_stream("ho", handoff_load, pool.admit_handoff)
    sim.run(until=duration)
    p_new = counts["new_blocked"] / max(counts["new"], 1)
    p_ho = counts["ho_blocked"] / max(counts["ho"], 1) if handoff_load else 0.0
    return p_new, p_ho


def build_validation_table():
    cases = [
        # (servers, guard, new_load, handoff_load)
        (4, 0, 3.0, 0.0),
        (8, 0, 6.0, 0.0),
        (8, 2, 4.0, 2.0),
        (16, 2, 10.0, 3.0),
    ]
    rows = []
    for servers, guard, new_load, handoff_load in cases:
        if guard == 0 and handoff_load == 0.0:
            analytic_new = erlang_b(servers, new_load)
            analytic_ho = 0.0
        else:
            analytic_new, analytic_ho = guard_channel_blocking(
                servers, guard, new_load, handoff_load
            )
        sims = [
            simulate_blocking(servers, guard, new_load, handoff_load, 4000.0, seed)
            for seed in (1, 2, 3)
        ]
        sim_new = float(np.mean([s[0] for s in sims]))
        sim_ho = float(np.mean([s[1] for s in sims]))
        rows.append(
            [
                f"c={servers} g={guard} a_n={new_load} a_h={handoff_load}",
                analytic_new,
                sim_new,
                analytic_ho,
                sim_ho,
            ]
        )
    text = format_table(
        ["case", "analytic_P_new", "sim_P_new", "analytic_P_ho", "sim_P_ho"],
        rows,
        title="V1: channel blocking, simulation vs closed form",
    )
    return ExperimentResult(
        experiment_id="V1",
        title="Simulator validation against Erlang-B / guard-channel models",
        x_label="case",
        x_values=[row[0] for row in rows],
        series={
            "analytic_P_new": [row[1] for row in rows],
            "sim_P_new": [row[2] for row in rows],
            "analytic_P_ho": [row[3] for row in rows],
            "sim_P_ho": [row[4] for row in rows],
        },
        text=text,
        notes="The kernel's guarded channel pools reproduce classic "
        "teletraffic results, so E7/E7b blocking numbers are trustworthy.",
    )


def test_bench_v1_blocking_validation(benchmark, record_result):
    result = run_once(benchmark, build_validation_table)
    record_result(result)

    for analytic, simulated in zip(
        result.series["analytic_P_new"], result.series["sim_P_new"]
    ):
        assert abs(simulated - analytic) < max(0.15 * analytic, 0.01)
    for analytic, simulated in zip(
        result.series["analytic_P_ho"], result.series["sim_P_ho"]
    ):
        assert abs(simulated - analytic) < max(0.25 * analytic, 0.01)
