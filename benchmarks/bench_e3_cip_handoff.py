"""E3 (Fig 2.4): Cellular IP hard vs semisoft handoff.

Loss per handoff for the break-then-make hard scheme versus the
dual-path semisoft scheme, across handoff rates.
"""

from benchmarks.conftest import run_once
from repro.experiments import experiment_e3


def test_bench_e3_hard_vs_semisoft(benchmark, record_result):
    result = run_once(
        benchmark,
        lambda: experiment_e3(
            seeds=(1, 2), handoff_intervals=(0.5, 1.0, 2.0, 4.0), duration=12.0
        ),
    )
    record_result(result)

    hard = result.series["hard_loss_rate"]
    semisoft = result.series["semisoft_loss_rate"]
    # Shape: hard handoff always loses at least as much as semisoft, and
    # strictly more when handoffs are frequent.
    assert all(h >= s for h, s in zip(hard, semisoft))
    assert hard[0] > semisoft[0]
    # Shape: hard-handoff loss decreases as handoffs get rarer.
    assert hard[0] > hard[-1]
    # Semisoft keeps loss (near) zero everywhere.
    assert max(semisoft) < 0.01
