"""Collect kernel/stack benchmark timings into ``benchmarks/BENCH_kernel.json``.

The committed baseline gives bench history a fixed reference point: it
records, per benchmark, the timing stats of the last collection run
plus enough shape metadata (rounds, parametrization) that a regression
check can tell "the bench changed" from "the machine changed".

Usage::

    PYTHONPATH=src python tools/update_bench_baseline.py            # collect + merge
    PYTHONPATH=src python tools/update_bench_baseline.py --check    # shape check only

Collect mode runs the kernel-throughput and per-stack scenario benches
under ``pytest-benchmark --benchmark-json``, reduces each benchmark to
a small stats record and **merges** it into the baseline: entries for
benchmarks that ran are replaced, entries for benchmarks that did not
run (e.g. collecting on a subset) are preserved, and the result is
written with sorted keys so diffs stay minimal.  ``--check`` validates
the committed file's shape without running anything (used by the test
suite): it must parse, carry the schema version, and every entry must
have the numeric stats fields.

Timings are machine-dependent by nature; the baseline records them for
trend reading, while the *shape* (which benchmarks exist, how they are
parametrized) is the part tests pin.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parent.parent
BASELINE = REPO / "benchmarks" / "BENCH_kernel.json"

#: The bench files collected into the baseline.
BENCH_FILES = (
    "benchmarks/bench_kernel_throughput.py",
    "benchmarks/bench_scenario_stacks.py",
)

SCHEMA = 1

#: Per-benchmark stats copied from the pytest-benchmark report.
_STAT_FIELDS = ("min", "max", "mean", "stddev", "rounds")


def collect(files=BENCH_FILES) -> dict:
    """Run ``files`` under pytest-benchmark and reduce the JSON report."""
    with tempfile.TemporaryDirectory() as tmp:
        report_path = pathlib.Path(tmp) / "bench.json"
        proc = subprocess.run(
            [
                sys.executable, "-m", "pytest", "-q", *files,
                f"--benchmark-json={report_path}",
            ],
            cwd=REPO,
            env={**__import__("os").environ, "PYTHONPATH": "src"},
        )
        if proc.returncode != 0:
            raise SystemExit(f"bench run failed (exit {proc.returncode})")
        report = json.loads(report_path.read_text())
    entries = {}
    for bench in report["benchmarks"]:
        stats = {field: bench["stats"][field] for field in _STAT_FIELDS}
        entries[bench["name"]] = {
            "file": bench["fullname"].split("::")[0],
            "group": bench.get("group"),
            "params": bench.get("params"),
            "stats": stats,
        }
    return {
        "machine": report.get("machine_info", {}).get("machine", ""),
        "datetime": report.get("datetime", ""),
        "entries": entries,
    }


def merge(baseline: dict, collected: dict) -> dict:
    """New collection overrides matching entries, preserves the rest."""
    entries = dict(baseline.get("entries", {}))
    entries.update(collected["entries"])
    return {
        "schema": SCHEMA,
        "machine": collected["machine"],
        "datetime": collected["datetime"],
        "entries": entries,
    }


def load_baseline(path: pathlib.Path = BASELINE) -> dict:
    if path.exists():
        return json.loads(path.read_text())
    return {"schema": SCHEMA, "entries": {}}


def check(baseline: dict) -> list[str]:
    """Shape-validate a baseline dict; returns a list of problems."""
    problems = []
    if baseline.get("schema") != SCHEMA:
        problems.append(f"schema must be {SCHEMA}, got {baseline.get('schema')!r}")
    entries = baseline.get("entries")
    if not isinstance(entries, dict) or not entries:
        problems.append("entries must be a non-empty mapping")
        return problems
    for name, entry in entries.items():
        stats = entry.get("stats", {})
        for field in _STAT_FIELDS:
            value = stats.get(field)
            if not isinstance(value, (int, float)) or value != value:
                problems.append(f"{name}: stats.{field} missing or non-numeric")
        if not isinstance(entry.get("file"), str) or not entry["file"]:
            problems.append(f"{name}: missing source file")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="validate the committed baseline's shape without running benches",
    )
    args = parser.parse_args(argv)
    if args.check:
        problems = check(load_baseline())
        for problem in problems:
            print(f"BENCH_kernel.json: {problem}", file=sys.stderr)
        print(
            f"BENCH_kernel.json: "
            f"{len(load_baseline().get('entries', {}))} entries, "
            f"{'OK' if not problems else f'{len(problems)} problem(s)'}"
        )
        return 1 if problems else 0
    merged = merge(load_baseline(), collect())
    BASELINE.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
    print(f"wrote {BASELINE.relative_to(REPO)} ({len(merged['entries'])} entries)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
