"""Collect kernel/stack benchmark timings into ``benchmarks/BENCH_kernel.json``.

The committed baseline gives bench history a fixed reference point: it
records, per benchmark, the timing stats of the last collection run
plus enough shape metadata (rounds, parametrization) that a regression
check can tell "the bench changed" from "the machine changed".

Usage::

    PYTHONPATH=src python tools/update_bench_baseline.py            # collect + merge
    PYTHONPATH=src python tools/update_bench_baseline.py --check    # shape check only
    PYTHONPATH=src python tools/update_bench_baseline.py --check \
        --report bench.json --tolerance 5    # CI bench regression gate

Collect mode runs the kernel-throughput and per-stack scenario benches
under ``pytest-benchmark --benchmark-json``, reduces each benchmark to
a small stats record and **merges** it into the baseline: entries for
benchmarks that ran are replaced, entries for benchmarks that did not
run (e.g. collecting on a subset) are preserved, and the result is
written with sorted keys so diffs stay minimal.  Every collection also
appends a **trajectory point** (per-bench means, datetime, optional
``--label``) to the file's ``trajectory`` list, so the speed history
across PRs stays readable instead of being overwritten.  ``--check``
validates the committed file's shape without running anything (used by
the test suite): it must parse, carry the schema version, every entry
must have the numeric stats fields, and the trajectory must be a
non-empty list of well-formed points.

Timings are machine-dependent by nature; the baseline records them for
trend reading, while the *shape* (which benchmarks exist, how they are
parametrized) is the part tests pin.  The CI gate therefore compares
within a generous *tolerance band*: ``--check --report <json>`` fails
only when a fresh pytest-benchmark report's mean exceeds the baseline
mean by more than ``--tolerance``x (catching order-of-magnitude
slowdowns, not machine jitter), and when a reported bench has no
baseline entry at all (a new bench must be collected into the
baseline before it can be gated).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parent.parent
BASELINE = REPO / "benchmarks" / "BENCH_kernel.json"

#: The bench files collected into the baseline.
BENCH_FILES = (
    "benchmarks/bench_kernel_throughput.py",
    "benchmarks/bench_scenario_stacks.py",
    "benchmarks/bench_shard_scaling.py",
)

SCHEMA = 2

#: Per-benchmark stats copied from the pytest-benchmark report.
_STAT_FIELDS = ("min", "max", "mean", "stddev", "rounds")


def trajectory_point(collected: dict, label: str = "") -> dict:
    """Reduce one collection to a trajectory point: name -> mean.

    The trajectory is the baseline's history dimension — one point per
    collection run, so speedups (and regressions) across PRs stay
    readable in the committed file instead of being overwritten by the
    latest merge.  Means only: the full stats of the *latest* run live
    in ``entries``.
    """
    means = {}
    for name, entry in sorted(collected["entries"].items()):
        mean = entry.get("stats", {}).get("mean")
        if isinstance(mean, (int, float)):
            means[name] = mean
    return {
        "datetime": collected.get("datetime", ""),
        "machine": collected.get("machine", ""),
        "label": label,
        "means": means,
    }


def collect(files=BENCH_FILES) -> dict:
    """Run ``files`` under pytest-benchmark and reduce the JSON report."""
    with tempfile.TemporaryDirectory() as tmp:
        report_path = pathlib.Path(tmp) / "bench.json"
        proc = subprocess.run(
            [
                sys.executable, "-m", "pytest", "-q", *files,
                f"--benchmark-json={report_path}",
            ],
            cwd=REPO,
            env={**__import__("os").environ, "PYTHONPATH": "src"},
        )
        if proc.returncode != 0:
            raise SystemExit(f"bench run failed (exit {proc.returncode})")
        report = json.loads(report_path.read_text())
    entries = {}
    for bench in report["benchmarks"]:
        stats = {field: bench["stats"][field] for field in _STAT_FIELDS}
        entries[bench["name"]] = {
            "file": bench["fullname"].split("::")[0],
            "group": bench.get("group"),
            "params": bench.get("params"),
            "stats": stats,
        }
    return {
        "machine": report.get("machine_info", {}).get("machine", ""),
        "datetime": report.get("datetime", ""),
        "entries": entries,
    }


def merge(baseline: dict, collected: dict, label: str = "") -> dict:
    """New collection overrides matching entries, preserves the rest.

    Also **appends** a trajectory point for the collection (see
    :func:`trajectory_point`).  A pre-trajectory baseline (schema 1)
    is migrated, not discarded: its committed stats become the
    trajectory's first point so the history starts at the old numbers.
    """
    entries = dict(baseline.get("entries", {}))
    entries.update(collected["entries"])
    trajectory = list(baseline.get("trajectory", []))
    if not trajectory and baseline.get("entries"):
        trajectory.append(
            trajectory_point(baseline, label="pre-trajectory baseline")
        )
    trajectory.append(trajectory_point(collected, label))
    return {
        "schema": SCHEMA,
        "machine": collected["machine"],
        "datetime": collected["datetime"],
        "entries": entries,
        "trajectory": trajectory,
    }


def load_baseline(path: pathlib.Path = BASELINE) -> dict:
    if path.exists():
        return json.loads(path.read_text())
    return {"schema": SCHEMA, "entries": {}}


def check(baseline: dict) -> list[str]:
    """Shape-validate a baseline dict; returns a list of problems."""
    problems = []
    if baseline.get("schema") != SCHEMA:
        problems.append(f"schema must be {SCHEMA}, got {baseline.get('schema')!r}")
    entries = baseline.get("entries")
    if not isinstance(entries, dict) or not entries:
        problems.append("entries must be a non-empty mapping")
        return problems
    for name, entry in entries.items():
        stats = entry.get("stats", {})
        for field in _STAT_FIELDS:
            value = stats.get(field)
            if not isinstance(value, (int, float)) or value != value:
                problems.append(f"{name}: stats.{field} missing or non-numeric")
        if not isinstance(entry.get("file"), str) or not entry["file"]:
            problems.append(f"{name}: missing source file")
    trajectory = baseline.get("trajectory")
    if not isinstance(trajectory, list) or not trajectory:
        problems.append(
            "trajectory must be a non-empty list (collect at least once)"
        )
    else:
        for position, point in enumerate(trajectory):
            if not isinstance(point, dict):
                problems.append(f"trajectory[{position}]: not a mapping")
                continue
            if not isinstance(point.get("datetime"), str):
                problems.append(f"trajectory[{position}]: missing datetime")
            means = point.get("means")
            if not isinstance(means, dict) or not means:
                problems.append(
                    f"trajectory[{position}]: means must be a non-empty mapping"
                )
                continue
            for name, mean in means.items():
                if not isinstance(mean, (int, float)) or mean != mean:
                    problems.append(
                        f"trajectory[{position}]: mean for {name} non-numeric"
                    )
    return problems


def compare_timings(baseline: dict, report: dict, tolerance: float) -> list[str]:
    """Tolerance-band timing comparison; returns a list of problems.

    ``report`` is a raw pytest-benchmark JSON report.  A benchmark
    regresses when its fresh mean exceeds ``tolerance`` times its
    baseline mean; a reported benchmark missing from the baseline is a
    problem too (collect it first).  Benchmarks only in the baseline
    are fine — CI may gate on a subset.  Pure function, no I/O.
    """
    if tolerance <= 1:
        raise ValueError(f"tolerance must be > 1, got {tolerance}")
    entries = baseline.get("entries", {})
    problems = []
    for bench in report.get("benchmarks", []):
        name = bench["name"]
        entry = entries.get(name)
        if entry is None:
            problems.append(
                f"{name}: no baseline entry; run "
                f"tools/update_bench_baseline.py to collect it"
            )
            continue
        base_mean = entry["stats"]["mean"]
        fresh_mean = bench["stats"]["mean"]
        if base_mean > 0 and fresh_mean > base_mean * tolerance:
            problems.append(
                f"{name}: mean {fresh_mean:.6f}s exceeds baseline "
                f"{base_mean:.6f}s by more than {tolerance:g}x "
                f"({fresh_mean / base_mean:.1f}x)"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="validate the committed baseline's shape without running benches",
    )
    parser.add_argument(
        "--report", type=pathlib.Path, default=None,
        help="with --check: a fresh pytest-benchmark JSON report to gate "
             "against the baseline within the tolerance band",
    )
    parser.add_argument(
        "--tolerance", type=float, default=5.0,
        help="with --check --report: fail when a fresh mean exceeds the "
             "baseline mean by more than this factor (default: 5)",
    )
    parser.add_argument(
        "--label", default="",
        help="free-text label recorded on the new trajectory point "
             "(collect mode only), e.g. the PR or change being measured",
    )
    args = parser.parse_args(argv)
    if args.report is not None and not args.check:
        parser.error("--report only makes sense with --check")
    if args.check:
        baseline = load_baseline()
        problems = check(baseline)
        if args.report is not None and not problems:
            report = json.loads(args.report.read_text())
            problems = compare_timings(baseline, report, args.tolerance)
            compared = len(report.get("benchmarks", []))
            print(
                f"bench gate: {compared} benchmark(s) vs baseline at "
                f"{args.tolerance:g}x tolerance"
            )
        for problem in problems:
            print(f"BENCH_kernel.json: {problem}", file=sys.stderr)
        print(
            f"BENCH_kernel.json: "
            f"{len(baseline.get('entries', {}))} entries, "
            f"{'OK' if not problems else f'{len(problems)} problem(s)'}"
        )
        return 1 if problems else 0
    merged = merge(load_baseline(), collect(), label=args.label)
    BASELINE.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
    print(
        f"wrote {BASELINE.relative_to(REPO)} "
        f"({len(merged['entries'])} entries, "
        f"{len(merged['trajectory'])} trajectory point(s))"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
