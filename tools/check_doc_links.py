"""Check that every relative link in the docs resolves to a real file.

Scans ``README.md`` and ``docs/*.md`` for markdown links and image
references, ignores absolute URLs (``http(s)://``, ``mailto:``) and
pure in-page anchors (``#...``), and verifies each remaining target —
resolved against the file containing it, minus any ``#fragment`` —
exists on disk.  Exits non-zero listing every broken link.

Run from the repository root (CI does)::

    python tools/check_doc_links.py
"""

from __future__ import annotations

import pathlib
import re
import sys

#: Inline markdown links/images: [text](target) / ![alt](target).
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")


def broken_links(root: pathlib.Path) -> list[str]:
    """Every broken relative link under ``root``, as ``file: target``."""
    documents = [root / "README.md"] + sorted((root / "docs").glob("*.md"))
    problems: list[str] = []
    for document in documents:
        if not document.exists():
            continue
        for target in _LINK.findall(document.read_text()):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (document.parent / path).resolve()
            if not resolved.exists():
                problems.append(f"{document.relative_to(root)}: {target}")
    return problems


def main() -> int:
    """CLI entry point: print broken links, return a shell exit code."""
    root = pathlib.Path(__file__).resolve().parent.parent
    problems = broken_links(root)
    for problem in problems:
        print(f"broken link - {problem}", file=sys.stderr)
    if problems:
        return 1
    print("all relative docs links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
