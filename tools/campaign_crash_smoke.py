"""CI smoke for campaign crash/resume byte-identity (one-shot, no pytest).

Exercises the campaign layer's headline guarantee end to end, the way
CI likes it — three real CLI invocations and a ``diff -r``:

1. create two campaigns from the same knobs and the same ``--name``
   (the name is stamped into the manifest digest and merged store, so
   byte-parity requires sharing it);
2. run the reference campaign to completion, serially, uninterrupted;
3. run the other as a subprocess worker with ``--batch-size 1`` and
   SIGKILL it as soon as the first atomic completion record lands;
4. resume the killed campaign with ``--jobs 2``;
5. ``diff -r`` the two directories: manifest, every per-item record
   and the merged ``results.json`` must be byte-identical.

Exits non-zero (with the differing file named by ``diff``) on any
divergence.  Usage::

    PYTHONPATH=src python tools/campaign_crash_smoke.py [workdir]
"""

from __future__ import annotations

import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

REPO = pathlib.Path(__file__).resolve().parent.parent

SCENARIO = "flash-crowd"  # ~0.2s per smoke seed: a wide kill window
SEEDS = ("1", "2", "3", "4", "5", "6")
NAME = "crash-smoke"
KILL_DEADLINE = 120.0  # seconds to wait for the first record


def _cli(*argv: str) -> None:
    env = {**os.environ, "PYTHONPATH": "src"}
    subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        cwd=REPO, env=env, check=True,
    )


def _new(directory: pathlib.Path) -> None:
    _cli(
        "campaign", "new", str(directory), "--scenarios", SCENARIO,
        "--smoke", "--seeds", *SEEDS, "--name", NAME,
    )


def _kill_after_first_record(directory: pathlib.Path) -> None:
    env = {**os.environ, "PYTHONPATH": "src"}
    worker = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "campaign", "run",
            str(directory), "--batch-size", "1",
        ],
        cwd=REPO, env=env,
    )
    items = directory / "items"
    start = time.monotonic()
    try:
        while time.monotonic() - start < KILL_DEADLINE:
            if worker.poll() is not None:
                raise SystemExit(
                    "worker finished before it could be killed — "
                    "the kill window is too small for this machine"
                )
            if any(items.glob("*.json")):
                break
            time.sleep(0.005)
        else:
            raise SystemExit("no completion record before the deadline")
    finally:
        if worker.poll() is None:
            worker.send_signal(signal.SIGKILL)
        worker.wait(timeout=30)
    done = len(list(items.glob("*.json")))
    print(f"worker SIGKILLed with {done}/{len(SEEDS)} record(s) on disk")


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv:
        workdir = pathlib.Path(argv[0])
        workdir.mkdir(parents=True, exist_ok=True)
    else:
        workdir = pathlib.Path(tempfile.mkdtemp(prefix="campaign-smoke-"))
    straight = workdir / "straight"
    killed = workdir / "killed"

    print(f"== campaign crash smoke in {workdir}")
    _new(straight)
    _new(killed)
    print("== uninterrupted serial reference run")
    _cli("campaign", "run", str(straight))
    print("== kill a --batch-size 1 worker after its first record")
    _kill_after_first_record(killed)
    print("== resume with --jobs 2")
    _cli("campaign", "resume", str(killed), "--jobs", "2")
    print("== diff -r killed-then-resumed vs uninterrupted")
    subprocess.run(
        ["diff", "-r", str(straight), str(killed)], check=True,
    )
    print("byte-identical: crash/resume left no trace in the results")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
