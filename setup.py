"""Shim for legacy editable installs (`pip install -e .`).

The execution environment has no `wheel` package, so the PEP 517
editable path is unavailable; this file lets pip fall back to
``setup.py develop``. All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
