"""Unit tests for the shared air-interface contention model.

Covers the `repro.radio.channel` semantics in isolation: FIFO airtime
arbitration at the channel rate, deterministic mobile-index
tie-breaking within one simulation instant, separate uplink/downlink
budgets, claim migration (detach cancels queued airtime, in-flight
serialization completes), `ChannelPlan` tier budget resolution, and
the legacy-mode contract (``shared_channel=None`` links behave exactly
as before).
"""

import pytest

from repro.net.link import Link, connect
from repro.net.node import Node
from repro.net.packet import Packet
from repro.radio.cells import TIER_DEFAULTS, Cell, Tier
from repro.radio.channel import (
    DOWNLINK,
    UPLINK,
    ChannelPlan,
    SharedChannel,
    airtime_key,
)
from repro.radio.geometry import Point
from repro.sim.kernel import Simulator


class Recorder(Node):
    """A node logging (time, seq) for every locally delivered packet."""

    def __init__(self, sim, name, address, log):
        super().__init__(sim, name, address)
        self.log = log

    def deliver_local(self, packet, link):
        self.log.append((self.name, self.sim.now, packet.seq))


def make_pair(sim, log, name, address, key, channel, delay=0.0):
    bs = Node(sim, f"bs-{name}", f"10.0.1.{key + 1}")
    mobile = Recorder(sim, name, address, log)
    link = Link(
        sim,
        bs,
        mobile,
        bandwidth=100e6,
        delay=delay,
        shared_channel=channel,
        channel_direction=DOWNLINK,
        channel_key=key,
    )
    return bs, mobile, link


def packet(dst, seq, size=500):
    return Packet(src="10.0.0.1", dst=dst, size=size, protocol="data", seq=seq)


# ----------------------------------------------------------------------
# Arbitration semantics
# ----------------------------------------------------------------------
def test_airtime_is_serialized_at_the_channel_rate():
    sim = Simulator()
    log = []
    channel = SharedChannel(sim, "air", downlink_bps=8000.0, uplink_bps=4000.0)
    _, _, link = make_pair(sim, log, "m0", "10.99.0.1", 0, channel)
    for seq in range(3):  # 500 B at 1000 B/s = 0.5 s airtime each
        assert link.transmit(packet("10.99.0.1", seq))
    sim.run()
    assert [(t, s) for _, t, s in log] == [(0.5, 0), (1.0, 1), (1.5, 2)]
    assert channel.stats.granted[DOWNLINK] == 3
    assert channel.stats.busy_seconds[DOWNLINK] == pytest.approx(1.5)


def test_same_instant_submissions_grant_in_mobile_key_order():
    sim = Simulator()
    log = []
    channel = SharedChannel(sim, "air", 8000.0, 4000.0)
    _, _, high = make_pair(sim, log, "m-high", "10.99.0.1", 9, channel)
    _, _, low = make_pair(sim, log, "m-low", "10.99.0.2", 3, channel)
    # Submission order is high-key first; grant order must be key order.
    high.transmit(packet("10.99.0.1", 1))
    low.transmit(packet("10.99.0.2", 2))
    sim.run()
    assert log == [("m-low", 0.5, 2), ("m-high", 1.0, 1)]


def test_fifo_across_time_beats_key_order():
    sim = Simulator()
    log = []
    channel = SharedChannel(sim, "air", 8000.0, 4000.0)
    _, _, high = make_pair(sim, log, "m-high", "10.99.0.1", 9, channel)
    _, _, low = make_pair(sim, log, "m-low", "10.99.0.2", 3, channel)
    high.transmit(packet("10.99.0.1", 1))
    # Arrives later while the channel is busy: queues behind, despite
    # its smaller key (FIFO by submission time, key only breaks ties).
    sim.schedule(0.1, low.transmit, packet("10.99.0.2", 2))
    sim.run()
    assert log == [("m-high", 0.5, 1), ("m-low", 1.0, 2)]


def test_release_path_grants_defer_to_same_instant_arbitration():
    sim = Simulator()
    log = []
    channel = SharedChannel(sim, "air", 8000.0, 4000.0)
    _, _, first = make_pair(sim, log, "m-first", "10.99.0.1", 0, channel)
    _, _, high = make_pair(sim, log, "m-high", "10.99.0.2", 5, channel)
    _, _, low = make_pair(sim, log, "m-low", "10.99.0.3", 1, channel)
    first.transmit(packet("10.99.0.1", 0))  # busy until t=0.5
    # At t=0.5 the first serialization finishes and two rivals submit
    # in the same instant — key 5 causally before the release, key 1
    # causally after it.  The grant must wait for the instant's
    # arbitration event, so the smaller key still wins.
    sim.schedule(0.5, high.transmit, packet("10.99.0.2", 5))
    sim.schedule(
        0.25,
        lambda: sim.schedule(0.25, low.transmit, packet("10.99.0.3", 1)),
    )
    sim.run()
    assert [(name, s) for name, _, s in log] == [
        ("m-first", 0),
        ("m-low", 1),
        ("m-high", 5),
    ]


def test_uplink_and_downlink_budgets_are_independent():
    sim = Simulator()
    log = []
    channel = SharedChannel(sim, "air", downlink_bps=8000.0, uplink_bps=8000.0)
    bs, mobile, down = make_pair(sim, log, "m0", "10.99.0.1", 0, channel)
    up = Link(
        sim,
        mobile,
        bs,
        bandwidth=100e6,
        delay=0.0,
        shared_channel=channel,
        channel_direction=UPLINK,
        channel_key=0,
    )
    down.transmit(packet("10.99.0.1", 1))
    up.transmit(packet("10.0.1.1", 2))
    sim.run()
    # Directions never contend with each other: both finish at 0.5.
    assert channel.stats.busy_seconds[DOWNLINK] == pytest.approx(0.5)
    assert channel.stats.busy_seconds[UPLINK] == pytest.approx(0.5)
    assert ("m0", 0.5, 1) in log


def test_propagation_delay_added_after_airtime():
    sim = Simulator()
    log = []
    channel = SharedChannel(sim, "air", 8000.0, 4000.0)
    _, _, link = make_pair(sim, log, "m0", "10.99.0.1", 0, channel, delay=0.25)
    link.transmit(packet("10.99.0.1", 1))
    sim.run()
    assert log == [("m0", 0.75, 1)]


# ----------------------------------------------------------------------
# Claims and handoff migration
# ----------------------------------------------------------------------
def test_detach_cancels_queued_airtime_but_not_in_flight():
    sim = Simulator()
    log = []
    channel = SharedChannel(sim, "air", 8000.0, 4000.0)
    _, _, link = make_pair(sim, log, "m0", "10.99.0.1", 7, channel)
    channel.attach(7)
    for seq in range(3):
        link.transmit(packet("10.99.0.1", seq))
    # At 0.6 s: packet 0 delivered, packet 1 serializing, packet 2
    # queued.  Detaching cancels only packet 2.
    sim.schedule(0.6, channel.detach, 7)
    sim.run()
    assert [s for _, _, s in log] == [0, 1]
    assert channel.stats.dropped_on_detach[DOWNLINK] == 1
    assert link.stats.dropped_error == 1
    assert link.queue_depth == 0
    assert 7 not in channel.attached


def test_detach_frees_airtime_for_other_mobiles():
    sim = Simulator()
    log = []
    channel = SharedChannel(sim, "air", 8000.0, 4000.0)
    _, _, leaver = make_pair(sim, log, "leaver", "10.99.0.1", 1, channel)
    _, _, stayer = make_pair(sim, log, "stayer", "10.99.0.2", 2, channel)
    channel.attach(1)
    channel.attach(2)
    for seq in range(3):
        leaver.transmit(packet("10.99.0.1", seq))
    stayer.transmit(packet("10.99.0.2", 10))
    # Without the detach the stayer's packet would finish at 2.0 s;
    # cancelling the leaver's queued airtime pulls it in to 1.5 s.
    sim.schedule(0.6, channel.detach, 1)
    sim.run()
    assert ("stayer", 1.5, 10) in log


def test_attach_is_idempotent_and_migration_tracks_claims():
    sim = Simulator()
    old = SharedChannel(sim, "air-old", 8000.0, 4000.0)
    new = SharedChannel(sim, "air-new", 8000.0, 4000.0)
    old.attach(4)
    old.attach(4)
    assert old.total_attaches == 1
    # Make-before-break: claim on both, then the old side detaches.
    new.attach(4)
    old.detach(4)
    old.detach(4)  # idempotent
    assert 4 not in old.attached and 4 in new.attached


# ----------------------------------------------------------------------
# Legacy mode and construction validation
# ----------------------------------------------------------------------
def test_legacy_link_without_channel_is_untouched():
    sim = Simulator()
    log = []
    a = Node(sim, "a", "10.0.0.1")
    b = Recorder(sim, "b", "10.0.0.2", log)
    link = Link(sim, a, b, bandwidth=8000.0, delay=0.0)
    assert link.shared_channel is None
    for seq in range(2):
        link.transmit(packet("10.0.0.2", seq))
    sim.run()
    assert [(t, s) for _, t, s in log] == [(0.5, 0), (1.0, 1)]


def test_connect_assigns_downlink_forward_uplink_backward():
    sim = Simulator()
    channel = SharedChannel(sim, "air", 8000.0, 4000.0)
    bs = Node(sim, "bs", "10.0.0.1")
    mobile = Node(sim, "mn", "10.99.0.1")
    forward, backward = connect(
        sim, bs, mobile, shared_channel=channel, channel_key=5
    )
    assert forward.channel_direction == DOWNLINK
    assert backward.channel_direction == UPLINK
    assert forward.channel_key == backward.channel_key == 5


def test_channel_rejects_nonpositive_budgets_and_bad_direction():
    sim = Simulator()
    with pytest.raises(ValueError):
        SharedChannel(sim, "air", 0.0, 1e6)
    with pytest.raises(ValueError):
        SharedChannel(sim, "air", 1e6, -1.0)
    with pytest.raises(ValueError):
        Link(
            sim,
            Node(sim, "a", "10.0.0.1"),
            Node(sim, "b", "10.0.0.2"),
            channel_direction="sideways",
        )


def test_channel_plan_budgets_resolve_overrides_and_tier_defaults():
    plan = ChannelPlan(macro_bandwidth=500e3, pico_bandwidth=8e6)
    macro = Cell(name="m", center=Point(0, 0), tier=Tier.MACRO)
    micro = Cell(name="u", center=Point(0, 0), tier=Tier.MICRO)
    pico = Cell(name="p", center=Point(0, 0), tier=Tier.PICO)
    assert plan.budgets(macro) == (500e3, 250e3)
    assert plan.budgets(pico) == (8e6, 4e6)
    assert plan.budgets(micro) == (
        TIER_DEFAULTS[Tier.MICRO]["channel_downlink"],
        TIER_DEFAULTS[Tier.MICRO]["channel_uplink"],
    )
    with pytest.raises(ValueError):
        ChannelPlan(micro_bandwidth=0.0)
    with pytest.raises(ValueError):
        ChannelPlan(uplink_fraction=0.0)


def test_airtime_key_prefers_explicit_index_over_name_hash():
    sim = Simulator()
    node = Node(sim, "mn3", "10.99.0.1")
    hashed = airtime_key(node)
    node.airtime_key = 3
    assert airtime_key(node) == 3
    assert isinstance(hashed, int) and hashed != 3


def test_cell_channel_budgets_default_per_tier():
    cell = Cell(name="c", center=Point(0, 0), tier=Tier.PICO)
    assert cell.channel_downlink == TIER_DEFAULTS[Tier.PICO]["channel_downlink"]
    assert cell.channel_uplink == TIER_DEFAULTS[Tier.PICO]["channel_uplink"]
    custom = Cell(
        name="c2", center=Point(0, 0), tier=Tier.PICO, channel_downlink=1e6
    )
    assert custom.channel_downlink == 1e6
