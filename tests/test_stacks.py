"""Tests for the pluggable protocol-stack backends (`repro.stacks`).

Pins the stacks refactor's load-bearing guarantees:

* registry integrity and eager unknown-stack failure (spec validation,
  ``get_stack``, CLI ``--stack``);
* cross-stack determinism — per-stack repeat==repeat and
  serial==pool(2) byte-identity on a smoke scenario;
* the shared population plan: identical offered traffic across stacks
  at one seed;
* one-batch dispatch for ``--stack all`` comparisons, and regrouping
  equal to per-stack replication;
* the golden regression: ``stack="multitier"`` output byte-identical
  to the committed pre-refactor ``results/scenarios_smoke/`` tables;
* Mobile IP uplink shared-channel contention (the ROADMAP nicety).
"""

import multiprocessing
import pathlib

import pytest

from repro.experiments.exec import ProcessPoolBackend, SerialBackend
from repro.scenarios import (
    compare_scenario_stacks,
    format_stack_comparison,
    get_scenario,
    replicate_scenario,
    run_scenario_spec,
)
from repro.stacks import (
    COMMON_METRICS,
    DEFAULT_STACK,
    get_stack,
    iter_stacks,
    register_stack,
    stack_names,
)

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAS_FORK, reason="platform lacks fork")

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

BASELINES = ["cellularip", "cellularip-hard", "mobileip"]
ALL_STACKS = [DEFAULT_STACK] + BASELINES


def _smoke(name="campus-dense", stack=DEFAULT_STACK):
    return get_scenario(name).smoke().replace(stack=stack)


# ----------------------------------------------------------------------
# Registry + spec validation
# ----------------------------------------------------------------------
def test_four_stacks_registered_in_order():
    assert stack_names() == ALL_STACKS
    for adapter in iter_stacks():
        assert adapter.name and adapter.description


def test_get_stack_unknown_lists_registered_names():
    with pytest.raises(
        KeyError, match="multitier, cellularip, cellularip-hard, mobileip"
    ):
        get_stack("hawaii")


def test_register_stack_rejects_duplicates():
    adapter = get_stack("cellularip")
    with pytest.raises(ValueError, match="already registered"):
        register_stack(adapter)
    register_stack(adapter, replace=True)  # idempotent with replace


def test_spec_validates_stack_field_eagerly():
    spec = get_scenario("sparse-rural")
    assert spec.stack == DEFAULT_STACK
    for stack in BASELINES:
        assert spec.replace(stack=stack).stack == stack
    with pytest.raises(ValueError, match="registered: multitier"):
        spec.replace(stack="hawaii")
    with pytest.raises(ValueError, match="non-empty"):
        spec.replace(stack="")


def test_smoke_and_derived_specs_preserve_stack():
    spec = _smoke(stack="mobileip")
    assert spec.smoke().stack == "mobileip"
    assert spec.scaled(2.0).stack == "mobileip"


# ----------------------------------------------------------------------
# Metric contract
# ----------------------------------------------------------------------
@pytest.mark.parametrize("stack", ALL_STACKS)
def test_stack_emits_common_metrics_as_plain_floats(stack):
    metrics = run_scenario_spec(_smoke(stack=stack), seed=2)
    for name in COMMON_METRICS:
        assert name in metrics, f"{stack} lacks common metric {name}"
    for name, value in metrics.items():
        assert isinstance(value, float), f"{stack}:{name}"
        assert value == value, f"{stack}:{name} is NaN"
    assert metrics["population"] == float(_smoke().population)
    assert metrics["sent"] > 0


@pytest.mark.parametrize(
    "stack,prefix",
    [("cellularip", "cip."), ("cellularip-hard", "cip."), ("mobileip", "mip.")],
)
def test_baseline_extras_are_namespaced(stack, prefix):
    metrics = run_scenario_spec(_smoke(stack=stack), seed=1)
    namespaced = [name for name in metrics if name.startswith(prefix)]
    assert namespaced, f"{stack} emitted no {prefix}* extras"
    # No foreign namespace leaks into another stack's dict.
    other = "mip." if prefix == "cip." else "cip."
    assert not any(name.startswith(other) for name in metrics)


def test_air_metrics_only_in_contention_mode():
    for stack in BASELINES:
        legacy = run_scenario_spec(_smoke(stack=stack), seed=1)
        assert "air_busiest_downlink" not in legacy
        contended = run_scenario_spec(
            _smoke("campus-air", stack=stack), seed=1
        )
        assert contended["air_busiest_downlink"] > 0


def test_shared_population_plan_offers_identical_traffic():
    """The apples-to-apples core: same seed, same offered load, every
    stack (city-rush-hour has no elastic feedback loop)."""
    sent = {
        stack: run_scenario_spec(_smoke("city-rush-hour", stack=stack), 1)["sent"]
        for stack in ALL_STACKS
    }
    assert len(set(sent.values())) == 1, sent


@pytest.mark.parametrize("domains", [1, 2])
def test_flat_layout_macro_micro_geometry_matches_multitier(domains):
    """Every baseline cell site sits exactly on the multi-tier world's
    cell of the same name (center, radius, tier) — the cross-stack
    "same geometry" guarantee for the macro and micro tables, which
    the hand-written site list in stacks/flat.py could otherwise
    silently drift away from."""
    from repro.multitier.architecture import MultiTierWorld
    from repro.stacks.flat import flat_cell_layout

    spec = get_scenario("sparse-rural").smoke().replace(domains=domains)
    world = MultiTierWorld(second_domain=domains == 2)
    world_cells = {bs.name: bs.cell for bs in world.all_radio_stations()}
    layout = {site.name: site for site in flat_cell_layout(spec)}
    # The flat layout mirrors every radio cell the multi-tier world has
    # (aggregation-only stations like R3 carry no cell and no site).
    assert set(layout) == set(world_cells)
    for name, site in layout.items():
        cell = world_cells[name]
        assert (site.center.x, site.center.y) == (
            cell.center.x, cell.center.y,
        ), name
        assert site.radius == cell.radius, name
        assert site.tier == cell.tier, name


@pytest.mark.parametrize("scenario", ["campus-dense", "campus-air"])
def test_flat_layout_pico_geometry_matches_multitier(scenario):
    """The baselines' pico cells sit exactly where the multi-tier
    world's do — legacy fixed offsets and contention-mode population
    concentration points alike (shared ``pico_placements`` rule)."""
    from repro.scenarios import build_scenario
    from repro.stacks.flat import flat_cell_layout
    from repro.stacks.population import (
        assignments,
        roam_rectangle,
        start_positions,
    )
    from repro.sim.rng import RandomStreams

    spec = get_scenario(scenario).smoke()
    assert spec.pico_cells > 0
    built = build_scenario(spec, seed=1)
    world_centers = [
        built.world.domain1.stations[f"p{i}"].cell.center
        for i in range(spec.pico_cells)
    ]
    streams = RandomStreams(1)
    mobility, traffic, _ = assignments(spec, streams)
    starts = start_positions(spec, streams, roam_rectangle(spec))
    flat_centers = [
        site.center
        for site in flat_cell_layout(spec, starts, mobility, traffic)
        if site.name.startswith("p")
    ]
    assert [(c.x, c.y) for c in flat_centers] == [
        (c.x, c.y) for c in world_centers
    ]


def test_mobileip_maps_wired_backhaul_override():
    """campus-dense's defining 2.5 Mbit/s choke applies to the Mobile
    IP access backhaul too — choked comparisons are apples-to-apples."""
    from repro.scenarios import build_scenario

    spec = _smoke("campus-dense", stack="mobileip")
    assert spec.domain_overrides["wired_bandwidth"] == 2.5e6
    built = build_scenario(spec, seed=1)
    core = built.network["internet"]
    for agent in built.agents:
        assert agent.link_to(core).bandwidth == 2.5e6
    adapter = get_stack("mobileip")
    assert any(
        "wired_bandwidth" in feature for feature in adapter.exercised(spec)
    )


# ----------------------------------------------------------------------
# Cross-stack determinism
# ----------------------------------------------------------------------
@pytest.mark.parametrize("stack", BASELINES)
def test_stack_repeat_same_seed_is_byte_identical(stack):
    spec = _smoke(stack=stack)
    assert run_scenario_spec(spec, seed=1) == run_scenario_spec(spec, seed=1)


@needs_fork
@pytest.mark.parametrize("stack", BASELINES)
def test_stack_serial_vs_pool_is_byte_identical(stack):
    spec = _smoke(stack=stack)
    seeds = [1, 2]
    serial = replicate_scenario(spec, seeds=seeds, backend=SerialBackend())
    pooled = replicate_scenario(
        spec, seeds=seeds, backend=ProcessPoolBackend(2)
    )
    assert serial.samples == pooled.samples
    assert serial.metrics == pooled.metrics


# ----------------------------------------------------------------------
# Cross-stack comparison batching
# ----------------------------------------------------------------------
class _CountingBackend(SerialBackend):
    """Serial backend that counts ``run`` batches."""

    def __init__(self):
        super().__init__()
        self.batches = 0
        self.jobs_seen = 0

    def run(self, jobs):
        self.batches += 1
        jobs = list(jobs)
        self.jobs_seen += len(jobs)
        return super().run(jobs)


def test_compare_dispatches_one_backend_batch():
    backend = _CountingBackend()
    specs = [_smoke("sparse-rural"), _smoke("city-rush-hour")]
    comparisons = compare_scenario_stacks(specs, backend=backend)
    assert backend.batches == 1
    # Whole (scenario, stack, seed) grid in that one batch.
    expected = sum(len(spec.seeds) for spec in specs) * len(ALL_STACKS)
    assert backend.jobs_seen == expected
    assert [c.spec.name for c in comparisons] == [s.name for s in specs]


def test_compare_matches_per_stack_replication():
    spec = _smoke("sparse-rural")
    (comparison,) = compare_scenario_stacks([spec], backend=SerialBackend())
    assert comparison.stacks == ALL_STACKS
    for stack in ALL_STACKS:
        single = replicate_scenario(
            spec.replace(stack=stack), backend=SerialBackend()
        )
        assert comparison.replications[stack].samples == single.samples
        assert comparison.replications[stack].metrics == single.metrics


def test_compare_rejects_unknown_stack_eagerly():
    backend = _CountingBackend()
    with pytest.raises(KeyError, match="registered"):
        compare_scenario_stacks(
            [_smoke()], stacks=["multitier", "hawaii"], backend=backend
        )
    assert backend.batches == 0  # failed before any simulation ran


def test_format_stack_comparison_is_deterministic_and_complete():
    spec = _smoke("city-rush-hour")
    render = [
        format_stack_comparison(
            compare_scenario_stacks([spec], backend=SerialBackend())[0]
        )
        for _ in range(2)
    ]
    assert render[0] == render[1]
    text = render[0]
    for stack in ALL_STACKS:
        assert stack in text
    for metric in ("loss_rate", "mean_delay", "handoffs"):
        assert metric in text
    assert "cip.route_updates" in text and "mip.tunneled" in text


# ----------------------------------------------------------------------
# Golden regression: the multitier path is byte-identical pre/post
# ----------------------------------------------------------------------
def test_multitier_scenario_smoke_matches_committed_goldens(tmp_path):
    """``scenario run all --smoke`` (default ``stack="multitier"``)
    must stay byte-identical to the pre-refactor output committed in
    ``results/scenarios_smoke/`` — the stacks refactor's compatibility
    contract for the hoisted builder."""
    from repro.cli import main

    assert main(["scenario", "run", "all", "--smoke", "-o", str(tmp_path)]) == 0
    goldens = REPO_ROOT / "results" / "scenarios_smoke"
    expected = sorted(p.name for p in goldens.glob("*.txt"))
    produced = sorted(p.name for p in tmp_path.glob("*.txt"))
    assert produced == expected
    mismatched = [
        name
        for name in produced
        if (tmp_path / name).read_bytes() != (goldens / name).read_bytes()
    ]
    assert not mismatched, (
        f"multitier scenario tables diverged from "
        f"results/scenarios_smoke/ goldens: {', '.join(mismatched)}"
    )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_rejects_unknown_stack_eagerly(capsys):
    from repro.cli import main

    assert main(["scenario", "run", "sparse-rural", "--stack", "nope"]) == 2
    err = capsys.readouterr().err
    assert "unknown stack" in err
    for stack in ALL_STACKS:
        assert stack in err
    assert main(["scenario", "sweep", "sparse-rural/population",
                 "--stack", "nope"]) == 2
    assert "unknown stack" in capsys.readouterr().err


def test_cli_stack_multitier_matches_default_output(capsys):
    from repro.cli import main

    argv = ["scenario", "run", "sparse-rural", "--smoke"]
    assert main(argv) == 0
    default_out = capsys.readouterr().out
    assert main(argv + ["--stack", "multitier"]) == 0
    explicit_out = capsys.readouterr().out
    strip = lambda text: [
        line for line in text.splitlines() if not line.startswith("[")
    ]
    assert strip(default_out) == strip(explicit_out)


def test_cli_stack_all_writes_comparison_table(capsys, tmp_path):
    from repro.cli import main

    argv = [
        "scenario", "run", "sparse-rural", "--smoke",
        "--stack", "all", "-o", str(tmp_path),
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "stack comparison" in out
    written = tmp_path / "scenario_sparse-rural_stacks.txt"
    assert written.exists()
    assert written.read_text().strip() in out


def test_cli_single_baseline_stack_names_stack_in_title(capsys, tmp_path):
    from repro.cli import main

    argv = [
        "scenario", "run", "sparse-rural", "--smoke",
        "--stack", "cellularip", "-o", str(tmp_path),
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "[stack=cellularip]" in out
    assert (tmp_path / "scenario_sparse-rural--cellularip.txt").exists()


def test_cli_describe_lists_stacks(capsys):
    from repro.cli import main

    assert main(["scenario", "describe", "campus-dense"]) == 0
    out = capsys.readouterr().out
    assert "stacks (select with --stack <name|all>)" in out
    for stack in ALL_STACKS:
        assert stack in out
    assert "exercises:" in out


def test_cli_sweep_stack_all_runs_every_stack(capsys):
    from repro.cli import main

    argv = [
        "scenario", "sweep", "sparse-rural/population", "--smoke",
        "--stack", "all",
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "[stack=cellularip]" in out and "[stack=mobileip]" in out
    assert "[stack=cellularip-hard]" in out
    assert "[4 sweeps completed" in out.splitlines()[-1] or "4 sweeps" in out


# ----------------------------------------------------------------------
# Mobile IP uplink shared-channel contention (ROADMAP nicety)
# ----------------------------------------------------------------------
def test_foreign_agent_uplink_contends_on_shared_channel():
    from repro.mobileip import ForeignAgent, MobileIPNode
    from repro.net.packet import Packet
    from repro.radio.channel import DOWNLINK, UPLINK, SharedChannel
    from repro.sim.kernel import Simulator

    sim = Simulator()
    channel = SharedChannel(sim, "air-fa", 384e3, 192e3)
    agent = ForeignAgent(
        sim, "fa", "10.0.0.1", shared_channel=channel
    )
    mobile = MobileIPNode(
        sim, "mn", home_address="10.99.0.5", home_agent_address="10.0.0.9"
    )
    mobile.airtime_key = 0
    agent.attach_mobile(mobile)
    assert 0 in channel.attached

    # Uplink data from the mobile serializes through the uplink budget.
    mobile.send_via(agent, Packet(
        src=mobile.address, dst="10.0.0.1", size=500,
        protocol="data", created_at=sim.now,
    ))
    sim.run(until=0.1)
    assert channel.stats.submitted[UPLINK] >= 1
    assert channel.stats.granted[UPLINK] >= 1
    # The attach-time advertisement rode the downlink budget.
    assert channel.stats.granted[DOWNLINK] >= 1

    # Detach cancels the claim (and any queued airtime).
    agent.detach_mobile(mobile)
    assert 0 not in channel.attached


def test_mobileip_stack_registration_uplink_counts_airtime():
    """End-to-end: a contention-mode Mobile IP scenario pushes its
    registration requests through the shared uplink queues."""
    from repro.radio.channel import UPLINK
    from repro.scenarios import build_scenario

    spec = _smoke("campus-air", stack="mobileip")
    built = build_scenario(spec, seed=1)
    metrics = built.execute()
    assert metrics["mip.registrations_accepted"] > 0
    uplink_submitted = sum(
        agent.shared_channel.stats.submitted[UPLINK]
        for agent in built.agents
        if agent.shared_channel is not None
    )
    assert uplink_submitted > 0
    assert "air_busiest_downlink" in metrics
