"""Unit tests for the discrete-event kernel: clock, events, processes."""

import pytest

from repro.sim import (
    EmptySchedule,
    Interrupt,
    SimulationError,
    Simulator,
)


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_clock_custom_start():
    sim = Simulator(start=42.0)
    assert sim.now == 42.0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(5.0)
    sim.run()
    assert sim.now == 5.0


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_run_until_time_stops_clock_exactly():
    sim = Simulator()
    sim.timeout(100.0)
    sim.run(until=30.0)
    assert sim.now == 30.0


def test_run_until_is_inclusive_of_events_at_stop_time():
    """run(until=t) processes events scheduled at exactly t."""
    sim = Simulator()
    fired = []
    sim.schedule(3.0, fired.append, "at-stop")
    sim.schedule(3.5, fired.append, "after-stop")
    sim.run(until=3.0)
    assert fired == ["at-stop"]
    assert sim.now == 3.0
    sim.run()
    assert fired == ["at-stop", "after-stop"]


def test_run_until_past_time_rejected():
    sim = Simulator(start=10.0)
    with pytest.raises(ValueError):
        sim.run(until=5.0)


def test_events_process_in_time_order():
    sim = Simulator()
    order = []
    for delay in (3.0, 1.0, 2.0):
        sim.schedule(delay, order.append, delay)
    sim.run()
    assert order == [1.0, 2.0, 3.0]


def test_simultaneous_events_fifo_order():
    sim = Simulator()
    order = []
    for tag in range(5):
        sim.schedule(1.0, order.append, tag)
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_step_on_empty_queue_raises():
    sim = Simulator()
    with pytest.raises(EmptySchedule):
        sim.step()


def test_process_runs_and_returns_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(2.0)
        return "done"

    process = sim.process(proc(sim))
    result = sim.run(until=process)
    assert result == "done"
    assert sim.now == 2.0


def test_process_waits_for_multiple_timeouts():
    sim = Simulator()
    times = []

    def proc(sim):
        for _ in range(3):
            yield sim.timeout(1.5)
            times.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert times == [1.5, 3.0, 4.5]


def test_process_can_wait_on_another_process():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(4.0)
        return 99

    def parent(sim, results):
        value = yield sim.process(child(sim))
        results.append((sim.now, value))

    results = []
    sim.process(parent(sim, results))
    sim.run()
    assert results == [(4.0, 99)]


def test_event_succeed_delivers_value():
    sim = Simulator()
    event = sim.event()
    got = []

    def waiter(sim, event):
        value = yield event
        got.append(value)

    sim.process(waiter(sim, event))
    sim.schedule(2.0, event.succeed, "hello")
    sim.run()
    assert got == ["hello"]


def test_event_cannot_trigger_twice():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(RuntimeError):
        event.succeed(2)


def test_event_fail_raises_in_waiting_process():
    sim = Simulator()
    event = sim.event()
    caught = []

    def waiter(sim, event):
        try:
            yield event
        except ValueError as error:
            caught.append(str(error))

    sim.process(waiter(sim, event))
    sim.schedule(1.0, event.fail, ValueError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_unhandled_failed_event_surfaces():
    sim = Simulator()
    event = sim.event()
    sim.schedule(1.0, event.fail, ValueError("nobody caught me"))
    with pytest.raises(ValueError, match="nobody caught me"):
        sim.run()


def test_process_exception_propagates_to_run():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1.0)
        raise KeyError("broken process")

    sim.process(bad(sim))
    with pytest.raises(KeyError):
        sim.run()


def test_yielding_non_event_fails_the_process():
    sim = Simulator()

    def bad(sim):
        yield 42

    sim.process(bad(sim))
    with pytest.raises(RuntimeError, match="non-event"):
        sim.run()


def test_yield_already_processed_event_resumes_immediately():
    sim = Simulator()
    log = []

    def proc(sim):
        timeout = sim.timeout(1.0, value="early")
        yield sim.timeout(5.0)
        value = yield timeout  # processed long ago
        log.append((sim.now, value))

    sim.process(proc(sim))
    sim.run()
    assert log == [(5.0, "early")]


def test_run_until_event_queue_empty_is_error():
    sim = Simulator()
    never = sim.event()
    sim.timeout(1.0)
    with pytest.raises(SimulationError):
        sim.run(until=never)


def test_run_until_already_processed_event_returns_value():
    sim = Simulator()
    timeout = sim.timeout(1.0, value="v")
    sim.run()
    assert sim.run(until=timeout) == "v"


def test_interrupt_wakes_sleeping_process():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt as interrupt:
            log.append((sim.now, interrupt.cause))

    process = sim.process(sleeper(sim))
    sim.schedule(3.0, process.interrupt, "wake-up")
    sim.run()
    assert log == [(3.0, "wake-up")]


def test_interrupt_terminated_process_raises():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1.0)

    process = sim.process(quick(sim))
    sim.run()
    with pytest.raises(RuntimeError):
        process.interrupt()


def test_process_cannot_interrupt_itself():
    sim = Simulator()

    def selfish(sim):
        yield sim.timeout(0.0)
        sim.active_process.interrupt()

    sim.process(selfish(sim))
    with pytest.raises(RuntimeError):
        sim.run()


def test_interrupted_process_can_continue():
    sim = Simulator()
    log = []

    def tenacious(sim):
        try:
            yield sim.timeout(50.0)
        except Interrupt:
            pass
        yield sim.timeout(2.0)
        log.append(sim.now)

    process = sim.process(tenacious(sim))
    sim.schedule(10.0, process.interrupt)
    sim.run()
    assert log == [12.0]


def test_schedule_callback_with_args():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, lambda a, b: seen.append(a + b), 2, 3)
    sim.run()
    assert seen == [5]


def test_process_is_alive_lifecycle():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(5.0)

    process = sim.process(proc(sim))
    assert process.is_alive
    sim.run()
    assert not process.is_alive


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(7.0)
    assert sim.peek() == 7.0
