"""Tests for geometry, cells, propagation and handoff triggering."""

import math

import numpy as np
import pytest

from repro.radio import (
    Cell,
    HandoffDetector,
    Point,
    PropagationModel,
    Rectangle,
    SignalMeter,
    Tier,
    best_covering_cell,
    free_space_path_loss_db,
    grid_positions,
    hex_positions,
    log_distance_path_loss_db,
)


# ----------------------------------------------------------------------
# Geometry
# ----------------------------------------------------------------------
def test_point_distance():
    assert Point(0, 0).distance_to(Point(3, 4)) == 5.0


def test_point_towards_does_not_overshoot():
    start = Point(0, 0)
    assert start.towards(Point(10, 0), 4.0) == Point(4.0, 0.0)
    assert start.towards(Point(2, 0), 100.0) == Point(2, 0)


def test_rectangle_contains_and_clamp():
    box = Rectangle(0, 0, 10, 10)
    assert box.contains(Point(5, 5))
    assert not box.contains(Point(11, 5))
    assert box.clamp(Point(-3, 15)) == Point(0, 10)


def test_rectangle_reflect():
    box = Rectangle(0, 0, 10, 10)
    reflected, flip_x, flip_y = box.reflect(Point(12, 5))
    assert reflected == Point(8, 5)
    assert flip_x and not flip_y


def test_rectangle_degenerate_rejected():
    with pytest.raises(ValueError):
        Rectangle(0, 0, 0, 10)


def test_grid_positions_count_and_containment():
    box = Rectangle(0, 0, 100, 100)
    points = list(grid_positions(box, rows=3, columns=4))
    assert len(points) == 12
    assert all(box.contains(point) for point in points)


def test_hex_positions_ring_counts():
    points = list(hex_positions(Point(0, 0), radius=100.0, rings=2))
    # 1 center + 6 + 12.
    assert len(points) == 19


# ----------------------------------------------------------------------
# Cells
# ----------------------------------------------------------------------
def test_cell_defaults_by_tier():
    micro = Cell("m1", Point(0, 0), Tier.MICRO)
    macro = Cell("M1", Point(0, 0), Tier.MACRO)
    assert macro.radius > micro.radius
    assert micro.bandwidth > macro.bandwidth


def test_cell_coverage():
    cell = Cell("c", Point(0, 0), Tier.MICRO, radius=100.0)
    assert cell.covers(Point(50, 0))
    assert not cell.covers(Point(150, 0))
    assert cell.edge_proximity(Point(50, 0)) == pytest.approx(0.5)


def test_best_covering_cell_prefers_closest_relative():
    near = Cell("near", Point(0, 0), Tier.MICRO, radius=100.0)
    far = Cell("far", Point(300, 0), Tier.MICRO, radius=400.0)
    best = best_covering_cell([near, far], Point(10, 0))
    assert best is near


def test_best_covering_cell_tier_filter():
    micro = Cell("m", Point(0, 0), Tier.MICRO, radius=100.0)
    macro = Cell("M", Point(0, 0), Tier.MACRO, radius=1000.0)
    assert best_covering_cell([micro, macro], Point(0, 0), tier=Tier.MACRO) is macro


def test_best_covering_cell_none_when_uncovered():
    cell = Cell("c", Point(0, 0), Tier.PICO, radius=50.0)
    assert best_covering_cell([cell], Point(500, 500)) is None


# ----------------------------------------------------------------------
# Propagation
# ----------------------------------------------------------------------
def test_free_space_loss_increases_with_distance():
    assert free_space_path_loss_db(200.0) > free_space_path_loss_db(100.0)


def test_free_space_loss_6db_per_doubling():
    delta = free_space_path_loss_db(200.0) - free_space_path_loss_db(100.0)
    assert delta == pytest.approx(20.0 * math.log10(2.0), abs=1e-9)


def test_log_distance_exponent_controls_slope():
    urban = log_distance_path_loss_db(1000.0, exponent=3.5)
    free = log_distance_path_loss_db(1000.0, exponent=2.0)
    assert urban > free


def test_propagation_rx_power_monotonic():
    model = PropagationModel(exponent=3.5)
    near = model.received_power_dbm(30.0, 10.0)
    far = model.received_power_dbm(30.0, 1000.0)
    assert near > far


def test_propagation_shadowing_requires_rng():
    with pytest.raises(ValueError):
        PropagationModel(shadowing_sigma_db=8.0)


def test_propagation_shadowing_changes_samples():
    rng = np.random.default_rng(7)
    model = PropagationModel(exponent=3.5, shadowing_sigma_db=8.0, rng=rng)
    samples = {model.received_power_dbm(30.0, 100.0) for _ in range(5)}
    assert len(samples) > 1


def test_range_for_threshold_inverts_loss():
    model = PropagationModel(exponent=3.5)
    rx_range = model.range_for_threshold(tx_power_dbm=30.0, rx_threshold_dbm=-90.0)
    at_edge = model.received_power_dbm(30.0, rx_range)
    assert at_edge == pytest.approx(-90.0, abs=0.1)


def test_invalid_distance_rejected():
    with pytest.raises(ValueError):
        free_space_path_loss_db(0.0)
    with pytest.raises(ValueError):
        log_distance_path_loss_db(-5.0)


# ----------------------------------------------------------------------
# Signal meter and handoff detector
# ----------------------------------------------------------------------
def make_two_cell_meter():
    # 400 m spacing: with 30 dBm tx, 3.5 exponent and a -95 dBm floor the
    # audible radius is ~296 m, so the two cells overlap between x=104
    # and x=296 (midpoint at x=200).
    left = Cell("left", Point(0, 0), Tier.MICRO, radius=400.0, tx_power_dbm=30.0)
    right = Cell("right", Point(400, 0), Tier.MICRO, radius=400.0, tx_power_dbm=30.0)
    meter = SignalMeter(PropagationModel(exponent=3.5), [left, right])
    return left, right, meter


def test_survey_orders_by_strength():
    left, right, meter = make_two_cell_meter()
    survey = meter.survey(Point(150, 0))
    assert len(survey) == 2
    assert survey[0].cell is left
    assert survey[0].rss_dbm > survey[1].rss_dbm


def test_survey_excludes_cells_below_floor():
    left, _right, meter = make_two_cell_meter()
    survey = meter.survey(Point(10, 0))
    assert [m.cell for m in survey] == [left]


def test_detector_initial_attachment():
    left, _right, meter = make_two_cell_meter()
    detector = HandoffDetector(meter)
    trigger = detector.check(None, Point(100, 0), now=0.0)
    assert trigger is not None
    assert trigger.target is left
    assert trigger.reason == "initial"


def test_detector_no_trigger_when_serving_strongest():
    left, _right, meter = make_two_cell_meter()
    detector = HandoffDetector(meter)
    assert detector.check(left, Point(100, 0), now=0.0) is None


def test_detector_hysteresis_blocks_marginal_improvement():
    left, right, meter = make_two_cell_meter()
    detector = HandoffDetector(meter, hysteresis_db=6.0)
    # Just past the midpoint (x=210 of 200): right leads by ~1.5 dB,
    # inside the 6 dB hysteresis margin.
    assert detector.check(left, Point(210, 0), now=0.0) is None


def test_detector_triggers_past_hysteresis():
    left, right, meter = make_two_cell_meter()
    detector = HandoffDetector(meter, hysteresis_db=4.0, drop_threshold_dbm=-100.0)
    # x=280: distances 280 vs 120 -> ~12.9 dB advantage for right.
    trigger = detector.check(left, Point(280, 0), now=0.0)
    assert trigger is not None
    assert trigger.target is right
    assert trigger.reason == "hysteresis"
    assert trigger.target_rss_dbm > trigger.serving_rss_dbm


def test_detector_time_to_trigger_delays_handoff():
    left, right, meter = make_two_cell_meter()
    detector = HandoffDetector(
        meter, hysteresis_db=4.0, drop_threshold_dbm=-100.0, time_to_trigger=2.0
    )
    position = Point(280, 0)
    assert detector.check(left, position, now=0.0) is None
    assert detector.check(left, position, now=1.0) is None
    trigger = detector.check(left, position, now=2.5)
    assert trigger is not None and trigger.target is right


def test_detector_signal_lost_overrides_hysteresis():
    left, right, meter = make_two_cell_meter()
    detector = HandoffDetector(meter, hysteresis_db=100.0, drop_threshold_dbm=-80.0)
    # x=280: serving (left) is ~-87 dBm, below the -80 drop threshold.
    trigger = detector.check(left, Point(280, 0), now=0.0)
    assert trigger is not None
    assert trigger.reason == "signal-lost"
