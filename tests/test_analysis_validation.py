"""Validate the simulator against closed-form teletraffic/mobility
models: Erlang-B blocking, guard-channel blocking, and fluid-flow
handoff rates."""

import math

import numpy as np
import pytest

from repro.analysis import (
    boundary_crossing_rate,
    circular_cell_crossing_rate,
    erlang_b,
    erlang_c,
    guard_channel_blocking,
    handoff_rate_linear_cells,
    location_update_cost,
    mean_cell_dwell_time,
)
from repro.sim import GuardedChannelPool, RandomStreams, Simulator


# ----------------------------------------------------------------------
# Formula sanity
# ----------------------------------------------------------------------
def test_erlang_b_known_values():
    # Classic table values.
    assert erlang_b(1, 1.0) == pytest.approx(0.5)
    assert erlang_b(2, 1.0) == pytest.approx(0.2)
    assert erlang_b(10, 5.0) == pytest.approx(0.0184, abs=2e-4)


def test_erlang_b_monotonic_in_load_and_servers():
    assert erlang_b(5, 4.0) > erlang_b(5, 2.0)
    assert erlang_b(10, 4.0) < erlang_b(5, 4.0)


def test_erlang_b_edge_cases():
    assert erlang_b(5, 0.0) == 0.0
    assert erlang_b(0, 3.0) == 1.0
    with pytest.raises(ValueError):
        erlang_b(-1, 1.0)
    with pytest.raises(ValueError):
        erlang_b(5, -1.0)


def test_erlang_c_exceeds_erlang_b():
    # Queueing probability >= clearing probability at equal load.
    assert erlang_c(5, 3.0) > erlang_b(5, 3.0)
    assert erlang_c(4, 4.5) == 1.0


def test_guard_channel_blocking_tradeoff():
    p_new_0, p_ho_0 = guard_channel_blocking(10, 0, 4.0, 2.0)
    p_new_2, p_ho_2 = guard_channel_blocking(10, 2, 4.0, 2.0)
    # Guard channels raise new-call blocking but cut handoff dropping.
    assert p_new_2 > p_new_0
    assert p_ho_2 < p_ho_0
    # With no guard, both classes see the same (Erlang-B) blocking.
    assert p_new_0 == pytest.approx(p_ho_0)
    assert p_new_0 == pytest.approx(erlang_b(10, 6.0), rel=1e-9)


def test_fluid_flow_formulas():
    # Circular cell: rate = 2 v / (pi r).
    assert circular_cell_crossing_rate(10.0, 400.0) == pytest.approx(
        2 * 10 / (math.pi * 400)
    )
    assert mean_cell_dwell_time(10.0, 400.0) == pytest.approx(
        math.pi * 400 / 20.0
    )
    assert handoff_rate_linear_cells(25.0, 700.0) == pytest.approx(25 / 700)
    assert location_update_cost(0.5, 4, 44) == pytest.approx(88.0)
    with pytest.raises(ValueError):
        circular_cell_crossing_rate(10.0, 0.0)


# ----------------------------------------------------------------------
# Simulation vs analysis
# ----------------------------------------------------------------------
def simulate_loss_system(servers, arrival_rate, mean_holding, duration, seed):
    """M/M/c/c loss system on the kernel's channel pool."""
    sim = Simulator()
    pool = GuardedChannelPool(sim, capacity=servers, guard=0)
    streams = RandomStreams(seed)
    counts = {"offered": 0, "blocked": 0}

    def release_later(request, holding):
        def proc():
            yield sim.timeout(holding)
            pool.release(request)

        sim.process(proc())

    def arrivals():
        while True:
            yield sim.timeout(streams.exponential("gap", 1.0 / arrival_rate))
            counts["offered"] += 1
            request = pool.admit_new_call()
            if request is None:
                counts["blocked"] += 1
            else:
                release_later(request, streams.exponential("hold", mean_holding))

    sim.process(arrivals())
    sim.run(until=duration)
    return counts["blocked"] / max(counts["offered"], 1)


@pytest.mark.parametrize(
    "servers,load",
    [(4, 3.0), (8, 6.0), (2, 1.0)],
)
def test_simulated_blocking_matches_erlang_b(servers, load):
    analytic = erlang_b(servers, load)
    simulated = np.mean(
        [
            simulate_loss_system(
                servers,
                arrival_rate=load,
                mean_holding=1.0,
                duration=3000.0,
                seed=seed,
            )
            for seed in (1, 2, 3)
        ]
    )
    assert simulated == pytest.approx(analytic, rel=0.15)


def test_simulated_highway_handoff_rate_matches_fluid_flow():
    """A 25 m/s vehicle crossing 700 m-spaced micro cells must hand off
    at about v/d per second."""
    from repro.mobility import Highway
    from repro.multitier.architecture import WORLD_BOUNDS, MultiTierWorld
    from repro.multitier.policy import AlwaysMicroPolicy
    from repro.radio.geometry import Point

    world = MultiTierWorld()
    mn = world.add_mobile("veh")
    model = Highway(Point(-2700, 0), WORLD_BOUNDS, None, speed=25.0, wrap=False)
    world.add_controller(mn, model, policy=AlwaysMicroPolicy(), sample_period=0.25)
    # Drive across B -> A -> C: 1400 m of contiguous micro coverage.
    duration = 1400 / 25.0
    world.sim.run(until=duration)
    expected = handoff_rate_linear_cells(25.0, 700.0) * duration  # = 2
    assert mn.handoffs_completed == pytest.approx(expected, abs=1)


def test_simulated_dwell_time_matches_fluid_flow():
    """Straight-line mobiles starting uniformly inside a circular cell
    exit after ~ 8r/(3 pi v) on average (mean interior exit chord)."""
    from repro.analysis import mean_residual_dwell_time
    from repro.mobility import RandomDirection
    from repro.radio.cells import Cell, Tier
    from repro.radio.geometry import Point, Rectangle

    rng = np.random.default_rng(5)
    radius, speed = 400.0, 10.0
    cell = Cell("c", Point(0, 0), Tier.MICRO, radius=radius)
    bounds = Rectangle(-2000, -2000, 2000, 2000)
    dwell_times = []
    for _ in range(300):
        # Uniform point in the disc (sqrt law for the radial draw).
        rho = float(np.sqrt(rng.random())) * radius
        phi = float(rng.random()) * 2.0 * np.pi
        start = Point(rho * np.cos(phi), rho * np.sin(phi))
        model = RandomDirection(
            start, bounds, rng, speed=speed, redirect_mean_interval=1e9
        )
        elapsed = 0.0
        while cell.covers(model.position) and elapsed < 1000.0:
            model.advance(0.25)
            elapsed += 0.25
        dwell_times.append(elapsed)
    expected = mean_residual_dwell_time(speed, radius)
    assert np.mean(dwell_times) == pytest.approx(expected, rel=0.10)


def test_locate_walks_pointer_chain():
    from repro.multitier.architecture import MultiTierWorld

    world = MultiTierWorld()
    d1 = world.domain1
    mn = world.add_mobile("mn")
    assert mn.initial_attach(d1["B"])
    world.sim.run(until=1.0)

    serving, probes = d1.rsmc.locate(mn.home_address)
    assert serving is d1["B"]
    # RSMC -> R3 -> R1 -> A -> B: five lookups, micro_table hits cost 1.
    assert 5 <= probes <= 10


def test_locate_cold_trail_returns_none():
    from repro.multitier.architecture import MultiTierWorld
    from repro.net import ip

    world = MultiTierWorld()
    ghost = ip("10.99.0.50")
    world.realm.register(ghost)
    serving, probes = world.domain1.rsmc.locate(ghost)
    assert serving is None
    assert probes >= 1
