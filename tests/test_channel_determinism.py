"""Contention-mode determinism and the legacy byte-identity contract.

Three guarantees this file pins down:

1. A channel-enabled scenario (``campus-air``, and any spec with a
   channel bandwidth set) is byte-identical serial vs ``--jobs 2`` and
   across repeats — the shared-channel arbiter adds no nondeterminism.
2. Handoff migrates a mobile's airtime claim between cells, in the
   multi-tier stack (make-before-break) and the Cellular IP stack
   (semisoft: claims briefly held on both stations).
3. With channels disabled (the default), all 16 reproduced experiment
   tables are byte-identical to the committed goldens in ``results/``
   — the legacy-mode compatibility contract of ``repro.radio.channel``.
"""

import multiprocessing
import pathlib

import pytest

from repro.experiments.exec import ProcessPoolBackend, SerialBackend
from repro.multitier.architecture import MultiTierWorld
from repro.radio.channel import ChannelPlan, airtime_key
from repro.scenarios import get_scenario, replicate_scenario, run_scenario_spec

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAS_FORK, reason="platform lacks fork")

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _channel_spec():
    spec = get_scenario("campus-air").smoke()
    assert spec.channels_enabled()
    return spec


# ----------------------------------------------------------------------
# 1. Contention-mode determinism
# ----------------------------------------------------------------------
def test_channel_scenario_repeat_same_seed_is_byte_identical():
    spec = _channel_spec()
    assert run_scenario_spec(spec, seed=1) == run_scenario_spec(spec, seed=1)


@needs_fork
def test_channel_scenario_serial_vs_pool_is_byte_identical():
    spec = _channel_spec()
    seeds = [1, 2]
    serial = replicate_scenario(spec, seeds=seeds, backend=SerialBackend())
    pooled = replicate_scenario(spec, seeds=seeds, backend=ProcessPoolBackend(2))
    assert serial.samples == pooled.samples
    assert serial.metrics == pooled.metrics


def test_channel_scenario_emits_air_metrics_legacy_does_not():
    contended = run_scenario_spec(_channel_spec(), seed=1)
    legacy = run_scenario_spec(get_scenario("campus-dense").smoke(), seed=1)
    assert "air_busiest_downlink" in contended
    assert "air_detach_drops" in contended
    # Legacy runs must not grow keys: that would change their rendered
    # tables and break pre-channel byte-identity.
    assert "air_busiest_downlink" not in legacy


# ----------------------------------------------------------------------
# 2. Airtime-claim migration on handoff
# ----------------------------------------------------------------------
def test_multitier_handoff_migrates_airtime_claim():
    world = MultiTierWorld(channel_plan=ChannelPlan())
    sim = world.sim
    b, c = world.domain1["B"], world.domain1["C"]
    assert b.shared_channel is not None and c.shared_channel is not None
    assert world.domain1["R3"].shared_channel is None  # no cell, no air

    mobile = world.add_mobile("mn0", bandwidth_demand=64e3, airtime_key=0)
    key = airtime_key(mobile)
    assert mobile.initial_attach(b)
    assert key in b.shared_channel.attached

    handoff = sim.process(mobile.perform_handoff(c))
    sim.run(until=handoff)
    sim.run(until=sim.now + 2.0)  # let the Delete Location land at B
    assert mobile.serving_bs is c
    assert key in c.shared_channel.attached
    assert key not in b.shared_channel.attached


def test_cip_semisoft_handoff_holds_claims_on_both_then_migrates():
    from repro.cellularip.base_station import CIPBaseStation, CIPDomain, CIPGateway
    from repro.cellularip.mobile_host import CIPMobileHost
    from repro.sim.kernel import Simulator

    sim = Simulator()
    domain = CIPDomain(sim, channel_bandwidth=1e6)
    gateway = CIPGateway(sim, "gw", "10.0.0.1", domain)
    old = CIPBaseStation(sim, "bs-old", "10.0.0.2", domain)
    new = CIPBaseStation(sim, "bs-new", "10.0.0.3", domain)
    domain.link(gateway, old)
    domain.link(gateway, new)
    assert old.shared_channel is not None
    assert old.shared_channel.rates["uplink"] == pytest.approx(0.5e6)

    host = CIPMobileHost(sim, "mh0", "10.99.0.1", domain, airtime_key=0)
    key = airtime_key(host)
    host.attach_to(old)
    sim.run(until=0.05)
    assert key in old.shared_channel.attached

    sim.process(host.handoff_semisoft(new))
    sim.run(until=sim.now + domain.semisoft_delay / 2)
    # Mid-semisoft: dual radio paths, claims on both channels.
    assert key in old.shared_channel.attached
    assert key in new.shared_channel.attached
    sim.run(until=sim.now + domain.semisoft_delay)
    assert key in new.shared_channel.attached
    assert key not in old.shared_channel.attached


def test_cip_domain_without_channel_bandwidth_stays_legacy():
    from repro.cellularip.base_station import CIPBaseStation, CIPDomain, CIPGateway
    from repro.sim.kernel import Simulator

    sim = Simulator()
    domain = CIPDomain(sim)
    gateway = CIPGateway(sim, "gw", "10.0.0.1", domain)
    bs = CIPBaseStation(sim, "bs", "10.0.0.2", domain)
    domain.link(gateway, bs)
    assert bs.shared_channel is None
    with pytest.raises(ValueError):
        CIPDomain(Simulator(), channel_bandwidth=0.0)


# ----------------------------------------------------------------------
# 3. Legacy regression: the 16 experiment tables vs the goldens
# ----------------------------------------------------------------------
def test_all_legacy_experiment_tables_match_committed_goldens(tmp_path):
    """Channels disabled (default): every table byte-identical to
    ``results/``.  This is the whole-suite regression gate for the
    shared-channel PR's compatibility contract — slow (~10 s), but it
    executes every reproduced experiment end to end."""
    from repro.cli import main

    assert main(["run", "all", "-o", str(tmp_path)]) == 0
    goldens = REPO_ROOT / "results"
    produced = sorted(p.name for p in tmp_path.glob("*.txt"))
    assert len(produced) == 16
    mismatched = [
        name
        for name in produced
        if (tmp_path / name).read_bytes() != (goldens / name).read_bytes()
    ]
    assert not mismatched, (
        f"legacy experiment tables diverged from results/ goldens: "
        f"{', '.join(mismatched)}"
    )
