"""Docs link integrity: every relative link in README.md and docs/*.md
must resolve to a file in the repository (deterministic filesystem
check; the same scan runs as a standalone CI step via
``tools/check_doc_links.py``)."""

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_all_relative_docs_links_resolve():
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    try:
        from check_doc_links import broken_links
    finally:
        sys.path.pop(0)
    problems = broken_links(REPO_ROOT)
    assert not problems, "broken docs links:\n" + "\n".join(problems)
