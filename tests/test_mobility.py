"""Tests for mobility models, including property-based bounds checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mobility import (
    GaussMarkov,
    Highway,
    ManhattanGrid,
    RandomDirection,
    RandomWaypoint,
    Stationary,
    TracePlayback,
    linear_crossing,
)
from repro.radio import Point, Rectangle

BOUNDS = Rectangle(0, 0, 1000, 1000)


def test_stationary_never_moves():
    model = Stationary(Point(5, 5), BOUNDS)
    for _ in range(10):
        assert model.advance(1.0) == Point(5, 5)
    assert model.speed == 0.0


def test_start_outside_bounds_rejected():
    with pytest.raises(ValueError):
        Stationary(Point(-1, 0), BOUNDS)


def test_random_waypoint_respects_speed_limit():
    rng = np.random.default_rng(1)
    model = RandomWaypoint(Point(500, 500), BOUNDS, rng, speed_range=(1.0, 3.0))
    previous = model.position
    for _ in range(200):
        current = model.advance(1.0)
        assert previous.distance_to(current) <= 3.0 + 1e-9
        previous = current


def test_random_waypoint_eventually_moves():
    rng = np.random.default_rng(2)
    model = RandomWaypoint(
        Point(500, 500), BOUNDS, rng, speed_range=(5.0, 5.0), pause_range=(0.0, 0.0)
    )
    start = model.position
    model.advance(30.0)
    assert model.position.distance_to(start) > 0


def test_random_waypoint_bad_ranges():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        RandomWaypoint(Point(0, 0), BOUNDS, rng, speed_range=(0.0, 1.0))
    with pytest.raises(ValueError):
        RandomWaypoint(Point(0, 0), BOUNDS, rng, pause_range=(5.0, 1.0))


def test_gauss_markov_alpha_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        GaussMarkov(Point(0, 0), BOUNDS, rng, alpha=1.5)


def test_gauss_markov_speed_tracks_mean():
    rng = np.random.default_rng(3)
    model = GaussMarkov(
        Point(500, 500), BOUNDS, rng, mean_speed=10.0, alpha=0.5, speed_sigma=0.5
    )
    speeds = []
    for _ in range(500):
        model.advance(1.0)
        speeds.append(model.speed)
    assert 5.0 < np.mean(speeds) < 15.0


def test_random_direction_constant_speed():
    rng = np.random.default_rng(4)
    model = RandomDirection(Point(500, 500), BOUNDS, rng, speed=12.0)
    previous = model.position
    for _ in range(100):
        current = model.advance(1.0)
        # Straight-line distance can be less after a bounce, never more.
        assert previous.distance_to(current) <= 12.0 + 1e-6
        previous = current
    assert model.speed == pytest.approx(12.0)


def test_highway_constant_velocity_and_wrap():
    model = Highway(Point(990, 500), BOUNDS, speed=25.0, direction=1, wrap=True)
    model.advance(1.0)
    # 990 + 25 = 1015 -> wraps to 15.
    assert model.position.x == pytest.approx(15.0)
    assert model.position.y == 500.0


def test_highway_bounce_mode_reverses():
    model = Highway(Point(995, 500), BOUNDS, speed=10.0, direction=1, wrap=False)
    model.advance(1.0)
    assert model.position.x == pytest.approx(995.0)
    assert model.direction == -1


def test_highway_stays_in_lane():
    model = Highway(Point(0, 300), BOUNDS, speed=30.0)
    for _ in range(100):
        assert model.advance(1.0).y == 300


def test_manhattan_stays_on_grid():
    rng = np.random.default_rng(5)
    model = ManhattanGrid(
        Point(500, 500), BOUNDS, rng, block_size=100.0, speed=10.0
    )
    for _ in range(300):
        position = model.advance(1.0)
        on_street = (
            abs(position.x % 100.0) < 1e-6
            or abs(position.x % 100.0 - 100.0) < 1e-6
            or abs(position.y % 100.0) < 1e-6
            or abs(position.y % 100.0 - 100.0) < 1e-6
        )
        assert on_street, position


def test_trace_playback_interpolates():
    trace = TracePlayback(
        [(0.0, Point(0, 0)), (10.0, Point(100, 0))], BOUNDS
    )
    assert trace.advance(5.0) == Point(50, 0)
    assert trace.speed == pytest.approx(10.0)
    assert trace.advance(5.0) == Point(100, 0)
    # Past the end: stays put.
    assert trace.advance(5.0) == Point(100, 0)


def test_trace_requires_sorted_times():
    with pytest.raises(ValueError):
        TracePlayback([(5.0, Point(0, 0)), (1.0, Point(1, 1))], BOUNDS)


def test_linear_crossing_factory():
    trace = linear_crossing(Point(0, 0), Point(0, 100), duration=4.0, bounds=BOUNDS)
    trace.advance(2.0)
    assert trace.position == Point(0, 50)


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    steps=st.integers(1, 100),
    dt=st.floats(0.1, 5.0),
)
def test_all_models_never_leave_bounds(seed, steps, dt):
    rng = np.random.default_rng(seed)
    start = Point(500, 500)
    models = [
        RandomWaypoint(start, BOUNDS, rng),
        GaussMarkov(start, BOUNDS, rng),
        RandomDirection(start, BOUNDS, rng),
        Highway(start, BOUNDS, rng, speed=30.0),
        ManhattanGrid(start, BOUNDS, rng),
    ]
    for model in models:
        for _ in range(steps):
            position = model.advance(dt)
            assert BOUNDS.contains(position), (type(model).__name__, position)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_models_deterministic_given_seed(seed):
    def run(seed):
        rng = np.random.default_rng(seed)
        model = RandomWaypoint(Point(500, 500), BOUNDS, rng)
        return [model.advance(1.0) for _ in range(20)]

    assert run(seed) == run(seed)
