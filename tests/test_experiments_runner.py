"""Tests for the experiment harness: replication, sweeps, the scheme
baselines and the CLI."""

import math

import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    run_cip_hard,
    run_cip_semisoft,
    run_mobileip,
    run_multitier_rsmc,
)
from repro.experiments.runner import replicate, sweep


def test_replicate_aggregates_metrics():
    def scenario(seed):
        return {"value": float(seed), "constant": 2.0}

    replication = replicate(scenario, seeds=[1, 2, 3])
    assert replication.mean("value") == pytest.approx(2.0)
    assert replication["constant"].half_width == 0.0
    assert replication.samples["value"] == [1.0, 2.0, 3.0]


def test_replicate_confidence_interval_contains_mean():
    def scenario(seed):
        return {"value": float(seed % 5)}

    replication = replicate(scenario, seeds=range(20))
    estimate = replication["value"]
    assert estimate.low <= estimate.mean <= estimate.high
    assert estimate.n == 20


def test_sweep_builds_series_and_text():
    def make_scenario(x):
        def scenario(seed):
            return {"doubled": 2.0 * x, "seeded": float(seed)}

        return scenario

    result = sweep(
        "TEST",
        "a test sweep",
        "x",
        [1, 2, 3],
        make_scenario,
        seeds=[1, 2],
        metric_names=["doubled", "seeded"],
    )
    assert result.series["doubled"] == [2.0, 4.0, 6.0]
    assert result.series["seeded"] == [1.5, 1.5, 1.5]
    assert "a test sweep" in result.text
    assert result.series_mean("doubled") == pytest.approx(4.0)


def test_all_experiments_registry_complete():
    expected = {
        "E1", "E2", "E3", "E4", "E5/E6", "E7", "E7b", "E8", "E8b", "E9",
        "E10", "E11", "T1", "T2", "AB1", "AB2",
    }
    assert set(ALL_EXPERIMENTS) == expected


@pytest.mark.parametrize(
    "runner",
    [run_mobileip, run_cip_hard, run_cip_semisoft, run_multitier_rsmc],
    ids=["mobile-ip", "cip-hard", "cip-semisoft", "multitier-rsmc"],
)
def test_baseline_schemes_produce_complete_metrics(runner):
    metrics = runner(seed=1, handoffs=2, handoff_interval=1.0, duration=4.0)
    for key in ("loss_rate", "mean_delay", "jitter", "max_gap", "sent", "received"):
        assert key in metrics
        assert not math.isnan(metrics[key]) or key == "mean_delay"
    assert metrics["sent"] > 0
    assert 0.0 <= metrics["loss_rate"] <= 1.0
    assert metrics["received"] <= metrics["sent"]


def test_e8_ordering_holds_on_single_seed():
    """The headline ordering must hold even without averaging."""
    results = {
        name: runner(seed=3, handoffs=4, handoff_interval=1.5, duration=8.0)
        for name, runner in (
            ("mip", run_mobileip),
            ("hard", run_cip_hard),
            ("semisoft", run_cip_semisoft),
            ("rsmc", run_multitier_rsmc),
        )
    }
    assert results["mip"]["loss_rate"] > results["hard"]["loss_rate"]
    assert results["hard"]["loss_rate"] >= results["semisoft"]["loss_rate"]
    assert results["rsmc"]["loss_rate"] <= results["hard"]["loss_rate"]
    assert results["mip"]["mean_delay"] > results["hard"]["mean_delay"]


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_list(capsys):
    from repro.cli import main

    assert main(["list"]) == 0
    output = capsys.readouterr().out
    assert "E8" in output and "T1" in output


def test_cli_run_writes_output(tmp_path, capsys):
    from repro.cli import main

    assert main(["run", "T1", "-o", str(tmp_path)]) == 0
    output = capsys.readouterr().out
    assert "T1:" in output
    assert (tmp_path / "t1.txt").exists()


def test_cli_rejects_unknown_experiment(capsys):
    from repro.cli import main

    assert main(["run", "E99"]) == 2
    assert "unknown" in capsys.readouterr().err


def test_cli_jobs_flag_matches_serial_output(capsys):
    from repro.cli import main
    from repro.experiments import SerialBackend, get_default_backend

    assert main(["run", "T1"]) == 0
    serial_output = capsys.readouterr().out

    assert main(["run", "T1", "--jobs", "2"]) == 0
    parallel_output = capsys.readouterr().out

    # Identical tables (timing lines differ), and the process-wide
    # default backend is restored after the run.
    assert serial_output.splitlines()[:-2] == parallel_output.splitlines()[:-2]
    assert isinstance(get_default_backend(), SerialBackend)


def test_cli_rejects_bad_jobs(capsys):
    from repro.cli import main

    assert main(["run", "T1", "--jobs", "0"]) == 2
    assert "--jobs" in capsys.readouterr().err
