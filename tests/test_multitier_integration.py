"""End-to-end tests of the multi-tier architecture against the paper's
figures: location management (Fig 3.1), intra-domain handoff cases
(Fig 3.4), inter-domain handoff (Figs 3.2/3.3) and the RSMC data path
(Fig 4.1)."""

import pytest

from repro.multitier import messages
from repro.multitier.architecture import MultiTierWorld
from repro.net import Packet
from repro.radio.cells import Tier
from repro.sim import Simulator


@pytest.fixture
def world():
    return MultiTierWorld(second_domain=True)


def attach(world, mobile, station_name, domain="domain1"):
    handle = getattr(world, domain)
    assert mobile.initial_attach(handle[station_name])
    return handle[station_name]


def run_handoff(world, mobile, station):
    """Execute a handoff synchronously and return success."""
    result = []

    def runner():
        ok = yield from mobile.perform_handoff(station)
        result.append(ok)

    world.sim.process(runner())
    world.sim.run(until=world.sim.now + 2.0)
    return result[0] if result else False


# ----------------------------------------------------------------------
# Fig 3.1: location management
# ----------------------------------------------------------------------
def test_location_records_along_fig31_chain(world):
    """MN X under B: records must read (X,B-direct) at B, (X,B) at A,
    (X,A) at R1, (X,R1) at R3 — the paper's worked example."""
    d1 = world.domain1
    x = world.add_mobile("x")
    attach(world, x, "B")
    world.sim.run(until=1.0)

    record_b = d1["B"].tables.micro_table.peek(x.home_address)
    record_a = d1["A"].tables.micro_table.peek(x.home_address)
    record_r1 = d1["R1"].tables.micro_table.peek(x.home_address)
    record_r3 = d1["R3"].tables.micro_table.peek(x.home_address)
    assert record_b is not None and record_b.is_direct
    assert record_a is not None and record_a.via is d1["B"]
    assert record_r1 is not None and record_r1.via is d1["A"]
    assert record_r3 is not None and record_r3.via is d1["R1"]


def test_records_expire_without_location_messages(world):
    d1 = world.domain1
    x = world.add_mobile("x")
    attach(world, x, "B")
    world.sim.run(until=0.5)
    # Silence the refresh loop and detach the radio.
    x._location_loop.interrupt("test")
    d1["B"].detach_mobile(x)
    x.serving_bs = None
    lifetime = d1.domain.record_lifetime
    world.sim.run(until=0.5 + lifetime + 1.0)
    assert d1["R3"].tables.micro_table.peek(x.home_address) is None


def test_periodic_location_messages_refresh_records(world):
    d1 = world.domain1
    x = world.add_mobile("x")
    attach(world, x, "B")
    # Run well past the record lifetime: refreshes must keep it alive.
    world.sim.run(until=d1.domain.record_lifetime * 3)
    assert d1["R3"].tables.micro_table.peek(x.home_address) is not None
    assert x.location_messages_sent >= 10


def test_macro_attached_mn_recorded_in_macro_tables(world):
    d1 = world.domain1
    y = world.add_mobile("y")
    attach(world, y, "R1")
    world.sim.run(until=1.0)
    assert d1["R1"].tables.macro_table.peek(y.home_address) is not None
    assert d1["R3"].tables.macro_table.peek(y.home_address) is not None
    assert d1["R3"].tables.micro_table.peek(y.home_address) is None


# ----------------------------------------------------------------------
# Fig 3.4: the three intra-domain handoff cases
# ----------------------------------------------------------------------
def test_intra_domain_micro_to_micro_case_c(world):
    """Z moves F -> E: crossover at D; R2/R3 records unchanged."""
    d1 = world.domain1
    z = world.add_mobile("z")
    attach(world, z, "F")
    world.sim.run(until=1.0)
    assert run_handoff(world, z, d1["E"])
    world.sim.run(until=world.sim.now + 1.0)

    assert z.serving_bs is d1["E"]
    assert d1["E"].tables.micro_table.peek(z.home_address).is_direct
    assert d1["D"].tables.micro_table.peek(z.home_address).via is d1["E"]
    # The old branch is erased (Delete Location Message).
    assert d1["F"].tables.micro_table.peek(z.home_address) is None
    # Above the crossover nothing changed.
    assert d1["R2"].tables.micro_table.peek(z.home_address).via is d1["D"]


def test_intra_domain_macro_to_micro_case_a(world):
    """X on R1 demands bandwidth -> system switches it to micro B."""
    d1 = world.domain1
    x = world.add_mobile("x", bandwidth_demand=384e3)
    attach(world, x, "R1")
    world.sim.run(until=1.0)
    assert run_handoff(world, x, d1["B"])
    world.sim.run(until=world.sim.now + 1.0)

    assert x.serving_bs is d1["B"]
    assert d1["B"].tables.micro_table.peek(x.home_address).is_direct
    # R1's record for X moved from macro_table to micro_table.
    assert d1["R1"].tables.macro_table.peek(x.home_address) is None
    assert d1["R1"].tables.micro_table.peek(x.home_address).via is d1["A"]


def test_intra_domain_micro_to_macro_case_b(world):
    """Y leaves micro coverage -> macro R2 serves it."""
    d1 = world.domain1
    y = world.add_mobile("y")
    attach(world, y, "E")
    world.sim.run(until=1.0)
    assert run_handoff(world, y, d1["R2"])
    world.sim.run(until=world.sim.now + 1.0)

    assert y.serving_bs is d1["R2"]
    assert d1["R2"].tables.macro_table.peek(y.home_address).is_direct
    assert d1["R3"].tables.macro_table.peek(y.home_address).via is d1["R2"]
    assert d1["E"].tables.micro_table.peek(y.home_address) is None


def test_handoff_rejected_when_channels_full():
    world = MultiTierWorld(domain_kwargs={"guard_channels": 0})
    d1 = world.domain1
    target = d1["E"]
    # Saturate E's channel pool.
    fillers = []
    for index in range(target.channels.capacity):
        filler = world.add_mobile(f"filler{index}")
        assert filler.initial_attach(target)
        fillers.append(filler)
    world.sim.run(until=0.5)

    z = world.add_mobile("z")
    attach(world, z, "F")
    world.sim.run(until=1.0)
    assert not run_handoff(world, z, target)
    assert z.serving_bs is d1["F"]  # stays put after rejection
    assert z.handoffs_rejected == 1
    assert target.handoffs_rejected == 1


def test_guard_channels_prefer_handoffs():
    world = MultiTierWorld(domain_kwargs={"guard_channels": 1})
    d1 = world.domain1
    target = d1["E"]
    # Fill all non-guard channels with new calls.
    blocked = 0
    for index in range(target.channels.capacity):
        filler = world.add_mobile(f"filler{index}")
        if not filler.initial_attach(target):
            blocked += 1
    assert blocked == 1  # the guard channel refused a new call
    world.sim.run(until=0.5)

    z = world.add_mobile("z")
    attach(world, z, "F")
    world.sim.run(until=1.0)
    # The handoff may still take the guard channel.
    assert run_handoff(world, z, target)


# ----------------------------------------------------------------------
# Fig 3.2 / 3.3: inter-domain handoff
# ----------------------------------------------------------------------
def test_inter_domain_same_upper_crosses_at_r3(world):
    """R1-subtree -> R2-subtree: same most-upper BS (R3), so the home
    network is never involved (Fig 3.2)."""
    d1 = world.domain1
    x = world.add_mobile("x")
    attach(world, x, "C")
    world.sim.run(until=1.0)
    ha_registrations_before = world.ha.registrations_accepted
    assert run_handoff(world, x, d1["E"])
    world.sim.run(until=world.sim.now + 1.0)

    assert d1["R3"].tables.micro_table.peek(x.home_address).via is d1["R2"]
    assert d1["R1"].tables.micro_table.peek(x.home_address) is None
    # No extra Mobile IP registration happened.
    assert world.ha.registrations_accepted == ha_registrations_before


def test_inter_domain_different_upper_registers_with_home(world):
    """Domain 1 -> domain 2 (different upper BS): the new RSMC
    authenticates, proxy-registers with the HA and updates the MNLD
    (Fig 3.3)."""
    d2 = world.domain2
    x = world.add_mobile("x")
    attach(world, x, "F")
    world.sim.run(until=1.0)
    assert run_handoff(world, x, d2["G"])
    world.sim.run(until=world.sim.now + 2.0)

    assert x.serving_bs is d2["G"]
    assert d2.rsmc.authentications == 1
    binding = world.ha.lookup_binding(x.home_address)
    assert binding is not None
    assert binding.care_of_address == d2.rsmc.address
    assert world.mnld.lookup(x.home_address) == d2.rsmc.address


# ----------------------------------------------------------------------
# Fig 4.1: data path through the RSMC
# ----------------------------------------------------------------------
def test_cn_to_mn_data_path_via_ha_then_rsmc(world):
    d1 = world.domain1
    x = world.add_mobile("x")
    attach(world, x, "B")
    world.sim.run(until=1.0)

    got = []
    x.on_data.append(lambda packet: got.append(packet.seq))
    world.cn.send_to_mobile(x.home_address, seq=1)
    world.sim.run(until=2.0)
    assert got == [1]
    # First packet had no binding: it went through the home agent.
    assert world.cn.sent_via_home == 1
    assert world.ha.tunneled_count == 1


def test_rsmc_notifies_cn_for_route_optimization(world):
    d1 = world.domain1
    x = world.add_mobile("x")
    attach(world, x, "B")
    world.sim.run(until=1.0)
    world.cn.send_to_mobile(x.home_address, seq=1)
    world.sim.run(until=2.0)

    # A handoff makes the RSMC notify the CN (it saw CN's traffic).
    assert run_handoff(world, x, d1["C"])
    world.sim.run(until=world.sim.now + 2.0)
    assert world.cn.notifications_received >= 1
    assert world.cn.bindings[x.home_address] == d1.rsmc.address

    world.cn.send_to_mobile(x.home_address, seq=2)
    before = world.ha.tunneled_count
    world.sim.run(until=world.sim.now + 2.0)
    # The optimized packet bypassed the HA.
    assert world.cn.sent_via_binding == 1
    assert world.ha.tunneled_count == before
    assert x.data_received == 2


def test_rsmc_buffers_during_handoff_no_loss():
    """The headline claim: RSMC resource switching avoids packet loss
    during an intra-domain handoff.

    A slow wired domain (20 ms hops) widens the handoff window so the
    buffering is actually exercised rather than won by racy timing.
    """
    world = MultiTierWorld(domain_kwargs={"wired_delay": 0.02})
    d1 = world.domain1
    x = world.add_mobile("x")
    attach(world, x, "F")
    world.sim.run(until=1.0)
    got = []
    x.on_data.append(lambda packet: got.append(packet.seq))

    # Stream 40 packets at 5 ms spacing, hand off F -> E mid-stream.
    for index in range(40):
        world.sim.schedule(
            index * 0.005, world.cn.send_to_mobile, x.home_address, 500
        )
    world.sim.run(until=1.05)

    def handoff():
        ok = yield from x.perform_handoff(d1["E"])
        assert ok

    world.sim.process(handoff())
    world.sim.run(until=5.0)
    # Everything the CN sent arrived (possibly reordered around flush).
    assert x.data_received == 40
    assert d1.rsmc.buffered_packets > 0
    assert d1.rsmc.flushed_packets == d1.rsmc.buffered_packets
    assert d1.rsmc.buffer_overflows == 0


def test_uplink_data_reaches_cn(world):
    x = world.add_mobile("x")
    attach(world, x, "B")
    world.sim.run(until=1.0)
    x.originate(
        Packet(
            src=x.home_address,
            dst=world.cn.address,
            size=700,
            created_at=world.sim.now,
        )
    )
    world.sim.run(until=2.0)
    assert world.cn.data_received == 1


def test_mn_to_mn_within_domain(world):
    d1 = world.domain1
    x = world.add_mobile("x")
    y = world.add_mobile("y")
    attach(world, x, "B")
    attach(world, y, "F")
    world.sim.run(until=1.0)
    got = []
    y.on_data.append(lambda packet: got.append(packet.uid))
    x.originate(
        Packet(
            src=x.home_address,
            dst=y.home_address,
            size=300,
            created_at=world.sim.now,
        )
    )
    world.sim.run(until=2.0)
    # Climbs from B until a BS knows y (R3 or the RSMC), then descends.
    assert len(got) == 1
