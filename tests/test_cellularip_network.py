"""Integration tests for the Cellular IP access network: routing,
paging, idle/active states and both handoff styles.

Topology (paper Fig 2.3 / 2.4): a gateway over a two-level tree.

                 gw
               /    \\
             m1      m2
            /  \\    /  \\
          bs1  bs2 bs3  bs4
"""

import pytest

from repro.cellularip import (
    CIPBaseStation,
    CIPDomain,
    CIPGateway,
    CIPMobileHost,
)
from repro.net import Network, Packet, Router, ip
from repro.sim import Simulator


def build_cip_tree(**domain_kwargs):
    sim = Simulator()
    domain = CIPDomain(sim, **domain_kwargs)
    network = Network(sim, prefix="10.0.0.0/8")

    gw = CIPGateway(sim, "gw", network.allocator.allocate(), domain)
    m1 = CIPBaseStation(sim, "m1", network.allocator.allocate(), domain)
    m2 = CIPBaseStation(sim, "m2", network.allocator.allocate(), domain)
    bs = {}
    for index in range(1, 5):
        bs[index] = CIPBaseStation(
            sim, f"bs{index}", network.allocator.allocate(), domain
        )
    for node in [gw, m1, m2, *bs.values()]:
        network.add(node)
    domain.link(gw, m1)
    domain.link(gw, m2)
    domain.link(m1, bs[1])
    domain.link(m1, bs[2])
    domain.link(m2, bs[3])
    domain.link(m2, bs[4])

    internet = Router(sim, "internet", network.allocator.allocate())
    cn = network.host("cn")
    network.add(internet)
    network.connect(cn, internet, delay=0.002)
    gw.connect_internet(internet, delay=0.005)
    # The Internet routes the whole mobile prefix at the gateway.
    internet.add_route("10.200.0.0/16", gw)
    internet.add_host_route(cn.address, cn)

    mn = CIPMobileHost(sim, "mn", ip("10.200.0.1"), domain)
    return sim, domain, network, gw, m1, m2, bs, internet, cn, mn


def stream_downlink(sim, cn, internet, mn_address, count, interval, size=500, start=0.0):
    """Schedule a CBR burst from the CN toward the mobile.

    ``start`` is a delay relative to the current simulation time.
    """
    sent = []

    def send_one(seq):
        packet = Packet(
            src=cn.address,
            dst=mn_address,
            size=size,
            seq=seq,
            flow_id="down",
            created_at=sim.now,
        )
        sent.append(packet)
        internet.receive(packet)

    for seq in range(count):
        sim.schedule(start + seq * interval, send_one, seq)
    return sent


def test_uplink_data_reaches_cn_and_refreshes_caches():
    sim, domain, network, gw, m1, m2, bs, internet, cn, mn = build_cip_tree()
    mn.attach_to(bs[1])
    received = []
    cn.on_protocol("data", lambda packet, link: received.append(packet))
    sim.schedule(0.1, lambda: mn.originate(
        Packet(src=mn.address, dst=cn.address, size=400, created_at=sim.now)
    ))
    sim.run(until=1.0)
    assert len(received) == 1
    # Caches along bs1 -> m1 -> gw all know the mobile now.
    assert mn.address in bs[1].routing_cache
    assert mn.address in m1.routing_cache
    assert mn.address in gw.routing_cache


def test_downlink_follows_cached_path():
    sim, domain, network, gw, m1, m2, bs, internet, cn, mn = build_cip_tree()
    mn.attach_to(bs[2])
    sim.run(until=0.5)

    got = []
    mn.on_data.append(lambda packet: got.append(packet.seq))
    stream_downlink(sim, cn, internet, mn.address, count=5, interval=0.05, start=0.5)
    sim.run(until=2.0)
    assert got == [0, 1, 2, 3, 4]
    assert bs[2].delivered_to_mobiles == 5


def test_route_update_consumed_at_gateway():
    sim, domain, network, gw, m1, m2, bs, internet, cn, mn = build_cip_tree()
    mn.attach_to(bs[1])
    sim.run(until=0.3)
    # The gateway must not leak control packets to the Internet.
    assert gw.uplink_data_packets == 0


def test_hard_handoff_loses_in_flight_packets():
    sim, domain, network, gw, m1, m2, bs, internet, cn, mn = build_cip_tree(
        route_timeout=5.0
    )
    mn.attach_to(bs[1])
    sim.run(until=0.5)
    got = []
    mn.on_data.append(lambda packet: got.append(packet.seq))

    # 50 packets at 5 ms spacing; handoff bs1 -> bs4 mid-stream.
    stream_downlink(sim, cn, internet, mn.address, count=50, interval=0.005, start=0.5)
    sim.schedule(0.56, mn.handoff_hard, bs[4])
    sim.run(until=3.0)

    lost = set(range(50)) - set(got)
    # Hard handoff: the packets already below the crossover (gw here)
    # when the radio switched are gone; the stream then resumes.
    assert lost, "hard handoff should lose at least one packet"
    assert len(lost) < 10
    assert bs[1].dropped_stale_route >= 1
    assert mn.handoffs_completed == 1


def test_semisoft_handoff_avoids_losses():
    sim, domain, network, gw, m1, m2, bs, internet, cn, mn = build_cip_tree(
        route_timeout=5.0, semisoft_delay=0.05
    )
    mn.attach_to(bs[1])
    sim.run(until=0.5)
    got = []
    mn.on_data.append(lambda packet: got.append(packet.seq))

    stream_downlink(sim, cn, internet, mn.address, count=50, interval=0.005, start=0.5)
    sim.schedule(0.56, lambda: sim.process(mn.handoff_semisoft(bs[4])))
    sim.run(until=3.0)

    lost = set(range(50)) - set(got)
    assert lost == set(), f"semisoft handoff lost {sorted(lost)}"
    # The dual-path interval produced duplicates which were discarded.
    assert mn.duplicates_discarded > 0


def test_handoff_between_sibling_cells_has_lower_crossover():
    """bs1 -> bs2 handoff crosses over at m1, not at the gateway: the
    caches above m1 never change."""
    sim, domain, network, gw, m1, m2, bs, internet, cn, mn = build_cip_tree(
        route_timeout=5.0
    )
    mn.attach_to(bs[1])
    sim.run(until=0.5)
    gw_hops_before = gw.routing_cache.lookup(mn.address)
    sim.schedule(0.1, mn.handoff_hard, bs[2])  # at t=0.6
    sim.run(until=1.0)
    assert m1.routing_cache.lookup(mn.address) == [bs[2]]
    assert gw.routing_cache.lookup(mn.address) == gw_hops_before


def test_mobile_goes_idle_and_sends_paging_updates():
    sim, domain, network, gw, m1, m2, bs, internet, cn, mn = build_cip_tree(
        active_state_timeout=1.0, paging_update_time=2.0, route_update_time=0.5
    )
    mn.attach_to(bs[3])
    sim.schedule(0.1, lambda: mn.originate(
        Packet(src=mn.address, dst=cn.address, size=100, created_at=sim.now)
    ))
    sim.run(until=0.5)
    assert mn.is_active
    sim.run(until=10.0)
    assert not mn.is_active
    assert mn.paging_updates_sent >= 1


def test_idle_mobile_found_by_paging_cache():
    sim, domain, network, gw, m1, m2, bs, internet, cn, mn = build_cip_tree(
        active_state_timeout=0.5,
        route_timeout=1.0,
        paging_timeout=60.0,
        paging_update_time=1.0,
    )
    mn.attach_to(bs[4])
    sim.run(until=5.0)  # long enough for route caches to expire
    assert not mn.is_active
    assert gw.routing_cache.lookup(mn.address) == []
    assert gw.paging_cache.lookup(mn.address) != []

    got = []
    mn.on_data.append(lambda packet: got.append(packet.seq))
    stream_downlink(sim, cn, internet, mn.address, count=1, interval=0.01)
    sim.run(until=6.0)
    assert got == [0]


def test_unknown_mobile_broadcast_paged_or_dropped():
    sim, domain, network, gw, m1, m2, bs, internet, cn, mn = build_cip_tree()
    # A mobile the domain knows but that never attached anywhere.
    ghost = ip("10.200.0.77")
    domain.register_mobile(ghost)
    stream_downlink(sim, cn, internet, ghost, count=1, interval=0.01)
    sim.run(until=1.0)
    assert gw.paging_broadcasts == 1
    # Flood reached the leaves, nobody had it: dropped at every leaf.
    assert sum(b.dropped_no_route for b in bs.values()) == 4


def test_broadcast_paging_disabled_drops_at_gateway():
    sim, domain, network, gw, m1, m2, bs, internet, cn, mn = build_cip_tree(
        broadcast_paging=False
    )
    ghost = ip("10.200.0.88")
    domain.register_mobile(ghost)
    stream_downlink(sim, cn, internet, ghost, count=1, interval=0.01)
    sim.run(until=1.0)
    assert gw.dropped_no_route == 1
    assert gw.paging_broadcasts == 0


def test_active_mobile_sends_route_updates_when_silent():
    sim, domain, network, gw, m1, m2, bs, internet, cn, mn = build_cip_tree(
        route_update_time=0.2, active_state_timeout=60.0
    )
    mn.attach_to(bs[1])
    # Make it active once; then stay silent and let the timer fill gaps.
    sim.schedule(0.05, lambda: mn.originate(
        Packet(src=mn.address, dst=cn.address, size=100, created_at=sim.now)
    ))
    sim.run(until=2.0)
    assert mn.route_updates_sent >= 5


def test_domain_control_packet_accounting():
    sim, domain, network, gw, m1, m2, bs, internet, cn, mn = build_cip_tree()
    mn.attach_to(bs[1])
    sim.run(until=2.0)
    # Route updates traverse bs1, m1 and gw: each counts them.
    assert domain.total_control_packets() >= 3


def test_double_gateway_rejected():
    sim = Simulator()
    domain = CIPDomain(sim)
    CIPGateway(sim, "gw1", ip("10.0.0.1"), domain)
    with pytest.raises(ValueError):
        CIPGateway(sim, "gw2", ip("10.0.0.2"), domain)


def test_relink_child_rejected():
    sim = Simulator()
    domain = CIPDomain(sim)
    gw = CIPGateway(sim, "gw", ip("10.0.0.1"), domain)
    child = CIPBaseStation(sim, "c", ip("10.0.0.2"), domain)
    domain.link(gw, child)
    with pytest.raises(ValueError):
        domain.link(gw, child)
