"""Tests for the scenario catalog subsystem (`repro.scenarios`).

The load-bearing guarantee: every registered scenario is byte-identical
for serial vs ``--jobs N`` execution and across repeated runs with the
same seed.  Determinism tests run the catalog's ``smoke()`` variants —
the same code path with a small population and short duration.
"""

import multiprocessing

import pytest

from repro.experiments.exec import ProcessPoolBackend, SerialBackend
from repro.mobility import (
    GaussMarkov,
    Highway,
    ManhattanGrid,
    RandomDirection,
    RandomWaypoint,
    Stationary,
)
from repro.scenarios import (
    MOBILITY_MODELS,
    TRAFFIC_KINDS,
    ScenarioSpec,
    apportion,
    build_scenario,
    describe_scenario,
    get_scenario,
    iter_scenarios,
    register,
    replicate_scenario,
    run_scenario,
    run_scenario_spec,
    scenario_names,
)

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAS_FORK, reason="platform lacks fork")

_MODEL_CLASSES = {
    "stationary": Stationary,
    "waypoint": RandomWaypoint,
    "manhattan": ManhattanGrid,
    "highway": Highway,
    "gauss-markov": GaussMarkov,
    "random-direction": RandomDirection,
}


def _tiny_spec(**overrides) -> ScenarioSpec:
    fields = dict(
        name="tiny",
        description="test spec",
        population=4,
        duration=4.0,
        mobility_mix={"waypoint": 0.5, "highway": 0.5},
        traffic_mix={"cbr-voice": 0.5, "idle": 0.5},
        seeds=(1,),
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


# ----------------------------------------------------------------------
# Spec validation and apportionment
# ----------------------------------------------------------------------
def test_spec_rejects_bad_mix_sum():
    with pytest.raises(ValueError, match="sum to 1"):
        _tiny_spec(mobility_mix={"waypoint": 0.5, "highway": 0.4})


def test_spec_rejects_unknown_mobility_model():
    with pytest.raises(ValueError, match="unknown"):
        _tiny_spec(mobility_mix={"teleport": 1.0})


def test_spec_rejects_unknown_traffic_kind():
    with pytest.raises(ValueError, match="unknown"):
        _tiny_spec(traffic_mix={"quic": 1.0})


def test_spec_rejects_bad_shape_fields():
    with pytest.raises(ValueError):
        _tiny_spec(population=0)
    with pytest.raises(ValueError):
        _tiny_spec(domains=3)
    with pytest.raises(ValueError):
        _tiny_spec(roam=(0.0, 0.0, -1.0, 1.0))
    with pytest.raises(ValueError):
        _tiny_spec(seeds=())
    with pytest.raises(ValueError):
        _tiny_spec(hotspot_fraction=1.5)


def test_apportion_is_exact_and_deterministic():
    mix = {"a": 1 / 3, "b": 1 / 3, "c": 1 / 3}
    # 'a' wins the largest-remainder tie by insertion order.
    assert apportion(mix, 10) == {"a": 4, "b": 3, "c": 3}
    assert apportion(mix, 10) == apportion(dict(mix), 10)
    for count in (1, 5, 17, 120):
        assert sum(apportion(mix, count).values()) == count


def test_apportion_drops_zero_allocations():
    assert apportion({"a": 0.9, "b": 0.1}, 2) == {"a": 2}


def test_spec_counts_cover_population():
    for spec in iter_scenarios():
        assert sum(spec.mobility_counts().values()) == spec.population
        assert sum(spec.traffic_counts().values()) == spec.population


def test_smoke_and_scaled_variants():
    spec = get_scenario("mega")
    smoke = spec.smoke()
    assert smoke.population <= 6 and smoke.duration <= 8.0
    assert smoke.mobility_mix == spec.mobility_mix
    assert spec.scaled(2.0).population == 2 * spec.population
    assert spec.scaled(0.001).population == 1  # never below one mobile


# ----------------------------------------------------------------------
# Registry integrity
# ----------------------------------------------------------------------
def test_catalog_ships_at_least_six_scenarios():
    names = scenario_names()
    assert len(names) >= 6
    assert len(set(names)) == len(names)


def test_catalog_spans_new_ground():
    specs = iter_scenarios()
    # Inter-domain handoff under load: something no experiment covers.
    assert any(
        spec.domains == 2 and "elastic-data" in spec.traffic_mix
        for spec in specs
    )
    assert any(spec.hotspot_fraction > 0 for spec in specs)  # flash crowd
    assert any(spec.pico_cells > 0 for spec in specs)
    # The scale-stress scenario dwarfs the paper-scale ones.
    populations = sorted(spec.population for spec in specs)
    assert populations[-1] >= 5 * populations[-2]
    # Together the catalog exercises every model and traffic kind.
    assert {m for s in specs for m in s.mobility_mix} == set(MOBILITY_MODELS)
    assert {t for s in specs for t in s.traffic_mix} == set(TRAFFIC_KINDS)


def test_register_rejects_duplicate_names():
    spec = get_scenario("sparse-rural")
    with pytest.raises(ValueError, match="already registered"):
        register(spec)
    register(spec, replace=True)  # idempotent with replace


def test_get_scenario_unknown_name():
    with pytest.raises(KeyError, match="unknown scenario"):
        get_scenario("no-such-scenario")


def test_describe_mentions_mixes():
    text = describe_scenario("commuter-corridor")
    assert "highway" in text and "elastic-data" in text
    assert "domains          2" in text


# ----------------------------------------------------------------------
# Builder
# ----------------------------------------------------------------------
def test_build_scenario_populates_world():
    spec = get_scenario("campus-dense").smoke()
    built = build_scenario(spec, seed=3)
    assert len(built.mobiles) == spec.population
    assert len(built.controllers) == spec.population
    assert len(built.flow_plans) == spec.total_flows()
    # Pico cells were attached under the micro leaves.
    assert built.world.domain1.stations["p0"].cell is not None
    assert built.world.domain1.stations["p1"].cell is not None
    # The apportioned mobility mix is what actually got instantiated.
    expected = spec.mobility_counts()
    actual: dict[str, int] = {}
    for controller in built.controllers:
        for name, cls in _MODEL_CLASSES.items():
            if type(controller.model) is cls:
                actual[name] = actual.get(name, 0) + 1
    assert actual == expected


def test_build_scenario_second_domain_and_hotspots():
    spec = get_scenario("commuter-corridor").smoke()
    assert build_scenario(spec, seed=1).world.domain2 is not None
    crowd = get_scenario("flash-crowd").smoke()
    built = build_scenario(crowd, seed=1)
    assert len(built.hotspot_indices) == crowd.hotspot_count() > 0
    hot_flows = [
        plan for plan in built.flow_plans if ".hot" in plan.flow_id
    ]
    assert len(hot_flows) == crowd.hotspot_count() * crowd.hotspot_flows


def test_run_scenario_metrics_are_plain_finite_floats():
    metrics = run_scenario_spec(_tiny_spec(), seed=2)
    for name, value in metrics.items():
        assert isinstance(value, float), name
        assert value == value, f"{name} is NaN"  # NaN breaks byte-identity
    assert metrics["population"] == 4.0
    assert metrics["sent"] > 0
    assert metrics["attached"] > 0


# ----------------------------------------------------------------------
# Determinism: the catalog's core guarantee
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", [spec.name for spec in iter_scenarios()])
def test_scenario_repeat_same_seed_is_byte_identical(name):
    spec = get_scenario(name).smoke()
    assert run_scenario_spec(spec, seed=1) == run_scenario_spec(spec, seed=1)


@needs_fork
@pytest.mark.parametrize("name", [spec.name for spec in iter_scenarios()])
def test_scenario_serial_vs_pool_is_byte_identical(name):
    spec = get_scenario(name).smoke()
    seeds = [1, 2]
    serial = replicate_scenario(spec, seeds=seeds, backend=SerialBackend())
    pooled = replicate_scenario(
        spec, seeds=seeds, backend=ProcessPoolBackend(2)
    )
    assert serial.samples == pooled.samples
    assert serial.metrics == pooled.metrics


def test_replicate_scenarios_batch_matches_per_scenario():
    """One flat (scenario, seed) batch == per-scenario replication."""
    from repro.scenarios import replicate_scenarios

    names = ["sparse-rural", "flash-crowd"]
    specs = [get_scenario(name).smoke() for name in names]
    batch = replicate_scenarios(specs, backend=SerialBackend())
    assert [spec.name for spec, _, _ in batch] == names
    for spec, seeds, replication in batch:
        assert seeds == list(spec.seeds)
        single = replicate_scenario(spec, backend=SerialBackend())
        assert replication.samples == single.samples
        assert replication.metrics == single.metrics


def test_different_seeds_differ():
    spec = get_scenario("city-rush-hour").smoke()
    assert run_scenario_spec(spec, seed=1) != run_scenario_spec(spec, seed=2)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_scenario_list(capsys):
    from repro.cli import main

    assert main(["scenario", "list"]) == 0
    out = capsys.readouterr().out
    for name in scenario_names():
        assert name in out


def test_cli_scenario_describe(capsys):
    from repro.cli import main

    assert main(["scenario", "describe", "mega"]) == 0
    assert "mobility mix" in capsys.readouterr().out
    assert main(["scenario", "describe", "nope"]) == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_cli_scenario_run_rejects_unknown_and_bad_jobs(capsys):
    from repro.cli import main

    assert main(["scenario", "run", "nope"]) == 2
    assert "unknown scenario" in capsys.readouterr().err
    assert main(["scenario", "run", "sparse-rural", "--jobs", "0"]) == 2
    assert "--jobs" in capsys.readouterr().err


@needs_fork
def test_cli_scenario_run_jobs_flag_matches_serial_output(capsys, tmp_path):
    from repro.cli import main

    argv = ["scenario", "run", "sparse-rural", "--smoke", "--seeds", "1", "2"]
    assert main(argv) == 0
    serial_out = capsys.readouterr().out
    assert main(argv + ["--jobs", "2", "-o", str(tmp_path)]) == 0
    pooled_out = capsys.readouterr().out
    # Strip the wall-clock line; everything else must match exactly.
    strip = lambda text: [
        line for line in text.splitlines() if not line.startswith("[")
    ]
    assert strip(serial_out) == strip(pooled_out)
    written = tmp_path / "scenario_sparse-rural.txt"
    assert written.exists()
    assert written.read_text().strip() in pooled_out
