"""Unit tests for the explainable policy engine (``repro.policy``).

Covers the four layers the policy refactor introduced: validated
:class:`PolicyConfig` blocks, the config-driven
:class:`~repro.policy.decider.TierDecider` and its reason vocabulary,
the air-interface resource controls (admission control and weighted
airtime shares on :class:`~repro.radio.channel.SharedChannel`), and
the decision-trace observability path (ring buffer, ``policy.*``
metric gating, ``policy.<field>`` sweep axes).  The byte-identity of
the *default* config with pre-refactor behavior is pinned elsewhere
(golden tables, ``results/scenarios_smoke/``); these tests pin the new
behavior.
"""

import dataclasses
import math

import pytest

from repro.policy import (
    POLICY_METRIC_KEYS,
    PRESETS,
    DecisionTrace,
    HandoffFactors,
    PolicyConfig,
    TierDecider,
)
from repro.radio.cells import Tier


# ----------------------------------------------------------------------
# PolicyConfig validation
# ----------------------------------------------------------------------
def test_config_rejects_unknown_mode():
    with pytest.raises(ValueError, match="unknown policy mode"):
        PolicyConfig(mode="chase-signal")


@pytest.mark.parametrize("bad", [0.0, -3.0, float("nan"), "fast", True])
def test_config_rejects_bad_speed_threshold(bad):
    with pytest.raises(ValueError, match="speed_threshold must be positive"):
        PolicyConfig(speed_threshold=bad)


@pytest.mark.parametrize("bad", [0.0, -1e6, float("nan")])
def test_config_rejects_bad_demand_threshold(bad):
    with pytest.raises(ValueError, match="demand_threshold must be positive"):
        PolicyConfig(demand_threshold=bad)


@pytest.mark.parametrize("bad", [0.0, -0.5, float("nan")])
def test_config_rejects_bad_admission_factor(bad):
    with pytest.raises(ValueError, match="admission_factor must be positive"):
        PolicyConfig(admission_factor=bad)


def test_config_rejects_non_bool_weighted_airtime():
    with pytest.raises(ValueError, match="weighted_airtime must be a bool"):
        PolicyConfig(weighted_airtime="yes")


def test_demand_threshold_resolution():
    default = PolicyConfig()
    assert default.resolved_demand_threshold(contention=False) == 200e3
    assert default.resolved_demand_threshold(contention=True) == 1.0
    explicit = PolicyConfig(demand_threshold=5e4)
    assert explicit.resolved_demand_threshold(contention=False) == 5e4
    assert explicit.resolved_demand_threshold(contention=True) == 5e4


# ----------------------------------------------------------------------
# S1: legacy entry point validates demand_threshold like speed_threshold
# ----------------------------------------------------------------------
@pytest.mark.parametrize("bad", [0.0, -200e3, float("nan")])
def test_legacy_policy_rejects_bad_demand_threshold(bad):
    from repro.multitier.policy import TierSelectionPolicy

    with pytest.raises(ValueError, match="demand_threshold must be positive"):
        TierSelectionPolicy(demand_threshold=bad)


def test_legacy_policy_threshold_errors_share_one_shape():
    from repro.multitier.policy import TierSelectionPolicy

    with pytest.raises(ValueError) as speed_error:
        TierSelectionPolicy(speed_threshold=-1.0)
    with pytest.raises(ValueError) as demand_error:
        TierSelectionPolicy(demand_threshold=-1.0)
    assert str(speed_error.value) == "speed_threshold must be positive"
    assert str(demand_error.value) == "demand_threshold must be positive"


# ----------------------------------------------------------------------
# TierDecider: preference, reasons, decisions
# ----------------------------------------------------------------------
def test_decider_from_config_resolves_thresholds():
    legacy = TierDecider.from_config(PolicyConfig(), contention=False)
    contended = TierDecider.from_config(PolicyConfig(), contention=True)
    assert legacy.demand_threshold == 200e3
    assert contended.demand_threshold == 1.0
    assert legacy.speed_threshold == contended.speed_threshold == 15.0


@pytest.mark.parametrize(
    "factors, head, token",
    [
        (HandoffFactors(speed=20.0), Tier.MACRO, "speed-at-or-above-threshold"),
        (
            HandoffFactors(speed=1.0, bandwidth_demand=300e3),
            Tier.PICO,
            "demand-at-or-above-threshold",
        ),
        (
            HandoffFactors(speed=1.0),
            Tier.MICRO,
            "speed-and-demand-below-thresholds",
        ),
    ],
)
def test_speed_aware_preference_and_reasons(factors, head, token):
    decider = TierDecider()
    assert decider.preferred_tier(factors) is head
    reasons = decider.preference_reasons(factors)
    assert token in reasons
    assert len(reasons) >= 1


def test_decision_always_carries_reasons_and_factors():
    decider = TierDecider()
    factors = HandoffFactors(speed=30.0)
    decision = decider.decide([], factors)
    assert decision.targets == []
    assert decision.target is None
    assert decision.reasons == ["speed-at-or-above-threshold", "prefer-macro"]
    assert decision.factors is factors


@pytest.mark.parametrize("mode", ["always-strongest", "always-micro", "always-macro"])
def test_ablation_modes_name_their_mode_in_reasons(mode):
    decider = TierDecider.from_config(PRESETS[mode])
    reasons = decider.preference_reasons(HandoffFactors(speed=50.0))
    assert f"mode-{mode}" in reasons


# ----------------------------------------------------------------------
# Decision trace: ring, counters, metric keys
# ----------------------------------------------------------------------
def test_trace_counts_decisions_and_fallbacks():
    trace = DecisionTrace()
    trace.record(1.0, "mn0", "decision", ["out-of-coverage", "prefer-macro"],
                 target="R1")
    trace.record(2.0, "mn0", "fallback", ["air-budget-exceeded"],
                 action="escalate_tier", target="R2")
    trace.record(3.0, "mn1", "fallback", ["channel-pool-full"],
                 action="retry_same_tier", target="B")
    counts = trace.metric_counts()
    assert set(counts) == set(POLICY_METRIC_KEYS)
    assert counts["policy.decisions"] == 1.0
    assert counts["policy.out_of_coverage"] == 1.0
    assert counts["policy.admission_reject"] == 1.0
    assert counts["policy.escalate_tier"] == 1.0
    assert counts["policy.handoff_reject"] == 1.0
    assert counts["policy.retry_same_tier"] == 1.0
    assert counts["policy.handoff_timeout"] == 0.0


def test_trace_ring_is_bounded_but_counters_are_exact():
    trace = DecisionTrace(ring_size=4)
    for index in range(10):
        trace.record(float(index), "mn0", "decision", ["better-tier"])
    assert len(trace.records) == 4
    assert trace.counts["policy.decisions"] == 10
    rendered = trace.render(limit=2)
    assert "policy.better_tier" in rendered
    assert "last 2 of 4 buffered records" in rendered


# ----------------------------------------------------------------------
# Air interface: admission control + weighted airtime shares
# ----------------------------------------------------------------------
def _channel(**kwargs):
    from repro.radio.channel import SharedChannel
    from repro.sim import Simulator

    sim = Simulator()
    return sim, SharedChannel(sim, "air", 8000.0, 4000.0, **kwargs)


def test_admission_disabled_always_admits():
    _sim, channel = _channel()
    channel.attach(0, demand=1e12)
    assert channel.admit(1, 1e12)
    assert channel.admission_rejects == 0


def test_admission_rejects_over_budget_and_counts():
    _sim, channel = _channel(admission_factor=1.0)
    channel.attach(0, demand=6000.0)
    # Budget is 8000 bit/s: 6000 committed + 4000 asked exceeds it.
    assert not channel.admit(1, 4000.0)
    assert channel.admission_rejects == 1
    assert channel.admit(1, 2000.0)
    assert channel.admission_rejects == 1


def test_admission_excludes_the_askers_own_claim():
    # A handing-off mobile attaches its signalling claim to the new
    # cell BEFORE asking; the check must evaluate the cell as if that
    # claim were replaced by the declared demand, not doubled.
    _sim, channel = _channel(admission_factor=1.0)
    channel.attach(7, demand=5000.0)
    assert channel.admit(7, 5000.0)
    channel.attach(1, demand=5000.0)
    assert not channel.admit(7, 5000.0)


def test_detach_releases_the_claim():
    _sim, channel = _channel(admission_factor=1.0)
    channel.attach(0, demand=8000.0)
    assert not channel.admit(1, 4000.0)
    channel.detach(0)
    assert channel.admit(1, 4000.0)


def test_weighted_airtime_favors_heavier_claims():
    from repro.net import Link, Node, Packet
    from repro.radio.channel import DOWNLINK

    sim, channel = _channel(weighted=True)
    channel.attach(0, demand=24e3)  # 3x the weight of key 1
    channel.attach(1, demand=8e3)
    log = []

    def pair(name, address, key):
        bs = Node(sim, f"bs-{name}", f"10.0.1.{key + 1}")
        mobile = Node(sim, name, address)
        mobile.on_default(
            lambda packet, link: log.append((name, packet.seq))
        )
        return Link(
            sim, bs, mobile, bandwidth=100e6,
            shared_channel=channel, channel_direction=DOWNLINK,
            channel_key=key,
        )

    heavy, light = pair("heavy", "10.99.0.1", 0), pair("light", "10.99.0.2", 1)
    for seq in range(3):
        assert light.transmit(
            Packet(src="10.0.0.1", dst="10.99.0.2", size=500, seq=seq)
        )
        assert heavy.transmit(
            Packet(src="10.0.0.1", dst="10.99.0.1", size=500, seq=seq)
        )
    sim.run()
    # 6 grants total; start-time fair queueing interleaves ~3:1 in
    # favor of the heavy claim instead of strict submission FIFO.
    heavy_first_three = [name for name, _ in log[:4]].count("heavy")
    assert heavy_first_three >= 3
    assert [seq for name, seq in log if name == "heavy"] == [0, 1, 2]
    assert [seq for name, seq in log if name == "light"] == [0, 1, 2]


def test_unweighted_channel_keeps_fifo_order():
    from repro.net import Link, Node, Packet
    from repro.radio.channel import DOWNLINK

    sim, channel = _channel()
    channel.attach(0, demand=24e3)
    channel.attach(1, demand=8e3)
    log = []

    def pair(name, address, key):
        bs = Node(sim, f"bs-{name}", f"10.0.1.{key + 1}")
        mobile = Node(sim, name, address)
        mobile.on_default(lambda packet, link: log.append(name))
        return Link(
            sim, bs, mobile, bandwidth=100e6,
            shared_channel=channel, channel_direction=DOWNLINK,
            channel_key=key,
        )

    heavy, light = pair("heavy", "10.99.0.1", 0), pair("light", "10.99.0.2", 1)
    for seq in range(2):
        light.transmit(Packet(src="10.0.0.1", dst="10.99.0.2", size=500, seq=seq))
        heavy.transmit(Packet(src="10.0.0.1", dst="10.99.0.1", size=500, seq=seq))
    sim.run()
    # FIFO ignores the claims entirely: same-instant submissions sort
    # by (time, key), so both key-0 packets drain before key 1 gets a
    # grant — no demand-proportional interleaving.
    assert log == ["heavy", "heavy", "light", "light"]


# ----------------------------------------------------------------------
# Spec plumbing: validation, metric gating, sweep axes
# ----------------------------------------------------------------------
def test_spec_coerces_mapping_policy_blocks():
    from repro.scenarios import get_scenario

    spec = get_scenario("city-rush-hour").replace(
        policy={"speed_threshold": 10.0}
    )
    assert isinstance(spec.policy, PolicyConfig)
    assert spec.policy.speed_threshold == 10.0
    assert not spec.policy.is_default()


@pytest.mark.parametrize(
    "block, match",
    [
        ({"admission_factor": 1.0}, "admission_factor requires shared channels"),
        ({"weighted_airtime": True}, "weighted_airtime requires shared channels"),
    ],
)
def test_spec_rejects_air_controls_without_channels(block, match):
    from repro.scenarios import get_scenario

    base = get_scenario("city-rush-hour")
    assert not base.channels_enabled()
    with pytest.raises(ValueError, match=match):
        base.replace(policy=block)


def test_default_policy_emits_no_policy_metrics():
    from repro.scenarios import get_scenario, run_scenario_spec

    spec = get_scenario("campus-air").smoke()
    assert spec.policy.is_default()
    metrics = run_scenario_spec(spec, spec.seeds[0])
    assert not any(key.startswith("policy.") for key in metrics)


def test_non_default_policy_emits_every_policy_metric_key():
    from repro.scenarios import get_scenario, run_scenario_spec

    spec = get_scenario("city-rush-hour").smoke().replace(
        policy=PolicyConfig(speed_threshold=10.0)
    )
    metrics = run_scenario_spec(spec, spec.seeds[0])
    for key in POLICY_METRIC_KEYS:
        assert key in metrics
        assert metrics[key] == metrics[key]  # not NaN


def test_admission_enabled_campus_air_rejects_and_escalates():
    """ISSUE acceptance: a constrained admission run shows nonzero
    ``policy.admission_reject`` AND nonzero ``ESCALATE_TIER`` fallbacks."""
    from repro.scenarios import get_scenario, run_scenario_trace

    spec = get_scenario("campus-air").replace(
        policy=PolicyConfig(admission_factor=0.25)
    )
    metrics, trace = run_scenario_trace(spec, spec.seeds[0])
    assert metrics["policy.admission_reject"] > 0
    assert metrics["policy.escalate_tier"] > 0
    escalations = [
        record for record in trace.records
        if record.action == "escalate_tier"
    ]
    assert escalations
    assert all(record.reasons for record in trace.records)


def test_policy_sweep_axis_validates_and_derives():
    from repro.scenarios import ScenarioSweep, get_scenario

    sweep = ScenarioSweep(
        name="t/speed",
        scenario="city-rush-hour",
        field="policy.speed_threshold",
        values=(5.0, 25.0),
        metrics=("handoffs",),
    )
    assert sweep.axis_label() == "speed_threshold"
    base = get_scenario("city-rush-hour")
    derived = sweep.derive(base, 25.0)
    assert derived.policy.speed_threshold == 25.0
    assert derived.policy.mode == base.policy.mode
    assert base.policy.speed_threshold == 15.0  # base untouched


def test_policy_sweep_axis_rejects_unknown_and_invalid():
    from repro.scenarios import ScenarioSweep, get_scenario

    with pytest.raises(ValueError, match="unknown policy key"):
        ScenarioSweep(
            name="t/bad", scenario="city-rush-hour",
            field="policy.mode", values=(1.0, 2.0), metrics=("handoffs",),
        )
    sweep = ScenarioSweep(
        name="t/neg", scenario="city-rush-hour",
        field="policy.speed_threshold", values=(-5.0, 5.0),
        metrics=("handoffs",),
    )
    with pytest.raises(ValueError, match="t/neg.*speed_threshold"):
        sweep.derive(get_scenario("city-rush-hour"), -5.0)


def test_shipped_speed_threshold_sweep_is_registered():
    from repro.scenarios import get_sweep

    sweep = get_sweep("city-rush-hour/speed-threshold")
    assert sweep.field == "policy.speed_threshold"
    assert "policy.decisions" in sweep.metrics
    specs = sweep.derived_specs()
    assert all(not spec.policy.is_default() for spec in specs)
